"""Plan the reliability envelope of a frontier-scale training run.

The scenario the paper closes with: you are about to launch a training run
on O(10^5) GPUs.  Given a cluster failure rate, what checkpoint cadence and
restart overhead do you need for the run to make acceptable progress?

Uses the analytical E[ETTR] model (Eq. 1-2), its Monte Carlo validator, and
the Fig. 10 design-space sweep.

Run:  python examples/plan_large_training_run.py
"""

import numpy as np

from repro.analysis.checkpoint_sweep import RSC1_RF, RSC2_RF, checkpoint_sweep
from repro.analysis.report import render_table
from repro.core.checkpoint import required_checkpoint_interval
from repro.core.ettr import (
    dedicated_cluster_scenario,
    expected_ettr,
    expected_ettr_simple,
    monte_carlo_ettr,
)
from repro.sim.timeunits import DAY, HOUR, MINUTE


def section(title: str) -> None:
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


def main() -> None:
    section("1. Today's cluster: all of RSC-1 as one 16k-GPU job")
    for dt_minutes in (60, 30, 15, 5):
        params = dedicated_cluster_scenario(
            16_000, RSC1_RF, checkpoint_interval=dt_minutes * MINUTE
        )
        print(
            f"  checkpoint every {dt_minutes:>2d} min -> "
            f"E[ETTR] = {expected_ettr_simple(params):.3f}"
        )
    print("  (paper: 0.70 at 60 min, 0.93 at 5 min)")

    section("2. Validate the closed form against Monte Carlo")
    params = dedicated_cluster_scenario(
        8_192, RSC1_RF, checkpoint_interval=HOUR, productive_runtime=7 * DAY
    )
    analytic = expected_ettr(params)
    mc = monte_carlo_ettr(params, n_trials=300, rng=np.random.default_rng(0))
    print(
        f"  8k-GPU / 7-day run: analytic {analytic:.4f} vs "
        f"Monte Carlo {mc:.4f} ({abs(analytic - mc) / mc:.1%} apart; "
        "paper reports ~5% accuracy)"
    )

    section("3. The 100k-GPU future (Fig. 10)")
    sweep = checkpoint_sweep()
    print(sweep.render())

    section("4. Requirements table for your launch review")
    rows = []
    for label, rf in (("RSC-1-like", RSC1_RF), ("RSC-2-like", RSC2_RF)):
        for target in (0.5, 0.9):
            try:
                dt = required_checkpoint_interval(
                    target,
                    n_nodes=12_500,
                    failure_rate_per_node_day=rf,
                    restart_overhead=2 * MINUTE,
                )
                req = f"{dt / MINUTE:.1f} min"
            except ValueError:
                req = "unreachable"
            rows.append((label, f"{rf * 1000:.2f}", target, req))
    print(
        render_table(
            ["fleet", "r_f (/1k node-days)", "target ETTR",
             "required checkpoint interval"],
            rows,
            title="100,000 GPUs, 2-minute restart overhead",
        )
    )
    print(
        "\nConclusion: at RSC-1-like failure rates, hourly checkpointing "
        "is untenable at 100k GPUs;\nminutes-scale checkpoint + restart "
        "machinery is a launch prerequisite."
    )


if __name__ == "__main__":
    main()
