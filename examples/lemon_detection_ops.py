"""Operate the lemon-node detection pipeline (Section IV-A).

Workflow mirrored from the paper:

1. Run a campaign on a cluster seeded with lemon nodes (hardware that
   fails jobs repeatedly but passes one-shot health checks).
2. Fit detection thresholds from the fleet-wide signal CDFs (Fig. 11).
3. Evaluate precision/recall against ground truth and tabulate root
   causes (Table II).
4. Re-run the same campaign with the quarantine sweeper enabled and
   measure the large-job failure-rate improvement.

Run:  python examples/lemon_detection_ops.py
"""

from repro import CampaignConfig, ClusterSpec, run_campaign
from repro.analysis.lemon_analysis import lemon_analysis
from repro.analysis.report import render_table
from repro.core.lemon import LemonDetector, LemonPolicy


def hw_failure_rate(trace, min_gpus: int) -> float:
    records = [r for r in trace.job_records if r.n_gpus >= min_gpus]
    if not records:
        return 0.0
    return sum(1 for r in records if r.is_hw_interruption) / len(records)


def main() -> None:
    spec = ClusterSpec.rsc1_like(
        n_nodes=48,
        campaign_days=40,
        lemon_fraction=0.08,
        lemon_fail_per_day=0.4,
        enable_episodic_regimes=False,
    )
    print("running baseline campaign (no quarantine) ...")
    baseline = run_campaign(
        CampaignConfig(cluster_spec=spec, duration_days=40, seed=13)
    )

    print("\n--- Fig. 11 / Table II: offline detection on the trace ---")
    analysis = lemon_analysis(baseline)
    print(analysis.render())

    print("\n--- hand-tuned policy (paper: thresholds tuned manually) ---")
    manual = LemonDetector(LemonPolicy())
    report = manual.evaluate(baseline.node_records)
    print(
        f"manual policy: flagged {len(report.flagged_node_ids)} nodes, "
        f"precision {report.precision:.0%}, recall {report.recall:.0%}"
    )

    print("\nrunning mitigated campaign (weekly quarantine sweeps) ...")
    mitigated = run_campaign(
        CampaignConfig(
            cluster_spec=spec,
            duration_days=40,
            seed=13,
            lemon_detection=True,
            lemon_detection_period_days=5.0,
        )
    )
    quarantined = [
        e.data["node_id"]
        for e in mitigated.events
        if e.kind == "lemon.quarantined"
    ]
    rows = []
    for min_gpus in (8, 16, 32, 64):
        rows.append(
            (
                f">={min_gpus}",
                f"{hw_failure_rate(baseline, min_gpus):.2%}",
                f"{hw_failure_rate(mitigated, min_gpus):.2%}",
            )
        )
    print(
        render_table(
            ["job GPUs", "no quarantine", "with quarantine"],
            rows,
            title="hardware-interruption rate by job size",
        )
    )
    print(
        f"\nquarantined nodes: {sorted(set(quarantined))} "
        f"(ground-truth lemons: "
        f"{[r.node_id for r in mitigated.node_records if r.is_lemon_truth]})"
    )
    print(
        f"total HW interruptions: {len(baseline.hw_failure_records())} -> "
        f"{len(mitigated.hw_failure_records())}"
    )


if __name__ == "__main__":
    main()
