"""Reproduce the adaptive-routing experiments of Section IV-B (Fig. 12).

Experiment A: a 512-GPU (64-server) ring all-reduce while a quarter of the
leaf-spine links carry injected bit errors (the paper used ``mlxreg`` on
real switches).  Static hash routing keeps sending flows through sick
links; adaptive routing steers around them.

Experiment B: 32 concurrent 2-server all-reduce rings flooding the fabric.
Adaptive routing spreads flows over spines, raising the worst group's
bandwidth and cutting run-to-run variance.

Run:  python examples/network_resilience.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.network import (
    AdaptiveRouting,
    FabricSpec,
    FabricTopology,
    StaticRouting,
    concurrent_allreduce_bandwidths,
    inject_bit_errors,
    restore_all,
    ring_allreduce_bandwidth,
)

N_SERVERS = 64


def experiment_a(fabric) -> None:
    print("=== Fig. 12a: all-reduce under injected bit errors ===")
    servers = list(range(N_SERVERS))
    rng = np.random.default_rng(12)
    rows = []
    for iteration in range(5):
        restore_all(fabric)
        inject_bit_errors(fabric, 0.25, 5e-5, rng)
        static = ring_allreduce_bandwidth(fabric, servers, StaticRouting())
        adaptive = ring_allreduce_bandwidth(fabric, servers, AdaptiveRouting())
        rows.append(
            (
                iteration + 1,
                f"{static.bus_bandwidth_gbps:.0f}",
                f"{adaptive.bus_bandwidth_gbps:.0f}",
                static.bottleneck_link,
            )
        )
    restore_all(fabric)
    clean = ring_allreduce_bandwidth(fabric, servers, StaticRouting())
    print(
        render_table(
            ["iter", "no-AR Gb/s", "AR Gb/s", "no-AR bottleneck"],
            rows,
        )
    )
    print(f"clean-fabric reference: {clean.bus_bandwidth_gbps:.0f} Gb/s\n")


def experiment_b(fabric) -> None:
    print("=== Fig. 12b: 32 concurrent 16-GPU all-reduce groups ===")
    restore_all(fabric)
    stats = []
    for policy in (StaticRouting(), AdaptiveRouting()):
        rng = np.random.default_rng(7)
        bws = []
        for _ in range(5):
            left = rng.permutation(N_SERVERS // 2)
            right = rng.permutation(np.arange(N_SERVERS // 2, N_SERVERS))
            groups = [(int(a), int(b)) for a, b in zip(left, right)]
            results = concurrent_allreduce_bandwidths(fabric, groups, policy)
            bws += [r.bus_bandwidth_gbps for r in results]
        bws = np.asarray(bws)
        stats.append(
            (
                policy.name,
                f"{bws.mean():.0f}",
                f"{bws.std():.0f}",
                f"{bws.min():.0f}",
                f"{bws.max():.0f}",
            )
        )
    print(render_table(["routing", "mean", "std", "min", "max"], stats))
    print(
        "\nAdaptive routing lifts the contended tail and narrows the "
        "spread, matching the paper's Fig. 12b."
    )


def main() -> None:
    fabric = FabricTopology(FabricSpec(n_servers=N_SERVERS))
    print(f"fabric: {fabric}\n")
    experiment_a(fabric)
    experiment_b(fabric)


if __name__ == "__main__":
    main()
