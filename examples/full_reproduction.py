"""Regenerate every table and figure of the paper in one run.

Simulates scaled-down RSC-1 and RSC-2 campaigns and renders the ASCII
equivalent of Table I/II and Figs. 3-12, writing the combined report to
``reproduction_report.txt`` (and stdout).  This is the script behind
EXPERIMENTS.md.

Run:  python examples/full_reproduction.py [--fast]
"""

import argparse
import sys
import time

import numpy as np

from repro import CampaignConfig, ClusterSpec
from repro.analysis import (
    attributed_failure_rates,
    checkpoint_sweep,
    ettr_comparison,
    failure_rate_timeline,
    fleet_report,
    goodput_loss_analysis,
    headline_numbers,
    job_size_distribution,
    job_status_breakdown,
    lemon_analysis,
    mttf_analysis,
    queue_wait_analysis,
    render_table,
    swap_rate_comparison,
)
from repro.core.taxonomy import FAILURE_TAXONOMY, FailureDomain
from repro.sim.timeunits import HOUR
from repro.workload.profiles import rsc1_profile, rsc2_profile


def render_table1() -> str:
    rows = []
    for symptom, entry in FAILURE_TAXONOMY.items():
        rows.append(
            (
                symptom.value,
                "Y" if FailureDomain.USER_PROGRAM in entry.domains else "-",
                "Y" if FailureDomain.SYSTEM_SOFTWARE in entry.domains else "-",
                "Y" if FailureDomain.HARDWARE_INFRA in entry.domains else "-",
                ", ".join(entry.likely_causes),
            )
        )
    return render_table(
        ["symptom", "user", "syssw", "hw", "likely causes"],
        rows,
        title="Table I — failure taxonomy",
    )


def render_fig12() -> str:
    from repro.network import (
        AdaptiveRouting,
        FabricSpec,
        FabricTopology,
        StaticRouting,
        concurrent_allreduce_bandwidths,
        inject_bit_errors,
        restore_all,
        ring_allreduce_bandwidth,
    )

    fabric = FabricTopology(FabricSpec(n_servers=64))
    servers = list(range(64))
    rng = np.random.default_rng(12)
    lines = ["Fig. 12a — 512-GPU all-reduce under bit errors"]
    for iteration in range(5):
        restore_all(fabric)
        inject_bit_errors(fabric, 0.25, 5e-5, rng)
        s = ring_allreduce_bandwidth(fabric, servers, StaticRouting())
        a = ring_allreduce_bandwidth(fabric, servers, AdaptiveRouting())
        lines.append(
            f"  iter {iteration + 1}: no-AR {s.bus_bandwidth_gbps:7.0f} Gb/s"
            f"   AR {a.bus_bandwidth_gbps:7.0f} Gb/s"
        )
    restore_all(fabric)
    lines.append("Fig. 12b — 32 concurrent 2-server rings")
    for policy in (StaticRouting(), AdaptiveRouting()):
        prng = np.random.default_rng(7)
        bws = []
        for _ in range(5):
            left = prng.permutation(32)
            right = prng.permutation(np.arange(32, 64))
            groups = [(int(x), int(y)) for x, y in zip(left, right)]
            bws += [
                r.bus_bandwidth_gbps
                for r in concurrent_allreduce_bandwidths(fabric, groups, policy)
            ]
        bws = np.asarray(bws)
        lines.append(
            f"  {policy.name:>8}: mean {bws.mean():6.0f}  std {bws.std():6.0f}"
            f"  min {bws.min():6.0f}"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--fast", action="store_true",
        help="smaller campaigns (~1 minute total)",
    )
    parser.add_argument("--out", default="reproduction_report.txt")
    args = parser.parse_args()

    if args.fast:
        rsc1_nodes, rsc1_days = 64, 40
        rsc2_nodes, rsc2_days = 48, 30
    else:
        rsc1_nodes, rsc1_days = 128, 60
        rsc2_nodes, rsc2_days = 96, 45

    # Both campaigns go through the runtime pool: simulated in parallel on
    # multi-core machines, and served from the content-addressed trace
    # cache on every later run (REPRO_TRACE_CACHE=off to re-simulate).
    from repro.runtime import CampaignPool

    t0 = time.time()
    print(
        f"simulating RSC-1 ({rsc1_nodes} nodes, {rsc1_days} days) and "
        f"RSC-2 ({rsc2_nodes} nodes, {rsc2_days} days) ..."
    )
    pool = CampaignPool()
    rsc1, rsc2 = pool.run(
        [
            CampaignConfig(
                cluster_spec=ClusterSpec.rsc1_like(
                    n_nodes=rsc1_nodes, campaign_days=rsc1_days
                ),
                duration_days=rsc1_days,
                seed=2025,
            ),
            CampaignConfig(
                cluster_spec=ClusterSpec.rsc2_like(
                    n_nodes=rsc2_nodes, campaign_days=rsc2_days
                ),
                duration_days=rsc2_days,
                seed=2025,
            ),
        ]
    )
    print(f"campaigns done in {time.time() - t0:.0f}s "
          f"({pool.last_stats.render()}); analyzing ...\n")

    sections = [
        render_table1(),
        job_status_breakdown(rsc1).render(),
        attributed_failure_rates(rsc1).render(),
        attributed_failure_rates(rsc2).render(),
        failure_rate_timeline(rsc1).render(),
        job_size_distribution(rsc1, rsc1_profile()).render(),
        job_size_distribution(rsc2, rsc2_profile()).render(),
        mttf_analysis(rsc1).render(),
        mttf_analysis(rsc2).render(),
        goodput_loss_analysis(rsc1).render(),
        goodput_loss_analysis(rsc2).render(),
        ettr_comparison(
            rsc1, min_total_runtime=24 * HOUR, qos=None, min_runs_per_bucket=2
        ).render(),
        checkpoint_sweep().render(),
        lemon_analysis(rsc1).render(),
        render_fig12(),
        swap_rate_comparison(rsc1, rsc2).render(),
        queue_wait_analysis(rsc1).render(),
        headline_numbers(rsc1).render(),
        headline_numbers(rsc2).render(),
        fleet_report(rsc1).render(),
        fleet_report(rsc2).render(),
    ]
    report = ("\n\n" + "=" * 78 + "\n\n").join(sections)
    print(report)
    with open(args.out, "w") as fh:
        fh.write(report + "\n")
    print(f"\nreport written to {args.out}")


if __name__ == "__main__":
    main()
