"""Quickstart: simulate a scaled-down RSC-1 campaign and read the basics.

Runs a 64-node (512-GPU), 30-day campaign — a miniature of the paper's
11-month, 2000-node RSC-1 — then prints the Fig. 3 job-status breakdown,
the Fig. 6 size distribution, and the headline reliability numbers.

Run:  python examples/quickstart.py
"""

from repro import CampaignConfig, ClusterSpec, run_campaign
from repro.analysis import (
    headline_numbers,
    job_size_distribution,
    job_status_breakdown,
)


def main() -> None:
    spec = ClusterSpec.rsc1_like(n_nodes=64, campaign_days=30)
    config = CampaignConfig(cluster_spec=spec, duration_days=30, seed=42)
    print(f"simulating {spec.name}: {spec.n_gpus} GPUs for 30 days ...")
    trace = run_campaign(config)
    print(
        f"done: {len(trace.job_records)} attempt records, "
        f"{len(trace.events)} events\n"
    )
    print(job_status_breakdown(trace).render())
    print()
    print(job_size_distribution(trace).render())
    print()
    print(headline_numbers(trace).render())


if __name__ == "__main__":
    main()
