"""Root-cause a NCCL timeout from flight-recorder logs (Section V).

Four incidents, four different root causes, one symptom — "NCCL timeout".
This example replays each on an 8-rank data-parallel job and runs the
diagnoser, which implements the paper's recipe: find the first collective
with missing ranks, or flag an in-collective hang, or catch the SPMD
ordering bug.  It finishes with the static checker that would have refused
to launch the buggy program at all.

Run:  python examples/diagnose_nccl_timeout.py
"""

from repro.diagnostics import (
    MismatchedCollectiveError,
    RankFault,
    RankFaultKind,
    diagnose_timeout,
    mismatched_program_set,
    simulate_collectives,
    static_spmd_check,
)
from repro.diagnostics.collective_ops import spmd_program_set

N_RANKS = 8


def incident(title, programs, faults=()):
    print(f"\n=== {title} ===")
    records = simulate_collectives(programs, faults=faults)
    diagnosis = diagnose_timeout(records)
    print(diagnosis.render())
    return diagnosis


def main() -> None:
    incident(
        "incident 1: healthy run (no timeout)",
        spmd_program_set(N_RANKS, n_steps=2),
    )
    incident(
        "incident 2: rank 5 segfaults in its optimizer step",
        spmd_program_set(N_RANKS, n_steps=2),
        faults=[
            RankFault(
                rank=5,
                kind=RankFaultKind.CRASH,
                at_op=6,
                detail="segfault in optimizer step",
            )
        ],
    )
    incident(
        "incident 3: rank 2 blocked reading the next batch",
        spmd_program_set(N_RANKS, n_steps=2),
        faults=[
            RankFault(
                rank=2,
                kind=RankFaultKind.STUCK_OUTSIDE,
                at_op=3,
                detail="dataloader stall",
            )
        ],
    )
    incident(
        "incident 4: switch egress port stalls mid-all-reduce",
        spmd_program_set(N_RANKS, n_steps=2),
        faults=[
            RankFault(
                rank=0,
                kind=RankFaultKind.NETWORK_HANG,
                at_op=7,
                detail="switch egress stalled",
            )
        ],
    )
    buggy = mismatched_program_set(N_RANKS, buggy_rank=3, swap_at=1)
    incident("incident 5: rank 3 issues collectives in the wrong order", buggy)

    print("\n=== prevention: static SPMD check before launch ===")
    try:
        static_spmd_check(buggy)
    except MismatchedCollectiveError as err:
        print(f"refused to launch: {err}")
    static_spmd_check(spmd_program_set(N_RANKS, n_steps=2))
    print("correct program passes the pre-launch check.")


if __name__ == "__main__":
    main()
