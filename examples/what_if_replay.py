"""What-if analysis by trace replay.

A cluster operator's recurring question: "if we had fixed X last quarter,
what would our users have experienced?"  This example records a baseline
campaign, then replays its *exact workload* against three counterfactual
clusters:

1. the same cluster (sanity check),
2. a cluster with the lemon nodes repaired (lemon_fraction = 0),
3. a cluster with 4x lower component failure rates (a hardware refresh).

Replay reconstructs each job's submission time, size, QoS, and realized
work from the trace alone — no generator state needed — so the same
technique applies to any saved trace.

Run:  python examples/what_if_replay.py
"""

from repro import CampaignConfig, ClusterSpec, run_campaign
from repro.analysis.report import render_table
from repro.workload.replay import replay_trace


def summarize(trace):
    hw = len(trace.hw_failure_records())
    util = trace.total_gpu_seconds() / (trace.n_gpus * trace.span_seconds)
    completed = sum(
        1 for r in trace.job_records if r.state.value == "COMPLETED"
    )
    return hw, util, completed


def main() -> None:
    base_spec = ClusterSpec.rsc1_like(
        n_nodes=48,
        campaign_days=30,
        lemon_fraction=0.08,
        lemon_fail_per_day=0.3,
        enable_episodic_regimes=False,
    )
    print("recording the baseline quarter ...")
    baseline = run_campaign(
        CampaignConfig(cluster_spec=base_spec, duration_days=30, seed=31)
    )

    scenarios = {
        "same cluster (replay sanity)": base_spec,
        "lemons repaired": ClusterSpec.rsc1_like(
            n_nodes=48,
            campaign_days=30,
            lemon_fraction=0.0,
            enable_episodic_regimes=False,
        ),
        "hardware refresh (rates / 4)": ClusterSpec(
            name="RSC-1-refresh",
            n_nodes=48,
            component_rates={
                k: v * 0.25 for k, v in base_spec.component_rates.items()
            },
            campaign_days=30,
            lemon_fraction=0.0,
            enable_episodic_regimes=False,
        ),
    }

    rows = []
    hw, util, completed = summarize(baseline)
    rows.append(("recorded baseline", hw, f"{util:.1%}", completed))
    for name, spec in scenarios.items():
        print(f"replaying workload on: {name} ...")
        replayed = replay_trace(baseline, spec, seed=1)
        hw, util, completed = summarize(replayed)
        rows.append((name, hw, f"{util:.1%}", completed))

    print()
    print(
        render_table(
            ["scenario", "HW interruptions", "utilization", "jobs completed"],
            rows,
            title="What-if replay of one recorded month",
        )
    )
    print(
        "\nThe replayed workload is identical across scenarios (compare "
        "the three replay rows, which share one failure seed): repairing "
        "the lemons removes most interruptions, and the hardware refresh "
        "removes nearly all.  The recorded baseline row used the original "
        "campaign's own failure draws."
    )


if __name__ == "__main__":
    main()
