"""The paper's headline scalar observations, computed from one trace.

Covers Observation 4 (HW failures: <1% of jobs, ~19% of GPU runtime),
Observation 7 (>90% of jobs at most one server, <10% of GPU time), the
cluster utilization claims (83-85%), and the r_f estimates (6.50 / 2.34
failures per 1000 node-days).
"""

from dataclasses import dataclass
from typing import Optional

from repro.analysis.job_sizes import job_size_distribution
from repro.analysis.job_status import job_status_breakdown
from repro.analysis.report import render_table
from repro.core.mttf import node_failure_rate
from repro.options import RunOptions, UNSET, resolve_options
from repro.workload.trace import Trace


@dataclass(frozen=True)
class HeadlineNumbers:
    """One row per headline claim: name, paper value, measured value."""

    cluster_name: str
    utilization: float
    hw_job_fraction: float
    hw_gpu_time_fraction: float
    small_job_fraction: float
    small_job_gpu_time_fraction: float
    compute_256plus_fraction: float
    rf_per_1000_node_days: float

    def render(self) -> str:
        paper = {
            "RSC-1": {
                "utilization": "83%",
                "hw_jobs": "<1%",
                "hw_runtime": "~19%",
                "small_jobs": ">90%",
                "small_gpu_time": "<10%",
                "compute_256plus": "~66%",
                "rf": "6.50",
            },
            "RSC-2": {
                "utilization": "85%",
                "hw_jobs": "<1%",
                "hw_runtime": "(smaller)",
                "small_jobs": ">90%",
                "small_gpu_time": "<10%",
                "compute_256plus": "~52%",
                "rf": "2.34",
            },
        }.get(self.cluster_name, {})
        rows = [
            ("cluster utilization", paper.get("utilization", "-"), f"{self.utilization:.1%}"),
            ("jobs hit by HW failures", paper.get("hw_jobs", "-"), f"{self.hw_job_fraction:.2%}"),
            ("GPU runtime hit by HW failures", paper.get("hw_runtime", "-"), f"{self.hw_gpu_time_fraction:.1%}"),
            ("jobs <= 1 server", paper.get("small_jobs", "-"), f"{self.small_job_fraction:.1%}"),
            ("GPU time of <= 1 server jobs", paper.get("small_gpu_time", "-"), f"{self.small_job_gpu_time_fraction:.1%}"),
            ("compute from 256+ GPU jobs", paper.get("compute_256plus", "-"), f"{self.compute_256plus_fraction:.1%}"),
            ("r_f per 1000 node-days", paper.get("rf", "-"), f"{self.rf_per_1000_node_days:.2f}"),
        ]
        return render_table(
            ["observation", "paper", "measured"],
            rows,
            title=f"Headline numbers ({self.cluster_name})",
        )


def headline_numbers(
    trace: Trace,
    use_ground_truth: bool = True,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> HeadlineNumbers:
    """Compute the headline scalars from a trace.

    ``options.use_columns`` selects the vectorized path through the
    figure helpers and r_f; ``False`` is the rowwise benchmark
    reference.  The ``use_columns=`` keyword is the deprecated spelling.
    """
    opts = resolve_options(options, "headline_numbers", use_columns=use_columns)
    status = job_status_breakdown(trace, options=opts)
    sizes = job_size_distribution(trace, options=opts)
    utilization = trace.total_gpu_seconds() / (trace.n_gpus * trace.span_seconds)
    columns = trace.columns.jobs if opts.use_columns else None
    if columns is not None:
        largest = int(columns.n_gpus.max())
    else:
        largest = max(r.n_gpus for r in trace.job_records)
    rf = node_failure_rate(
        trace.job_records,
        min_gpus=min(128, max(8, largest // 2)),
        use_ground_truth=use_ground_truth,
        columns=columns,
    )
    small_gpu_time = sum(
        f for s, f in sizes.compute_fraction.items() if s <= 8
    )
    return HeadlineNumbers(
        cluster_name=trace.cluster_name,
        utilization=utilization,
        hw_job_fraction=status.hw_job_fraction,
        hw_gpu_time_fraction=status.hw_gpu_time_fraction,
        small_job_fraction=sizes.fraction_of_jobs_at_most(8),
        small_job_gpu_time_fraction=small_gpu_time,
        compute_256plus_fraction=sizes.fraction_of_compute_at_least(256),
        rf_per_1000_node_days=rf.rate * 1000.0,
    )
