"""Fig. 8: lost cluster goodput from failures and preemption cascades."""

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.options import RunOptions, UNSET, resolve_options
from repro.core.goodput import (
    CrashLoop,
    GoodputLoss,
    find_crash_loops,
    lost_goodput_by_size,
    second_order_fraction,
)
from repro.workload.trace import Trace


@dataclass(frozen=True)
class GoodputLossAnalysis:
    """Per-bucket losses, the second-order share, and crash loops."""

    cluster_name: str
    losses: List[GoodputLoss]
    second_order_share: float
    crash_loops: List[CrashLoop]
    total_gpu_hours_lost: float

    def render(self) -> str:
        rows = [
            (
                loss.gpus,
                f"{loss.direct_gpu_hours:.1f}",
                f"{loss.second_order_gpu_hours:.1f}",
                loss.n_direct,
                loss.n_second_order,
            )
            for loss in self.losses
        ]
        table = render_table(
            [
                "GPUs",
                "direct loss (GPU-h)",
                "2nd-order loss (GPU-h)",
                "# failures",
                "# cascaded preemptions",
            ],
            rows,
            title=f"Fig. 8 — lost goodput by job size ({self.cluster_name})",
        )
        loops = "; ".join(
            f"job {l.job_id} ({l.n_gpus} GPUs): {l.hw_interruptions} failures, "
            f"{l.preemptions_caused} preemptions ({l.gpus_preempted} GPUs)"
            for l in self.crash_loops[:3]
        )
        footer = (
            f"\ntotal lost: {self.total_gpu_hours_lost:.1f} GPU-h; "
            f"second-order share: {self.second_order_share:.1%}"
            + (f"\nworst crash loops: {loops}" if loops else "")
        )
        return table + footer


def goodput_loss_analysis(
    trace: Trace,
    min_loop_interruptions: int = 5,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> GoodputLossAnalysis:
    """Compute Fig. 8 from a trace.

    ``use_columns`` routes the bucket sums and crash-loop tallies through
    the trace's job columns; ``False`` is the rowwise reference path.
    """
    use_columns = resolve_options(
        options, "goodput_loss_analysis", use_columns=use_columns
    ).use_columns
    columns = trace.columns.jobs if use_columns else None
    losses = lost_goodput_by_size(trace.job_records, columns=columns)
    share = second_order_fraction(losses) if losses else 0.0
    return GoodputLossAnalysis(
        cluster_name=trace.cluster_name,
        losses=losses,
        second_order_share=share,
        crash_loops=find_crash_loops(
            trace.job_records,
            min_interruptions=min_loop_interruptions,
            columns=columns,
        ),
        total_gpu_hours_lost=sum(l.total_gpu_hours for l in losses),
    )
