"""Fig. 9: expected vs measured ETTR by job-run size.

For each size bucket: the mean measured job-run ETTR (with a 90% bootstrap
CI) of long, high-priority runs, against the analytic E[ETTR] computed
from aggregate statistics (cluster r_f, the bucket's mean queue wait, a
60-minute checkpoint interval, a 5-minute restart overhead) — Fig. 9's
methodology verbatim.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.core.ettr import ETTRParameters, expected_ettr
from repro.core.metrics import ETTRAssumptions, job_run_ettr
from repro.core.mttf import node_failure_rate, size_bucket
from repro.jobtypes import QosTier
from repro.options import RunOptions, UNSET, resolve_options
from repro.sim.timeunits import DAY, HOUR
from repro.stats.bootstrap import bootstrap_mean_ci
from repro.workload.jobruns import JobRun, filter_runs, group_job_runs
from repro.workload.trace import Trace


@dataclass(frozen=True)
class ETTRBucket:
    """One x-position of Fig. 9."""

    gpus: int
    n_runs: int
    measured_mean: float
    measured_lo: float
    measured_hi: float
    expected: float
    mean_queue_seconds: float


@dataclass(frozen=True)
class ETTRComparison:
    """Fig. 9's two series plus the inputs used to produce them."""

    cluster_name: str
    buckets: List[ETTRBucket]
    rf_per_node_day: float
    assumptions: ETTRAssumptions

    def bucket(self, gpus: int) -> ETTRBucket:
        for b in self.buckets:
            if b.gpus == gpus:
                return b
        raise KeyError(f"no ETTR bucket for {gpus} GPUs")

    def render(self) -> str:
        rows = [
            (
                b.gpus,
                b.n_runs,
                f"{b.measured_mean:.3f}",
                f"[{b.measured_lo:.3f}, {b.measured_hi:.3f}]",
                f"{b.expected:.3f}",
                f"{b.mean_queue_seconds / 60:.1f}m",
            )
            for b in self.buckets
        ]
        return render_table(
            ["GPUs", "runs", "measured ETTR", "90% CI", "E[ETTR]", "mean q"],
            rows,
            title=(
                f"Fig. 9 — expected vs measured job-run ETTR "
                f"({self.cluster_name}, dt_cp="
                f"{self.assumptions.checkpoint_interval / 60:.0f}m, u0="
                f"{self.assumptions.restart_overhead / 60:.0f}m)"
            ),
        )


def ettr_comparison(
    trace: Trace,
    assumptions: Optional[ETTRAssumptions] = None,
    min_total_runtime: float = 24 * HOUR,
    qos: Optional[QosTier] = QosTier.HIGH,
    min_runs_per_bucket: int = 2,
    use_ground_truth: bool = True,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> ETTRComparison:
    """Compute Fig. 9 from a trace.

    ``use_columns`` vectorizes the r_f estimate over the trace's job
    columns (run grouping stays rowwise — it builds JobRun objects);
    ``False`` is the rowwise benchmark reference.
    """
    if assumptions is None:
        assumptions = ETTRAssumptions()
    runs = filter_runs(
        group_job_runs(trace.job_records),
        min_total_runtime=min_total_runtime,
        qos=qos,
    )
    if not runs:
        raise ValueError(
            "no job runs pass the Fig. 9 cohort filter; relax "
            "min_total_runtime or qos"
        )
    use_columns = resolve_options(
        options, "ettr_comparison", use_columns=use_columns
    ).use_columns
    columns = trace.columns.jobs if use_columns else None
    if columns is not None:
        largest = int(columns.n_gpus.max())
    else:
        largest = max(r.n_gpus for r in trace.job_records)
    rf = node_failure_rate(
        trace.job_records,
        min_gpus=min(128, max(8, largest // 2)),
        use_ground_truth=use_ground_truth,
        columns=columns,
    ).rate

    by_bucket: Dict[int, List[JobRun]] = {}
    for run in runs:
        by_bucket.setdefault(size_bucket(run.n_gpus), []).append(run)

    buckets = []
    for gpus in sorted(by_bucket):
        cohort = by_bucket[gpus]
        if len(cohort) < min_runs_per_bucket:
            continue
        ettrs = [job_run_ettr(run, assumptions).ettr for run in cohort]
        mean, lo, hi = bootstrap_mean_ci(ettrs, confidence=0.90)
        queue_waits = [run.mean_requeue_wait() for run in cohort]
        initial_waits = [run.attempts[0].queue_wait for run in cohort]
        mean_q = float(np.mean(queue_waits + initial_waits))
        mean_runtime = float(np.mean([run.total_runtime for run in cohort]))
        params = ETTRParameters(
            n_nodes=max(1, gpus // 8),
            failure_rate_per_node_day=rf,
            checkpoint_interval=assumptions.checkpoint_interval,
            restart_overhead=assumptions.restart_overhead,
            queue_time=max(1.0, mean_q),
            productive_runtime=max(HOUR, mean_runtime),
        )
        try:
            expected = expected_ettr(params)
        except ValueError:
            expected = 0.0
        buckets.append(
            ETTRBucket(
                gpus=gpus,
                n_runs=len(cohort),
                measured_mean=mean,
                measured_lo=lo,
                measured_hi=hi,
                expected=expected,
                mean_queue_seconds=mean_q,
            )
        )
    return ETTRComparison(
        cluster_name=trace.cluster_name,
        buckets=buckets,
        rf_per_node_day=rf,
        assumptions=assumptions,
    )
