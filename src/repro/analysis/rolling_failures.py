"""Fig. 5: failure-rate evolution over the campaign.

A trailing-window rate of detected infrastructure incidents, in failures
per 1000 node-days, overall and per failure mode, with vertical markers at
health-check introduction dates.  The paper's 30-day window scales down
with campaign length so shorter benchmark campaigns still resolve the
episodic regimes (driver bug, mount wave, IB-link spike).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.report import render_series
from repro.options import RunOptions, UNSET, resolve_options
from repro.sim.timeunits import DAY
from repro.stats.rolling import rolling_rate
from repro.workload.trace import Trace


@dataclass(frozen=True)
class FailureRateTimeline:
    """Rolling failure-rate series (per 1000 node-days)."""

    cluster_name: str
    times_days: np.ndarray
    overall: np.ndarray
    by_component: Dict[str, np.ndarray]
    check_introductions: Dict[str, float]  # check name -> day introduced
    window_days: float

    def peak_rate(self) -> float:
        return float(np.max(self.overall)) if self.overall.size else 0.0

    def component_peak_day(self, component: str) -> float:
        series = self.by_component[component]
        return float(self.times_days[int(np.argmax(series))])

    def render(self, component: str = None) -> str:
        series = self.overall if component is None else self.by_component[component]
        label = component or "all"
        marks = ", ".join(
            f"{name}@day{day:.0f}" for name, day in self.check_introductions.items()
        )
        return (
            render_series(
                self.times_days,
                series,
                x_label="day",
                y_label=f"failures/1k node-days ({label})",
                title=f"Fig. 5 — failure rate evolution ({self.cluster_name})",
            )
            + (f"\ncheck introductions: {marks}" if marks else "")
        )


def failure_rate_timeline(
    trace: Trace,
    window_days: float = None,
    step_days: float = 1.0,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> FailureRateTimeline:
    """Compute Fig. 5 from the trace's incident events.

    Failure events are ``cluster.incident`` records — the deduplicated,
    detection-level view (one event per incident regardless of how many
    overlapping checks fired).

    ``use_columns=True`` (default) filters incidents and first firings
    with array masks over the trace's event columns instead of Python
    loops over every event; ``False`` is the rowwise reference path.
    """
    span_days = trace.span_seconds / DAY
    if window_days is None:
        # The paper's 30-day window on an 11-month span, proportionally.
        window_days = max(1.0, span_days * (30.0 / 330.0))
    use_columns = resolve_options(
        options, "failure_rate_timeline", use_columns=use_columns
    ).use_columns
    if use_columns:
        times, comp_times_by_name, first_fire = _event_series_columnar(trace)
    else:
        incidents = [e for e in trace.events if e.kind == "cluster.incident"]
        times = [e.time for e in incidents]
        comp_times_by_name = {
            component: [
                e.time for e in incidents if e.data.get("component") == component
            ]
            for component in sorted(
                {e.data.get("component", "?") for e in incidents}
            )
        }
        first_fire = {}
        for event in trace.events:
            if event.kind != "health.check_failed":
                continue
            check = event.data.get("check")
            if check not in first_fire:
                first_fire[check] = event.time
    grid, overall = rolling_rate(
        times,
        window=window_days * DAY,
        start=0.0,
        end=trace.span_seconds,
        step=step_days * DAY,
        exposure_per_time=trace.n_nodes / DAY / 1000.0,
    )
    by_component: Dict[str, np.ndarray] = {}
    for component, comp_times in comp_times_by_name.items():
        _g, series = rolling_rate(
            comp_times,
            window=window_days * DAY,
            start=0.0,
            end=trace.span_seconds,
            step=step_days * DAY,
            exposure_per_time=trace.n_nodes / DAY / 1000.0,
        )
        by_component[component] = series

    # Check introduction times are recoverable from the cluster spec's
    # fractional placement; campaigns store the fractions in metadata when
    # available, else we derive them from first-firing times.
    introductions: Dict[str, float] = {}
    for check in ("filesystem_mounts", "ipmi_critical_interrupt"):
        if check in first_fire:
            introductions[check] = first_fire[check] / DAY
    return FailureRateTimeline(
        cluster_name=trace.cluster_name,
        times_days=grid / DAY,
        overall=overall,
        by_component=by_component,
        check_introductions=introductions,
        window_days=window_days,
    )


def _event_series_columnar(trace: Trace):
    """(incident_times, per-component times, first health firings).

    Mirrors the rowwise filters exactly, including the quirk that the
    ``"?"`` bucket (incidents without a component field) matches only
    events whose component is literally ``"?"`` — i.e. it stays empty.
    """
    ev = trace.columns.events
    inc = ev.mask_for_kind("cluster.incident")
    times = ev.time[inc]
    comp = ev.component_code[inc]
    table = ev.component_table
    names = sorted({"?" if c < 0 else table[c] for c in np.unique(comp)})
    comp_times_by_name: Dict[str, np.ndarray] = {}
    for name in names:
        try:
            code = table.index(name)
        except ValueError:
            code = -2  # no event carries this literal string
        comp_times_by_name[name] = times[comp == code]

    first_fire: Dict[str, float] = {}
    health = ev.mask_for_kind("health.check_failed")
    for check in ("filesystem_mounts", "ipmi_critical_interrupt"):
        try:
            code = ev.check_table.index(check)
        except ValueError:
            continue
        idx = np.flatnonzero(health & (ev.check_code == code))
        if len(idx):  # stream order == the rowwise loop's first hit
            first_fire[check] = float(ev.time[idx[0]])
    return times, comp_times_by_name, first_fire
