"""Fig. 6: job-size distribution by job count and by compute.

Buckets raw GPU counts at powers of two (1, 2, 4, ..., 4096) and reports
both the fraction of jobs and the fraction of GPU time per bucket, for the
trace and (optionally) the generating profile's analytic expectation —
Observation 7's ">90% of jobs are at most one server but <10% of GPU
time; 256+-GPU jobs draw most of the compute".
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import render_table
from repro.options import RunOptions, UNSET, resolve_options
from repro.stats.quantiles import histogram_by_bucket, power_of_two_bucket
from repro.workload.profiles import WorkloadProfile
from repro.workload.trace import Trace


@dataclass(frozen=True)
class JobSizeDistribution:
    """Per-size-bucket job and compute fractions."""

    cluster_name: str
    job_fraction: Dict[int, float]
    compute_fraction: Dict[int, float]
    profile_job_fraction: Optional[Dict[int, float]] = None
    profile_compute_fraction: Optional[Dict[int, float]] = None

    def fraction_of_jobs_at_most(self, gpus: int) -> float:
        return sum(f for s, f in self.job_fraction.items() if s <= gpus)

    def fraction_of_compute_at_least(self, gpus: int) -> float:
        return sum(f for s, f in self.compute_fraction.items() if s >= gpus)

    def render(self) -> str:
        sizes = sorted(set(self.job_fraction) | set(self.compute_fraction))
        rows = []
        for size in sizes:
            row = [
                size,
                f"{self.job_fraction.get(size, 0.0):.2%}",
                f"{self.compute_fraction.get(size, 0.0):.2%}",
            ]
            if self.profile_job_fraction is not None:
                row.append(f"{self.profile_job_fraction.get(size, 0.0):.2%}")
                row.append(f"{self.profile_compute_fraction.get(size, 0.0):.2%}")
            rows.append(row)
        headers = ["GPUs", "% jobs", "% compute"]
        if self.profile_job_fraction is not None:
            headers += ["% jobs (model)", "% compute (model)"]
        summary = (
            f"\n<=8 GPUs: {self.fraction_of_jobs_at_most(8):.1%} of jobs, "
            f"{1 - self.fraction_of_compute_at_least(16):.1%} of compute; "
            f"256+ GPUs: {self.fraction_of_compute_at_least(256):.1%} of compute"
        )
        return (
            render_table(
                headers, rows, title=f"Fig. 6 — job sizes ({self.cluster_name})"
            )
            + summary
        )


def job_size_distribution(
    trace: Trace,
    profile: Optional[WorkloadProfile] = None,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> JobSizeDistribution:
    """Compute Fig. 6 from a trace (deduplicating attempts to jobs).

    Job fractions count each *logical job* once (by job id); compute
    fractions sum GPU time over all attempts, which is what the cluster
    actually spent.

    ``use_columns=True`` (default) deduplicates and buckets with array
    reductions over the trace's job columns; ``use_columns=False`` keeps
    the rowwise reference path.
    """
    records = trace.job_records
    if not records:
        raise ValueError("trace has no job records")
    use_columns = resolve_options(
        options, "job_size_distribution", use_columns=use_columns
    ).use_columns
    if use_columns:
        job_hist, compute_hist = _size_histograms_columnar(trace)
    else:
        seen = {}
        for record in records:
            seen.setdefault(record.job_id, record.n_gpus)
        job_hist = histogram_by_bucket(
            list(seen.values()),
            [1.0] * len(seen),
            bucketer=lambda g: power_of_two_bucket(g, minimum=1),
        )
        compute_hist = histogram_by_bucket(
            [r.n_gpus for r in records],
            [r.gpu_seconds for r in records],
            bucketer=lambda g: power_of_two_bucket(g, minimum=1),
        )
    total_jobs = sum(job_hist.values())
    total_compute = sum(compute_hist.values())
    profile_jobs = profile_compute = None
    if profile is not None:
        profile_jobs = profile.expected_job_fraction_by_size()
        profile_compute = profile.expected_compute_fraction_by_size()
    return JobSizeDistribution(
        cluster_name=trace.cluster_name,
        job_fraction={s: v / total_jobs for s, v in job_hist.items()},
        compute_fraction={s: v / total_compute for s, v in compute_hist.items()},
        profile_job_fraction=profile_jobs,
        profile_compute_fraction=profile_compute,
    )


def _size_histograms_columnar(trace: Trace):
    """(job_hist, compute_hist) via array reductions, sorted-bucket keyed."""
    import numpy as np

    from repro.core.columns import next_power_of_two

    cols = trace.columns.jobs
    # First attempt per job id carries its size (np.unique's return_index
    # points at first occurrences), matching the rowwise setdefault dedup.
    _, first_idx = np.unique(cols.job_id, return_index=True)
    job_buckets = next_power_of_two(cols.n_gpus[first_idx], minimum=1)
    uniq_j, counts_j = np.unique(job_buckets, return_counts=True)
    job_hist = {int(b): float(c) for b, c in zip(uniq_j, counts_j)}

    compute_buckets = next_power_of_two(cols.n_gpus, minimum=1)
    uniq_c, inverse = np.unique(compute_buckets, return_inverse=True)
    sums = np.bincount(inverse, weights=cols.gpu_seconds, minlength=len(uniq_c))
    compute_hist = {int(b): float(s) for b, s in zip(uniq_c, sums)}
    return job_hist, compute_hist
