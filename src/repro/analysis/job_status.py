"""Fig. 3: scheduler job status breakdown by job count and GPU runtime.

Two views of the same records: the fraction of *jobs* ending in each state
and the fraction of *GPU runtime* those jobs held.  The (HW) annotation
marks infrastructure-attributed terminations — the paper's headline being
that they are ~0.2% of jobs but ~19% of GPU runtime.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import render_table
from repro.options import RunOptions, UNSET, resolve_options
from repro.jobtypes import JobState
from repro.workload.trace import Trace


@dataclass(frozen=True)
class JobStatusBreakdown:
    """Fractions per state, plus the hardware-failure impact summary."""

    cluster_name: str
    n_records: int
    job_fraction: Dict[JobState, float]
    gpu_time_fraction: Dict[JobState, float]
    hw_job_fraction: float
    hw_gpu_time_fraction: float

    def render(self) -> str:
        rows = []
        for state in JobState:
            jf = self.job_fraction.get(state)
            if jf is None:
                continue
            rows.append(
                (
                    state.value,
                    f"{jf:.2%}",
                    f"{self.gpu_time_fraction.get(state, 0.0):.2%}",
                )
            )
        table = render_table(
            ["state", "% of jobs", "% of GPU runtime"],
            rows,
            title=f"Fig. 3 — job status breakdown ({self.cluster_name})",
        )
        footer = (
            f"\n(HW) infra failures: {self.hw_job_fraction:.2%} of jobs, "
            f"{self.hw_gpu_time_fraction:.2%} of GPU runtime"
        )
        return table + footer


def job_status_breakdown(
    trace: Trace,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> JobStatusBreakdown:
    """Compute Fig. 3 from a trace's attempt records.

    ``options`` (:class:`repro.RunOptions`) selects the execution path:
    ``use_columns=True`` (default) aggregates per-state counts and GPU
    time with ``np.bincount`` over the trace's typed job columns, the
    rowwise loop is the benchmark reference.  Both include exactly the
    states that occurred.  The ``use_columns=`` keyword is the
    deprecated spelling.
    """
    opts = resolve_options(
        options, "job_status_breakdown", use_columns=use_columns
    )
    use_columns = opts.use_columns
    records = trace.job_records
    if not records:
        raise ValueError("trace has no job records")
    if use_columns:
        return _job_status_breakdown_columnar(trace)
    total_jobs = len(records)
    total_gpu_seconds = sum(r.gpu_seconds for r in records)
    if total_gpu_seconds <= 0:
        raise ValueError("trace has no scheduled GPU time")
    job_counts: Dict[JobState, int] = {}
    gpu_time: Dict[JobState, float] = {}
    hw_jobs = 0
    hw_gpu_seconds = 0.0
    for record in records:
        job_counts[record.state] = job_counts.get(record.state, 0) + 1
        gpu_time[record.state] = gpu_time.get(record.state, 0.0) + record.gpu_seconds
        if record.is_hw_interruption:
            hw_jobs += 1
            hw_gpu_seconds += record.gpu_seconds
    return JobStatusBreakdown(
        cluster_name=trace.cluster_name,
        n_records=total_jobs,
        job_fraction={s: c / total_jobs for s, c in job_counts.items()},
        gpu_time_fraction={s: t / total_gpu_seconds for s, t in gpu_time.items()},
        hw_job_fraction=hw_jobs / total_jobs,
        hw_gpu_time_fraction=hw_gpu_seconds / total_gpu_seconds,
    )


def _job_status_breakdown_columnar(trace: Trace) -> JobStatusBreakdown:
    import numpy as np

    from repro.core.columns import JOB_STATES

    cols = trace.columns.jobs
    total_jobs = len(cols)
    gpu_seconds = cols.gpu_seconds
    total_gpu_seconds = float(gpu_seconds.sum())
    if total_gpu_seconds <= 0:
        raise ValueError("trace has no scheduled GPU time")
    n_states = len(JOB_STATES)
    counts = np.bincount(cols.state_code, minlength=n_states)
    time_sums = np.bincount(
        cols.state_code, weights=gpu_seconds, minlength=n_states
    )
    hw = cols.is_hw_interruption
    return JobStatusBreakdown(
        cluster_name=trace.cluster_name,
        n_records=total_jobs,
        job_fraction={
            JOB_STATES[code]: int(counts[code]) / total_jobs
            for code in range(n_states)
            if counts[code]
        },
        gpu_time_fraction={
            JOB_STATES[code]: float(time_sums[code]) / total_gpu_seconds
            for code in range(n_states)
            if counts[code]
        },
        hw_job_fraction=int(np.count_nonzero(hw)) / total_jobs,
        hw_gpu_time_fraction=float(gpu_seconds[hw].sum()) / total_gpu_seconds,
    )
