"""Queue-wait characterization by QoS tier and job size.

Queueing is half of ETTR's denominator ("the total time a job was either
scheduled or eligible to be scheduled but waiting in the queue") and the
paper repeatedly leans on queue behaviour: high-priority jobs wait little,
requeued large jobs preempt their way back quickly, and the two-hour
shield protects low-priority progress.  This module surfaces those
distributions from a trace.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.core.mttf import size_bucket
from repro.jobtypes import JobState, QosTier
from repro.workload.trace import Trace


@dataclass(frozen=True)
class WaitStats:
    """Wait distribution for one cohort of attempts."""

    n: int
    median_seconds: float
    p90_seconds: float
    mean_seconds: float


def _stats(waits: List[float]) -> WaitStats:
    arr = np.asarray(waits)
    return WaitStats(
        n=int(arr.size),
        median_seconds=float(np.median(arr)),
        p90_seconds=float(np.percentile(arr, 90)),
        mean_seconds=float(arr.mean()),
    )


@dataclass(frozen=True)
class QueueWaitAnalysis:
    """Waits by QoS, by size bucket, and for requeued attempts."""

    cluster_name: str
    by_qos: Dict[QosTier, WaitStats]
    by_size: Dict[int, WaitStats]
    first_attempts: WaitStats
    requeued_attempts: WaitStats

    def render(self) -> str:
        rows = []
        for qos, stats in sorted(self.by_qos.items(), key=lambda kv: -kv[0]):
            rows.append(
                (
                    f"qos={qos.name.lower()}",
                    stats.n,
                    f"{stats.median_seconds / 60:.1f}m",
                    f"{stats.p90_seconds / 3600:.2f}h",
                )
            )
        for size, stats in sorted(self.by_size.items()):
            rows.append(
                (
                    f"{size} GPUs",
                    stats.n,
                    f"{stats.median_seconds / 60:.1f}m",
                    f"{stats.p90_seconds / 3600:.2f}h",
                )
            )
        rows.append(
            (
                "first attempts",
                self.first_attempts.n,
                f"{self.first_attempts.median_seconds / 60:.1f}m",
                f"{self.first_attempts.p90_seconds / 3600:.2f}h",
            )
        )
        rows.append(
            (
                "requeued attempts",
                self.requeued_attempts.n,
                f"{self.requeued_attempts.median_seconds / 60:.1f}m",
                f"{self.requeued_attempts.p90_seconds / 3600:.2f}h",
            )
        )
        return render_table(
            ["cohort", "attempts", "median wait", "p90 wait"],
            rows,
            title=f"Queue waits ({self.cluster_name})",
        )


def queue_wait_analysis(trace: Trace) -> QueueWaitAnalysis:
    """Compute wait distributions from a trace's attempt records."""
    records = trace.job_records
    if not records:
        raise ValueError("trace has no job records")
    by_qos: Dict[QosTier, List[float]] = {}
    by_size: Dict[int, List[float]] = {}
    first: List[float] = []
    requeued: List[float] = []
    for record in records:
        by_qos.setdefault(record.qos, []).append(record.queue_wait)
        by_size.setdefault(size_bucket(record.n_gpus), []).append(
            record.queue_wait
        )
        (first if record.attempt == 0 else requeued).append(record.queue_wait)
    return QueueWaitAnalysis(
        cluster_name=trace.cluster_name,
        by_qos={qos: _stats(waits) for qos, waits in by_qos.items()},
        by_size={size: _stats(waits) for size, waits in by_size.items()},
        first_attempts=_stats(first) if first else _stats([0.0]),
        requeued_attempts=_stats(requeued) if requeued else _stats([0.0]),
    )
