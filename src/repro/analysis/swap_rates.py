"""GPU swap-rate corroboration (Section III).

The paper cross-checks its failure-rate estimates against the fleet's GPU
swap logs: "RSC-1 GPUs are swapped at ~3 times the rate compared to
RSC-2; both the GPU swap rate and failure rate differences may be due to
differing workloads that tax GPUs on RSC-1 more heavily."

Swaps here come from the remediation workflow: permanent faults in the
GPU domain (GPU, HBM, NVLink, PCIe) replace the tray and increment the
node's swap counter.
"""

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import render_table
from repro.sim.timeunits import DAY
from repro.workload.trace import Trace


@dataclass(frozen=True)
class SwapRateSummary:
    """Fleet GPU swap statistics for one campaign."""

    cluster_name: str
    total_swaps: int
    n_gpus: int
    span_days: float

    @property
    def swaps_per_1000_gpu_years(self) -> float:
        gpu_years = self.n_gpus * self.span_days / 365.25
        if gpu_years <= 0:
            raise ValueError("campaign has no GPU exposure")
        return 1000.0 * self.total_swaps / gpu_years


@dataclass(frozen=True)
class SwapRateComparison:
    """The RSC-1-vs-RSC-2 swap-rate cross-check."""

    primary: SwapRateSummary
    secondary: SwapRateSummary

    @property
    def ratio(self) -> float:
        """Primary's swap rate over secondary's (paper: ~3x)."""
        denom = self.secondary.swaps_per_1000_gpu_years
        if denom == 0:
            return float("inf")
        return self.primary.swaps_per_1000_gpu_years / denom

    def render(self) -> str:
        rows = [
            (
                s.cluster_name,
                s.total_swaps,
                f"{s.swaps_per_1000_gpu_years:.1f}",
            )
            for s in (self.primary, self.secondary)
        ]
        table = render_table(
            ["cluster", "GPU swaps", "swaps / 1000 GPU-years"],
            rows,
            title="GPU swap rates (paper: RSC-1 ~3x RSC-2)",
        )
        return table + f"\nratio: {self.ratio:.2f}x"


def swap_rate_summary(trace: Trace) -> SwapRateSummary:
    """Summarize a campaign's GPU swaps from its node records."""
    if not trace.node_records:
        raise ValueError("trace has no node records")
    return SwapRateSummary(
        cluster_name=trace.cluster_name,
        total_swaps=sum(rec.gpu_swaps for rec in trace.node_records),
        n_gpus=trace.n_gpus,
        span_days=trace.span_seconds / DAY,
    )


def swap_rate_comparison(primary: Trace, secondary: Trace) -> SwapRateComparison:
    """Compare two campaigns' swap rates (Section III's cross-check)."""
    return SwapRateComparison(
        primary=swap_rate_summary(primary),
        secondary=swap_rate_summary(secondary),
    )
