"""The operator's one-page fleet report.

Condenses a campaign trace into the numbers a cluster operator tracks
week over week: utilization, failure rate and MTTF-at-scale, the top
failure modes, lemon suspects, queue health, and the goodput bleed.  This
is the composite view behind the paper's "tracking reliability metrics"
operational lesson, and the body of the CLI's ``report`` subcommand.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.failure_rates import attributed_failure_rates
from repro.analysis.goodput_loss import goodput_loss_analysis
from repro.analysis.job_status import job_status_breakdown
from repro.analysis.lemon_analysis import lemon_analysis
from repro.analysis.mttf_analysis import mttf_analysis
from repro.analysis.queue_waits import queue_wait_analysis
from repro.analysis.report import render_table
from repro.workload.trace import Trace


@dataclass(frozen=True)
class FleetReport:
    """Everything the weekly ops review asks about, precomputed."""

    cluster_name: str
    span_days: float
    utilization: float
    rf_per_1000_node_days: float
    projected_mttf_16k_hours: float
    top_failure_modes: Tuple[Tuple[str, float], ...]
    lemon_suspects: Tuple[int, ...]
    goodput_lost_gpu_hours: float
    second_order_share: float
    median_wait_minutes: float
    p90_wait_hours: float
    completed_fraction: float
    hw_job_fraction: float

    def render(self) -> str:
        rows = [
            ("span", f"{self.span_days:.0f} days"),
            ("utilization", f"{self.utilization:.1%}"),
            ("r_f (per 1000 node-days)", f"{self.rf_per_1000_node_days:.2f}"),
            (
                "projected MTTF @ 16k GPUs",
                f"{self.projected_mttf_16k_hours:.2f} h",
            ),
            ("jobs completed", f"{self.completed_fraction:.1%}"),
            ("jobs hit by hardware", f"{self.hw_job_fraction:.2%}"),
            (
                "goodput lost to failures",
                f"{self.goodput_lost_gpu_hours:.0f} GPU-h "
                f"({self.second_order_share:.0%} second-order)",
            ),
            ("median queue wait", f"{self.median_wait_minutes:.1f} min"),
            ("p90 queue wait", f"{self.p90_wait_hours:.2f} h"),
            (
                "top failure modes",
                ", ".join(f"{m} ({r:.1f}/1M GPU-h)" for m, r in self.top_failure_modes),
            ),
            (
                "lemon suspects",
                ", ".join(str(n) for n in self.lemon_suspects) or "none",
            ),
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title=f"Fleet report — {self.cluster_name}",
        )


def fleet_report(trace: Trace) -> FleetReport:
    """Build the one-page report from a trace."""
    from repro.jobtypes import JobState
    from repro.sim.timeunits import DAY

    status = job_status_breakdown(trace)
    mttf = mttf_analysis(trace)
    rates = attributed_failure_rates(trace)
    goodput = goodput_loss_analysis(trace)
    waits = queue_wait_analysis(trace)
    try:
        lemons = lemon_analysis(trace).report.flagged_node_ids
    except ValueError:
        lemons = ()
    all_waits = [r.queue_wait for r in trace.job_records]
    return FleetReport(
        cluster_name=trace.cluster_name,
        span_days=trace.span_seconds / DAY,
        utilization=trace.total_gpu_seconds()
        / (trace.n_gpus * trace.span_seconds),
        rf_per_1000_node_days=mttf.rf_per_1000_node_days,
        projected_mttf_16k_hours=mttf.projection.get(16384, float("nan")),
        top_failure_modes=tuple(list(rates.rates.items())[:4]),
        lemon_suspects=tuple(lemons),
        goodput_lost_gpu_hours=goodput.total_gpu_hours_lost,
        second_order_share=goodput.second_order_share,
        median_wait_minutes=float(np.median(all_waits)) / 60.0,
        p90_wait_hours=float(np.percentile(all_waits, 90)) / 3600.0,
        completed_fraction=status.job_fraction.get(JobState.COMPLETED, 0.0),
        hw_job_fraction=status.hw_job_fraction,
    )
