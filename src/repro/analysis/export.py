"""Export analysis results as plain tabular data (CSV / row dicts).

The ASCII renderers are for eyeballs; downstream users plotting the
figures want the underlying series.  Each ``*_rows`` function turns one
analysis result into ``(headers, rows)`` suitable for
:func:`write_csv` or a dataframe constructor.
"""

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.ettr_analysis import ETTRComparison
from repro.analysis.goodput_loss import GoodputLossAnalysis
from repro.analysis.job_sizes import JobSizeDistribution
from repro.analysis.job_status import JobStatusBreakdown
from repro.analysis.mttf_analysis import MTTFAnalysis
from repro.analysis.rolling_failures import FailureRateTimeline

Rows = Tuple[List[str], List[List[object]]]


def write_csv(path, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Write one table as CSV (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))


def job_status_rows(result: JobStatusBreakdown) -> Rows:
    headers = ["state", "job_fraction", "gpu_time_fraction"]
    rows = []
    for state, frac in sorted(
        result.job_fraction.items(), key=lambda kv: -kv[1]
    ):
        rows.append(
            [state.value, frac, result.gpu_time_fraction.get(state, 0.0)]
        )
    return headers, rows


def job_sizes_rows(result: JobSizeDistribution) -> Rows:
    headers = ["gpus", "job_fraction", "compute_fraction"]
    if result.profile_job_fraction is not None:
        headers += ["model_job_fraction", "model_compute_fraction"]
    rows = []
    sizes = sorted(set(result.job_fraction) | set(result.compute_fraction))
    for size in sizes:
        row = [
            size,
            result.job_fraction.get(size, 0.0),
            result.compute_fraction.get(size, 0.0),
        ]
        if result.profile_job_fraction is not None:
            row += [
                result.profile_job_fraction.get(size, 0.0),
                result.profile_compute_fraction.get(size, 0.0),
            ]
        rows.append(row)
    return headers, rows


def mttf_rows(result: MTTFAnalysis) -> Rows:
    headers = [
        "gpus",
        "attempts",
        "failures",
        "runtime_hours",
        "mttf_hours",
        "mttf_lo",
        "mttf_hi",
        "theory_hours",
    ]
    rows = []
    for bucket in result.buckets:
        rows.append(
            [
                bucket.gpus,
                bucket.n_records,
                bucket.failures,
                bucket.runtime_hours,
                bucket.mttf_hours,
                bucket.mttf_hours_lo,
                bucket.mttf_hours_hi,
                result.projection.get(bucket.gpus, float("nan")),
            ]
        )
    return headers, rows


def goodput_rows(result: GoodputLossAnalysis) -> Rows:
    headers = [
        "gpus",
        "direct_gpu_hours",
        "second_order_gpu_hours",
        "n_direct",
        "n_second_order",
    ]
    rows = [
        [
            loss.gpus,
            loss.direct_gpu_hours,
            loss.second_order_gpu_hours,
            loss.n_direct,
            loss.n_second_order,
        ]
        for loss in result.losses
    ]
    return headers, rows


def ettr_rows(result: ETTRComparison) -> Rows:
    headers = [
        "gpus",
        "n_runs",
        "measured_mean",
        "measured_lo",
        "measured_hi",
        "expected",
        "mean_queue_seconds",
    ]
    rows = [
        [
            b.gpus,
            b.n_runs,
            b.measured_mean,
            b.measured_lo,
            b.measured_hi,
            b.expected,
            b.mean_queue_seconds,
        ]
        for b in result.buckets
    ]
    return headers, rows


def failure_rate_rows(result) -> Rows:
    """Fig. 4's component rates (takes a FailureRateTable)."""
    headers = ["component", "failures_per_million_gpu_hours"]
    rows = [[component, rate] for component, rate in result.rates.items()]
    return headers, rows


def timeline_rows(result: FailureRateTimeline) -> Rows:
    headers = ["day", "overall"] + sorted(result.by_component)
    rows = []
    for i, day in enumerate(result.times_days):
        row = [float(day), float(result.overall[i])]
        for component in sorted(result.by_component):
            row.append(float(result.by_component[component][i]))
        rows.append(row)
    return headers, rows


def export_all(trace, out_dir, profile=None) -> Dict[str, Path]:
    """Export every figure's data for one trace; returns written paths."""
    from repro.analysis import (
        ettr_comparison,
        failure_rate_timeline,
        goodput_loss_analysis,
        job_size_distribution,
        job_status_breakdown,
        mttf_analysis,
    )
    from repro.sim.timeunits import HOUR

    out_dir = Path(out_dir)
    written: Dict[str, Path] = {}

    def emit(name: str, headers, rows) -> None:
        path = out_dir / f"{name}.csv"
        write_csv(path, headers, rows)
        written[name] = path

    from repro.analysis import attributed_failure_rates

    emit("fig3_job_status", *job_status_rows(job_status_breakdown(trace)))
    emit(
        "fig4_failure_rates",
        *failure_rate_rows(attributed_failure_rates(trace)),
    )
    emit(
        "fig6_job_sizes",
        *job_sizes_rows(job_size_distribution(trace, profile)),
    )
    emit("fig7_mttf", *mttf_rows(mttf_analysis(trace)))
    emit("fig8_goodput", *goodput_rows(goodput_loss_analysis(trace)))
    emit("fig5_timeline", *timeline_rows(failure_rate_timeline(trace)))
    try:
        emit(
            "fig9_ettr",
            *ettr_rows(
                ettr_comparison(
                    trace,
                    min_total_runtime=12 * HOUR,
                    qos=None,
                    min_runs_per_bucket=2,
                )
            ),
        )
    except ValueError:
        pass  # cohort empty on tiny traces; other figures still export
    return written
