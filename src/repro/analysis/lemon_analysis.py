"""Fig. 11 + Table II: lemon-node signal CDFs, detection, root causes."""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.core.lemon import (
    LEMON_SIGNALS,
    LemonDetector,
    LemonPolicy,
    LemonReport,
    root_cause_table,
)
from repro.stats.quantiles import ecdf
from repro.workload.trace import Trace


@dataclass(frozen=True)
class LemonAnalysis:
    """Signal CDFs, the detector's report, and the root-cause table."""

    cluster_name: str
    signal_cdfs: Dict[str, Tuple[np.ndarray, np.ndarray]]
    report: LemonReport
    policy: LemonPolicy
    root_causes: Dict[str, float]
    lemon_signal_means: Dict[str, float]
    fleet_signal_means: Dict[str, float]

    def render(self) -> str:
        rows = []
        for name in LEMON_SIGNALS:
            rows.append(
                (
                    name,
                    f"{self.fleet_signal_means[name]:.3f}",
                    f"{self.lemon_signal_means[name]:.3f}",
                    f"{self.policy.thresholds.get(name, float('nan')):.3f}",
                )
            )
        table = render_table(
            ["signal", "fleet mean", "lemon mean", "threshold"],
            rows,
            title=f"Fig. 11 — lemon signals ({self.cluster_name})",
        )
        causes = render_table(
            ["component", "fraction"],
            [(c, f"{f:.1%}") for c, f in self.root_causes.items()],
            title="Table II — lemon root causes",
        )
        footer = (
            f"\nflagged {len(self.report.flagged_node_ids)} nodes "
            f"({self.report.flagged_fraction:.1%} of fleet), "
            f"precision={self.report.precision:.0%}, "
            f"recall={self.report.recall:.0%}"
        )
        return table + "\n\n" + causes + footer


def lemon_analysis(
    trace: Trace,
    policy: Optional[LemonPolicy] = None,
    cdf_percentile: float = 99.0,
) -> LemonAnalysis:
    """Compute Fig. 11 / Table II from a trace's node records.

    With no explicit policy, thresholds are fit from the fleet CDFs at
    ``cdf_percentile`` — the Fig. 11 methodology of reading thresholds off
    the signal distributions.
    """
    nodes = trace.node_records
    if not nodes:
        raise ValueError("trace has no node records")
    if policy is None:
        policy = LemonPolicy.from_cdf(nodes, percentile=cdf_percentile)
    detector = LemonDetector(policy)
    report = detector.evaluate(nodes)
    cdfs = {
        name: ecdf([rec.signal(name) for rec in nodes]) for name in LEMON_SIGNALS
    }
    lemons = [rec for rec in nodes if rec.is_lemon_truth]
    lemon_means = {
        name: (
            float(np.mean([rec.signal(name) for rec in lemons])) if lemons else 0.0
        )
        for name in LEMON_SIGNALS
    }
    fleet_means = {
        name: float(np.mean([rec.signal(name) for rec in nodes]))
        for name in LEMON_SIGNALS
    }
    try:
        causes = root_cause_table(nodes)
    except ValueError:
        causes = {}
    return LemonAnalysis(
        cluster_name=trace.cluster_name,
        signal_cdfs=cdfs,
        report=report,
        policy=policy,
        root_causes=causes,
        lemon_signal_means=lemon_means,
        fleet_signal_means=fleet_means,
    )
