"""Fig. 10: checkpoint and failure-rate requirements at 100k-GPU scale."""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.core.checkpoint import ettr_checkpoint_grid, required_checkpoint_interval
from repro.sim.timeunits import MINUTE

#: The two clusters' measured failure rates (per 1000 node-days).
RSC1_RF = 6.50e-3
RSC2_RF = 2.34e-3


@dataclass(frozen=True)
class CheckpointSweep:
    """E[ETTR] surface plus required-interval solutions."""

    n_gpus: int
    failure_rates: Tuple[float, ...]
    intervals: Tuple[float, ...]
    grid: Dict[Tuple[float, float], float]
    required: Dict[Tuple[float, float], float]  # (rf, target) -> dt seconds

    def ettr_at(self, rf: float, interval: float) -> float:
        return self.grid[(float(rf), float(interval))]

    def required_interval(self, rf: float, target: float) -> float:
        return self.required[(float(rf), float(target))]

    def render(self) -> str:
        headers = ["rf (/1k nd)"] + [
            f"dt={dt / 60:.0f}m" for dt in self.intervals
        ]
        rows = []
        for rf in self.failure_rates:
            rows.append(
                [f"{rf * 1000:.2f}"]
                + [f"{self.grid[(rf, dt)]:.3f}" for dt in self.intervals]
            )
        table = render_table(
            headers,
            rows,
            title=f"Fig. 10 — E[ETTR] at {self.n_gpus:,} GPUs",
        )
        def label(dt: float) -> str:
            if np.isnan(dt):
                # Unreachable even with instant checkpoints: the restart
                # overhead alone exceeds the failure budget.
                return "unreachable (cut restart overhead)"
            if np.isinf(dt):
                return "any"
            return f"{dt / MINUTE:.1f} min"

        reqs = "; ".join(
            f"rf={rf * 1000:.2f}/1k nd, ETTR {target}: dt={label(dt)}"
            for (rf, target), dt in sorted(self.required.items())
        )
        return table + "\nrequired intervals: " + reqs


def checkpoint_sweep(
    n_gpus: int = 100_000,
    failure_rates: Sequence[float] = (RSC1_RF, RSC2_RF),
    intervals_minutes: Sequence[float] = (2, 5, 7, 10, 21, 30, 60),
    targets: Sequence[float] = (0.5, 0.9),
    restart_overhead: float = 5 * MINUTE,
) -> CheckpointSweep:
    """Compute Fig. 10's surface and the paper's callout solutions."""
    intervals = tuple(float(m) * MINUTE for m in intervals_minutes)
    rates = tuple(float(r) for r in failure_rates)
    grid = ettr_checkpoint_grid(
        rates, intervals, n_gpus=n_gpus, restart_overhead=restart_overhead
    )
    required: Dict[Tuple[float, float], float] = {}
    n_nodes = max(1, n_gpus // 8)
    for rf in rates:
        for target in targets:
            try:
                dt = required_checkpoint_interval(
                    target,
                    n_nodes=n_nodes,
                    failure_rate_per_node_day=rf,
                    restart_overhead=restart_overhead,
                )
            except ValueError:
                dt = float("nan")  # unreachable even at instant checkpoints
            required[(rf, target)] = dt
    return CheckpointSweep(
        n_gpus=n_gpus,
        failure_rates=rates,
        intervals=intervals,
        grid=grid,
        required=required,
    )
