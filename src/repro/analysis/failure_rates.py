"""Fig. 4: attributed hardware failure rates per GPU-hour by component.

Runs the observable attribution pipeline (health-check windows around
failing jobs) and normalizes component counts by the trace's total GPU
runtime.  Rates are reported per *million* GPU-hours for readability — the
paper's per-GPU-hour axis carries a 1e-6-ish scale for the same reason.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import render_bars
from repro.core.attribution import AttributionPolicy, FailureAttributor
from repro.options import RunOptions, UNSET, resolve_options
from repro.workload.trace import Trace

PER_MILLION_GPU_HOURS = 1_000_000.0


@dataclass(frozen=True)
class FailureRateTable:
    """Component -> failures per million GPU-hours."""

    cluster_name: str
    rates: Dict[str, float]
    co_occurrence_pcie_xid79: float
    multi_attributed_fraction: float

    def render(self) -> str:
        chart = render_bars(
            dict(self.rates),
            title=(
                f"Fig. 4 — attributed failures per 1M GPU-hours "
                f"({self.cluster_name})"
            ),
        )
        footer = (
            f"\nPCIe failures co-occurring with XID-79 checks: "
            f"{self.co_occurrence_pcie_xid79:.0%}; "
            f"multi-attributed failures: {self.multi_attributed_fraction:.0%}"
        )
        return chart + footer


def attributed_failure_rates(
    trace: Trace,
    policy: Optional[AttributionPolicy] = None,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> FailureRateTable:
    """Compute Fig. 4 from the trace's observables.

    ``use_columns`` selects the columnar attribution engine (vectorized
    health-event index, memoized attribute_all); ``False`` keeps the
    rowwise engine that rebuilds the attribution per aggregate — the
    benchmark reference path.
    """
    use_columns = resolve_options(
        options, "attributed_failure_rates", use_columns=use_columns
    ).use_columns
    attributor = FailureAttributor(trace, policy, use_columns=use_columns)
    rates = attributor.failure_rate_by_component(
        per_gpu_hours=PER_MILLION_GPU_HOURS
    )
    attributions = [a for a in attributor.attribute_all() if a.attributed]
    multi = (
        sum(1 for a in attributions if a.multi_attributed) / len(attributions)
        if attributions
        else 0.0
    )
    return FailureRateTable(
        cluster_name=trace.cluster_name,
        rates=rates,
        co_occurrence_pcie_xid79=attributor.check_co_occurrence_fraction(
            "pcie", "xid79_fell_off_bus"
        ),
        multi_attributed_fraction=multi,
    )
