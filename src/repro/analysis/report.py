"""ASCII rendering of analysis results.

The benchmark harness prints the same rows/series the paper's tables and
figures show; these helpers keep that output consistent and legible in CI
logs.
"""

from typing import Dict, Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a fixed-width table."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    values: Dict[object, float],
    title: Optional[str] = None,
    width: int = 50,
    value_format: str = "{:.3g}",
) -> str:
    """Render a horizontal bar chart (one bar per key)."""
    if not values:
        raise ValueError("no values to render")
    max_value = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in values.items():
        bar = "#" * (0 if max_value <= 0 else int(round(width * value / max_value)))
        lines.append(
            f"{str(key).rjust(label_width)} | {bar.ljust(width)} "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    max_rows: int = 40,
) -> str:
    """Render an (x, y) series as a two-column table, downsampled."""
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    step = max(1, len(x) // max_rows)
    rows = [(float(x[i]), float(y[i])) for i in range(0, len(x), step)]
    return render_table([x_label, y_label], rows, title=title)
