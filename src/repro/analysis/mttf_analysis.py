"""Fig. 7: MTTF by job size with Gamma CIs and the 1/N projection.

Combines the empirical per-bucket MTTF (hours, 90% CI), the theoretical
curve MTTF = 1/(N_nodes * r_f) with r_f estimated from >128-GPU jobs, and
the paper's extrapolations to 16,384 and 131,072 GPUs.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.options import RunOptions, UNSET, resolve_options
from repro.core.mttf import (
    MTTFBucket,
    empirical_mttf_by_size,
    mttf_projection_curve,
    node_failure_rate,
    project_mttf,
)
from repro.stats.fitting import RateEstimate
from repro.workload.trace import Trace

PROJECTION_SIZES: Tuple[int, ...] = (
    8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 16384, 131072
)


@dataclass(frozen=True)
class MTTFAnalysis:
    """Empirical buckets + theory line + extrapolations."""

    cluster_name: str
    buckets: List[MTTFBucket]
    failure_rate: RateEstimate  # r_f per node-day
    projection: Dict[int, float]  # gpus -> MTTF hours

    @property
    def rf_per_1000_node_days(self) -> float:
        return self.failure_rate.rate * 1000.0

    def bucket(self, gpus: int) -> MTTFBucket:
        for b in self.buckets:
            if b.gpus == gpus:
                return b
        raise KeyError(f"no MTTF bucket for {gpus} GPUs")

    def render(self) -> str:
        rows = []
        for b in self.buckets:
            rows.append(
                (
                    b.gpus,
                    b.n_records,
                    b.failures,
                    f"{b.mttf_hours:.1f}" if b.failures else "inf",
                    f"[{b.mttf_hours_lo:.1f}, "
                    + (f"{b.mttf_hours_hi:.1f}]" if b.failures else "inf]"),
                    f"{self.projection.get(b.gpus, float('nan')):.1f}",
                )
            )
        table = render_table(
            ["GPUs", "attempts", "failures", "MTTF (h)", "90% CI", "theory (h)"],
            rows,
            title=f"Fig. 7 — MTTF by job size ({self.cluster_name})",
        )
        extras = ", ".join(
            f"{g} GPUs -> {self.projection[g]:.2f} h"
            for g in (16384, 131072)
            if g in self.projection
        )
        footer = (
            f"\nr_f = {self.rf_per_1000_node_days:.2f} failures per 1000 "
            f"node-days; projections: {extras}"
        )
        return table + footer


def mttf_analysis(
    trace: Trace,
    min_gpus_for_rate: int = 128,
    use_ground_truth: bool = True,
    projection_sizes: Sequence[int] = PROJECTION_SIZES,
    options: Optional[RunOptions] = None,
    *,
    use_columns=UNSET,
) -> MTTFAnalysis:
    """Compute Fig. 7 from a trace.

    For scaled-down campaigns whose largest jobs do not reach 128 GPUs,
    ``min_gpus_for_rate`` falls back to half the largest observed size.
    ``use_columns`` selects vectorized bucketing over the trace's job
    columns; ``False`` is the rowwise benchmark reference.
    """
    records = trace.job_records
    if not records:
        raise ValueError("trace has no job records")
    use_columns = resolve_options(
        options, "mttf_analysis", use_columns=use_columns
    ).use_columns
    columns = trace.columns.jobs if use_columns else None
    if columns is not None:
        largest = int(columns.n_gpus.max())
    else:
        largest = max(r.n_gpus for r in records)
    floor = min_gpus_for_rate
    if largest <= floor:
        floor = max(8, largest // 2)
    rate = node_failure_rate(
        records,
        min_gpus=floor,
        use_ground_truth=use_ground_truth,
        columns=columns,
    )
    buckets = empirical_mttf_by_size(
        records, use_ground_truth=use_ground_truth, columns=columns
    )
    projection = mttf_projection_curve(list(projection_sizes), rate.rate)
    return MTTFAnalysis(
        cluster_name=trace.cluster_name,
        buckets=buckets,
        failure_rate=rate,
        projection=projection,
    )
