"""Analysis pipeline: one module per table/figure of the paper.

Every module consumes a :class:`~repro.workload.trace.Trace` (and nothing
live), returns a typed result object, and can render itself as the ASCII
equivalent of the paper's artifact via :mod:`repro.analysis.report`.
"""

from repro.analysis.job_status import JobStatusBreakdown, job_status_breakdown
from repro.analysis.failure_rates import FailureRateTable, attributed_failure_rates
from repro.analysis.rolling_failures import (
    FailureRateTimeline,
    failure_rate_timeline,
)
from repro.analysis.job_sizes import JobSizeDistribution, job_size_distribution
from repro.analysis.mttf_analysis import MTTFAnalysis, mttf_analysis
from repro.analysis.goodput_loss import GoodputLossAnalysis, goodput_loss_analysis
from repro.analysis.ettr_analysis import ETTRComparison, ettr_comparison
from repro.analysis.checkpoint_sweep import CheckpointSweep, checkpoint_sweep
from repro.analysis.lemon_analysis import LemonAnalysis, lemon_analysis
from repro.analysis.headline import HeadlineNumbers, headline_numbers
from repro.analysis.check_introduction import (
    CheckIntroductionEffect,
    check_introduction_effect,
)
from repro.analysis.fleet_report import FleetReport, fleet_report
from repro.analysis.queue_waits import QueueWaitAnalysis, queue_wait_analysis
from repro.analysis.swap_rates import (
    SwapRateComparison,
    SwapRateSummary,
    swap_rate_comparison,
    swap_rate_summary,
)
from repro.analysis.report import render_table, render_bars

__all__ = [
    "JobStatusBreakdown",
    "job_status_breakdown",
    "FailureRateTable",
    "attributed_failure_rates",
    "FailureRateTimeline",
    "failure_rate_timeline",
    "JobSizeDistribution",
    "job_size_distribution",
    "MTTFAnalysis",
    "mttf_analysis",
    "GoodputLossAnalysis",
    "goodput_loss_analysis",
    "ETTRComparison",
    "ettr_comparison",
    "CheckpointSweep",
    "checkpoint_sweep",
    "LemonAnalysis",
    "lemon_analysis",
    "HeadlineNumbers",
    "headline_numbers",
    "CheckIntroductionEffect",
    "check_introduction_effect",
    "FleetReport",
    "fleet_report",
    "QueueWaitAnalysis",
    "queue_wait_analysis",
    "SwapRateComparison",
    "SwapRateSummary",
    "swap_rate_comparison",
    "swap_rate_summary",
    "render_table",
    "render_bars",
]
