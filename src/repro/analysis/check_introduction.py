"""Quantify the check-introduction effect (Observation 6 / Fig. 5 note).

"The addition of a new health check ... has a tendency to cause an
apparent increase in failure rate simply because we suddenly are able to
see a failure mode that was likely previously present."  Before a check
exists, its failure mode still kills jobs — but the kills surface as
unattributed NODE_FAILs (heartbeat catch-all) instead of named causes.

This analysis splits the campaign at a check's introduction and compares,
per side: the *attributed* rate of the check's failure mode, and the
*unattributed* (heartbeat-only) incident rate.  The signature of the
effect: attribution of the mode jumps from ~zero while the combined
underlying rate stays comparable.
"""

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import render_table
from repro.sim.timeunits import DAY
from repro.workload.trace import Trace


@dataclass(frozen=True)
class CheckIntroductionEffect:
    """Rates (per 1000 node-days) before vs after a check's introduction."""

    cluster_name: str
    check_name: str
    component: str
    introduced_day: float
    attributed_before: float
    attributed_after: float
    unattributed_before: float
    unattributed_after: float
    mode_incidents_before: float
    mode_incidents_after: float

    @property
    def apparent_rate_increase(self) -> float:
        """How much the *visible* (attributed) mode rate grew."""
        if self.attributed_before == 0:
            return float("inf") if self.attributed_after > 0 else 1.0
        return self.attributed_after / self.attributed_before

    def render(self) -> str:
        rows = [
            (
                "attributed to the mode",
                f"{self.attributed_before:.2f}",
                f"{self.attributed_after:.2f}",
            ),
            (
                "unattributed (heartbeat only)",
                f"{self.unattributed_before:.2f}",
                f"{self.unattributed_after:.2f}",
            ),
            (
                "underlying mode incidents",
                f"{self.mode_incidents_before:.2f}",
                f"{self.mode_incidents_after:.2f}",
            ),
        ]
        return render_table(
            ["rate (/1k node-days)", "before check", "after check"],
            rows,
            title=(
                f"Observation 6 — introducing '{self.check_name}' on day "
                f"{self.introduced_day:.0f} ({self.cluster_name})"
            ),
        )


def check_introduction_effect(
    trace: Trace,
    check_name: str = "filesystem_mounts",
    component: Optional[str] = None,
) -> CheckIntroductionEffect:
    """Compute the before/after rates around a check's first firing.

    The introduction time is taken as the check's first firing (the
    observable proxy; campaigns place introductions at configured spans).
    """
    firings = [
        e
        for e in trace.events
        if e.kind == "health.check_failed" and e.data.get("check") == check_name
    ]
    introductions = trace.metadata.get("check_introductions", {})
    if check_name in introductions:
        introduced_at = float(introductions[check_name])
    elif firings:
        introduced_at = min(e.time for e in firings)  # observable proxy
    else:
        raise ValueError(
            f"check {check_name!r} never fired in this trace and no "
            "introduction time is recorded; cannot locate its introduction"
        )
    if component is None:
        if firings:
            component = firings[0].data.get("component", "?")
        else:
            component = "?"

    def rate(events, start, end):
        span_days = (end - start) / DAY
        if span_days <= 0:
            return 0.0
        node_kilodays = trace.n_nodes * span_days / 1000.0
        return len([e for e in events if start <= e.time < end]) / node_kilodays

    incidents = [e for e in trace.events if e.kind == "cluster.incident"]
    mode_incidents = [
        e for e in incidents if e.data.get("component") == component
    ]
    attributed_mode = [
        e
        for e in mode_incidents
        if e.data.get("attributed")
    ]
    unattributed = [e for e in incidents if not e.data.get("attributed")]

    t0, t1, t2 = 0.0, introduced_at, trace.span_seconds
    return CheckIntroductionEffect(
        cluster_name=trace.cluster_name,
        check_name=check_name,
        component=component,
        introduced_day=introduced_at / DAY,
        attributed_before=rate(attributed_mode, t0, t1),
        attributed_after=rate(attributed_mode, t1, t2),
        unattributed_before=rate(unattributed, t0, t1),
        unattributed_after=rate(unattributed, t1, t2),
        mode_incidents_before=rate(mode_incidents, t0, t1),
        mode_incidents_after=rate(mode_incidents, t1, t2),
    )
