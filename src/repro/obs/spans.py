"""Hierarchical span profiling on top of the event tracer.

Where :class:`~repro.obs.tracer.Tracer` answers *what happened*, spans
answer *where the wall time went*: every instrumented scope (a sweep, a
campaign, a sim phase, one scheduler pass, one checkpoint write) opens a
:class:`SpanRecord` with wall-clock (``perf_counter``) and CPU
(``process_time``) timings and a parent link, so a run profiles as a
tree::

    sweep
    └── campaign (seed 3)
        ├── phase:generate
        ├── phase:simulate
        │   └── sched.pass  × N
        └── phase:build_trace

Spans follow the telemetry contract everywhere: off by default, gated on
the tracer's ``enabled`` flag, and never touching any RNG stream — an
instrumented run stays digest-identical to an uninstrumented one.

Completed spans surface three ways:

* in memory on :attr:`SpanTracer.records` (bounded; see ``max_records``),
* as ``span.end`` events on the tracer's sink, so ``repro obs summary``
  can render p50/p95 phase tables from a stream alone,
* as Chrome trace-event JSON (:func:`write_chrome_trace`), loadable in
  ``chrome://tracing`` / Perfetto via ``repro obs profile``.

``span.end`` events are emitted at completion in completion order, with
``sim_time`` carrying the span's *wall-clock offset* since the span
tracer was created — span streams are wall-ordered, which keeps the
per-category monotonicity invariant of
:func:`repro.obs.summary.check_stream_well_formed` intact without mixing
wall time into any simulation-time category.
"""

import json
import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.tracer import Tracer

#: Category of the one event each completed span emits.
SPAN_END_CATEGORY = "span.end"

#: Default bound on in-memory span records.  High-frequency spans
#: (scheduler passes) can outnumber it on long runs; overflow is counted
#: in :attr:`SpanTracer.dropped`, and the event stream still carries
#: every span.
DEFAULT_MAX_RECORDS = 262_144


@dataclass
class SpanRecord:
    """One completed (or still-open) instrumented scope."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    #: Wall-clock offset (seconds) from the span tracer's epoch.
    start_s: float
    dur_s: float = 0.0
    cpu_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "cpu_s": self.cpu_s,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Maintains the open-span stack and records completed spans.

    One :class:`SpanTracer` lives on each
    :class:`~repro.obs.telemetry.Telemetry` bundle (``telemetry.spans``)
    and shares the bundle's tracer, so span events land in the same
    stream as everything else and obey the same enabled gate.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.tracer = tracer
        self.max_records = max_records
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._stack: List[SpanRecord] = []
        self._next_id = 0
        self._epoch = time.perf_counter()

    @property
    def enabled(self) -> bool:
        """Spans follow the tracer's gate (and are off without one)."""
        return self.tracer is not None and self.tracer.enabled

    @property
    def current(self) -> Optional[SpanRecord]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Open one instrumented scope; a cheap no-op while disabled.

        The enabled check happens once at entry: a tracer that disables
        itself mid-span (sink failure) still closes the span record, it
        just stops emitting events.
        """
        if not self.enabled:
            yield None
            return
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            depth=len(self._stack),
            start_s=time.perf_counter() - self._epoch,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        cpu0 = time.process_time()
        try:
            yield record
        finally:
            record.dur_s = (
                time.perf_counter() - self._epoch
            ) - record.start_s
            record.cpu_s = time.process_time() - cpu0
            self._stack.pop()
            if len(self.records) < self.max_records:
                self.records.append(record)
            else:
                self.dropped += 1
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                # sim_time is the span's *end* wall offset: span.end
                # events leave in completion order, so the category
                # stays monotone.
                tracer.emit(
                    SPAN_END_CATEGORY,
                    name,
                    record.end_s,
                    span_id=record.span_id,
                    parent_id=record.parent_id,
                    depth=record.depth,
                    start_s=record.start_s,
                    dur_s=record.dur_s,
                    cpu_s=record.cpu_s,
                    **record.attrs,
                )

    def __len__(self) -> int:
        return len(self.records)


def maybe_span(telemetry, name: str, **attrs: Any):
    """Span context for an optional telemetry bundle; nullcontext when dark.

    The standard instrumentation-site shape::

        with maybe_span(self.telemetry, "sched.pass", queued=len(queue)):
            ...
    """
    if telemetry is None or not telemetry.enabled:
        return nullcontext()
    spans = getattr(telemetry, "spans", None)
    if spans is None:
        return nullcontext()
    return spans.span(name, **attrs)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def chrome_trace_events(
    records: Iterable[Union[SpanRecord, Dict[str, Any]]],
    pid: int = 1,
    tid: int = 1,
) -> List[Dict[str, Any]]:
    """Convert span records to Chrome trace-event ``"X"`` (complete) events.

    Accepts :class:`SpanRecord` objects or their ``to_json_dict`` /
    ``span.end``-attr dicts.  Timestamps are microseconds, as the trace
    event format requires; nesting falls out of time containment on the
    shared ``tid``.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        if isinstance(record, SpanRecord):
            payload = record.to_json_dict()
        else:
            payload = dict(record)
        args = dict(payload.get("attrs", {}))
        args["cpu_s"] = payload.get("cpu_s", 0.0)
        args["span_id"] = payload.get("span_id")
        if payload.get("parent_id") is not None:
            args["parent_id"] = payload["parent_id"]
        out.append(
            {
                "name": str(payload.get("name", "span")),
                "cat": "repro",
                "ph": "X",
                "ts": float(payload.get("start_s", 0.0)) * 1e6,
                "dur": float(payload.get("dur_s", 0.0)) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return out


def spans_from_stream(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Extract span payload dicts from one ``*.events.jsonl`` stream.

    Returns one dict per ``span.end`` record with the
    :meth:`SpanRecord.to_json_dict` keys, reconstructed from the event's
    attrs (extra attrs land under ``"attrs"``).
    """
    # Local import: summary imports nothing from here, but this module
    # reuses its strict line reader — keep the dependency one-way lazy
    # so obs submodules stay import-light and cycle-free.
    from repro.obs.summary import iter_event_dicts

    spans: List[Dict[str, Any]] = []
    for payload in iter_event_dicts(path):
        if payload.get("category") != SPAN_END_CATEGORY:
            continue
        attrs = dict(payload.get("attrs", {}))
        spans.append(
            {
                "span_id": attrs.pop("span_id", len(spans)),
                "parent_id": attrs.pop("parent_id", None),
                "name": attrs.pop("name", None)
                or payload.get("label", "span"),
                "depth": attrs.pop("depth", 0),
                "start_s": float(attrs.pop("start_s", 0.0)),
                "dur_s": float(attrs.pop("dur_s", 0.0)),
                "cpu_s": float(attrs.pop("cpu_s", 0.0)),
                "attrs": attrs,
            }
        )
    return spans


def write_chrome_trace(
    path: Union[str, os.PathLike],
    records: Iterable[Union[SpanRecord, Dict[str, Any]]],
) -> int:
    """Write a Chrome trace-event JSON file; returns the event count.

    The document is the object form (``{"traceEvents": [...]}``), which
    both ``chrome://tracing`` and Perfetto load directly.
    """
    events = chrome_trace_events(records)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(document, fh)
        fh.write("\n")
    return len(events)


# ----------------------------------------------------------------------
# phase statistics (the p50/p95 tables)
# ----------------------------------------------------------------------
def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sequence (q in [0,1])."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class PhaseStat:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total_s: float
    p50_s: float
    p95_s: float
    max_s: float


def phase_stats(
    durations_by_name: Dict[str, List[float]]
) -> List[PhaseStat]:
    """Per-name span statistics, ordered by descending total wall time."""
    stats: List[PhaseStat] = []
    for name, durations in durations_by_name.items():
        if not durations:
            continue
        ordered = sorted(durations)
        stats.append(
            PhaseStat(
                name=name,
                count=len(ordered),
                total_s=float(sum(ordered)),
                p50_s=percentile(ordered, 0.50),
                p95_s=percentile(ordered, 0.95),
                max_s=ordered[-1],
            )
        )
    stats.sort(key=lambda s: (-s.total_s, s.name))
    return stats


def span_phase_stats(
    records: Iterable[Union[SpanRecord, Dict[str, Any]]]
) -> List[PhaseStat]:
    """Group span records by name and compute the phase table."""
    durations: Dict[str, List[float]] = {}
    for record in records:
        if isinstance(record, SpanRecord):
            name, dur = record.name, record.dur_s
        else:
            name = str(record.get("name", "span"))
            dur = float(record.get("dur_s", 0.0))
        durations.setdefault(name, []).append(dur)
    return phase_stats(durations)


__all__ = [
    "DEFAULT_MAX_RECORDS",
    "PhaseStat",
    "SPAN_END_CATEGORY",
    "SpanRecord",
    "SpanTracer",
    "chrome_trace_events",
    "maybe_span",
    "percentile",
    "phase_stats",
    "span_phase_stats",
    "spans_from_stream",
    "write_chrome_trace",
]
