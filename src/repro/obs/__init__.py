"""repro.obs — telemetry: structured tracing, metrics, profiling hooks.

The observability layer turns the simulator into a producer of the same
kinds of operational streams the paper analyzes (accounting logs,
health-check event streams, repair tickets):

* :mod:`repro.obs.tracer` — :class:`Tracer` emits typed, timestamped
  :class:`ObsEvent` records (sim-time + wall-time, category, attrs) to a
  pluggable sink: :class:`RingBufferSink`, :class:`JsonlSink`, or
  :class:`NullSink`.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` holds labelled
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` metrics with a
  :class:`Timer` context manager; exports as JSON snapshots and
  Prometheus-style text.
* :mod:`repro.obs.telemetry` — :class:`Telemetry` bundles one tracer and
  one registry; this is what instrumented constructors accept.
* :mod:`repro.obs.summary` — :func:`summarize` renders a run report from
  emitted streams (the ``repro obs summary`` command).

Everything is **off by default**: pass no telemetry (or a disabled
bundle) and the instrumented hot seams reduce to a single flag check.
Instrumentation never touches RNG streams, so enabling telemetry cannot
change a campaign's trace digest.

Quickstart::

    from repro import CampaignConfig, ClusterSpec, RunOptions, run_campaign
    from repro.obs import Telemetry

    tel = Telemetry.to_directory("out/", stem="trace")
    spec = ClusterSpec.rsc1_like(n_nodes=32, campaign_days=10)
    trace = run_campaign(
        CampaignConfig(cluster_spec=spec, duration_days=10),
        RunOptions(telemetry=tel),
    )
    tel.finalize()          # writes out/trace.metrics.json
    # then: repro obs summary out/
"""

from repro.obs.health import (
    DEFAULT_HEALTH_DELTA_MAP,
    FleetHealthScorer,
    HealthReport,
    HealthSignals,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    load_snapshot,
)
from repro.obs.spans import (
    PhaseStat,
    SpanRecord,
    SpanTracer,
    chrome_trace_events,
    maybe_span,
    phase_stats,
    span_phase_stats,
    spans_from_stream,
    write_chrome_trace,
)
from repro.obs.summary import (
    ObsSummary,
    check_stream_well_formed,
    find_telemetry_files,
    iter_event_dicts,
    summarize,
)
from repro.obs.telemetry import EVENTS_SUFFIX, METRICS_SUFFIX, Telemetry
from repro.obs.timeline import (
    IncidentRecord,
    IncidentTimeline,
    reconstruct_timeline,
)
from repro.obs.tracer import (
    JsonlSink,
    NULL_TRACER,
    NullSink,
    ObsEvent,
    RingBufferSink,
    Tracer,
    label_group,
)

__all__ = [
    "Counter",
    "DEFAULT_HEALTH_DELTA_MAP",
    "EVENTS_SUFFIX",
    "FleetHealthScorer",
    "Gauge",
    "HealthReport",
    "HealthSignals",
    "Histogram",
    "IncidentRecord",
    "IncidentTimeline",
    "JsonlSink",
    "METRICS_SUFFIX",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullSink",
    "ObsEvent",
    "ObsSummary",
    "PhaseStat",
    "RingBufferSink",
    "SpanRecord",
    "SpanTracer",
    "Telemetry",
    "Timer",
    "Tracer",
    "check_stream_well_formed",
    "chrome_trace_events",
    "find_telemetry_files",
    "iter_event_dicts",
    "label_group",
    "load_snapshot",
    "maybe_span",
    "phase_stats",
    "reconstruct_timeline",
    "span_phase_stats",
    "spans_from_stream",
    "summarize",
    "write_chrome_trace",
]
