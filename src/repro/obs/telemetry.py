"""The telemetry bundle handed to instrumented subsystems.

A :class:`Telemetry` pairs one :class:`~repro.obs.tracer.Tracer` (the
structured event stream) with one
:class:`~repro.obs.metrics.MetricsRegistry` (the aggregate counters and
timers).  Every instrumented constructor takes ``telemetry=None``;
``None`` (or a disabled bundle) keeps the hot seams on their
zero-overhead path.

Factories cover the three deployment shapes:

* :meth:`Telemetry.disabled` — wired but off (the implicit default),
* :meth:`Telemetry.in_memory` — ring-buffer sink, for tests and notebooks,
* :meth:`Telemetry.to_directory` — JSONL stream + metrics snapshot on
  disk, the shape ``repro campaign --telemetry`` produces and
  ``repro obs summary`` consumes.
"""

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.obs.tracer import JsonlSink, ObsEvent, RingBufferSink, Tracer

#: File suffixes for the on-disk telemetry pair written next to traces.
EVENTS_SUFFIX = ".events.jsonl"
METRICS_SUFFIX = ".metrics.json"


class Telemetry:
    """One tracer + one metrics registry, moved through the stack as a unit."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Hierarchical span profiler sharing this bundle's tracer (and
        #: therefore its enabled gate); see :mod:`repro.obs.spans`.
        self.spans = SpanTracer(self.tracer)
        #: Where :meth:`finalize` writes the metrics snapshot (None skips).
        self.metrics_path: Optional[str] = None
        self._finalized = False

    @property
    def enabled(self) -> bool:
        """Hot-seam gate: instrumentation emits only when this is True."""
        return self.tracer.enabled

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Telemetry":
        """A wired-but-off bundle (useful for overhead tests)."""
        return cls()

    @classmethod
    def in_memory(cls, capacity: int = 65536) -> "Telemetry":
        """Enabled bundle capturing events in a bounded ring buffer."""
        return cls(tracer=Tracer(RingBufferSink(capacity)))

    @classmethod
    def to_directory(
        cls, directory: Union[str, os.PathLike], stem: str = "telemetry"
    ) -> "Telemetry":
        """Enabled bundle writing ``<stem>.events.jsonl`` under ``directory``.

        :meth:`finalize` completes the pair with ``<stem>.metrics.json``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        telemetry = cls(tracer=Tracer(JsonlSink(directory / f"{stem}{EVENTS_SUFFIX}")))
        telemetry.metrics_path = str(directory / f"{stem}{METRICS_SUFFIX}")
        return telemetry

    # ------------------------------------------------------------------
    # inspection / teardown
    # ------------------------------------------------------------------
    def events(self) -> List[ObsEvent]:
        """Captured events, for ring-buffer telemetry (else empty)."""
        sink = self.tracer.sink
        if isinstance(sink, RingBufferSink):
            return sink.events()
        return []

    def finalize(self) -> None:
        """Flush and close the stream; write the metrics snapshot if placed.

        Idempotent, so error paths may call it defensively.
        """
        if self._finalized:
            return
        self._finalized = True
        self._publish_tracer_state()
        if self.metrics_path is not None:
            self.metrics.write_snapshot(self.metrics_path)
        self.tracer.close()

    def _publish_tracer_state(self) -> None:
        """Expose the tracer's degradation state in the metrics snapshot.

        Sink-error self-disable used to be silent; now every snapshot
        records whether (and how hard) the event stream degraded, and
        the span profiler's volume.  Registered only when there is
        something to report or the bundle was ever live, so a disabled
        bundle's registry stays empty.
        """
        tracer = self.tracer
        spans = self.spans
        if not (
            tracer.enabled
            or tracer.self_disabled
            or tracer.sink_errors
            or tracer.events_emitted
        ):
            return
        metrics = self.metrics
        metrics.gauge("tracer_self_disabled").set(
            1.0 if tracer.self_disabled else 0.0
        )
        if tracer.sink_errors:
            metrics.counter("tracer_sink_errors_total").inc(
                tracer.sink_errors
            )
        if len(spans) or spans.dropped:
            metrics.counter("spans_recorded_total").inc(len(spans))
            if spans.dropped:
                metrics.counter("spans_dropped_total").inc(spans.dropped)

    def __repr__(self) -> str:
        return (
            f"Telemetry({'on' if self.enabled else 'off'}, "
            f"events={self.tracer.events_emitted}, metrics={len(self.metrics)})"
        )
