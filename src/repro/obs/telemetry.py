"""The telemetry bundle handed to instrumented subsystems.

A :class:`Telemetry` pairs one :class:`~repro.obs.tracer.Tracer` (the
structured event stream) with one
:class:`~repro.obs.metrics.MetricsRegistry` (the aggregate counters and
timers).  Every instrumented constructor takes ``telemetry=None``;
``None`` (or a disabled bundle) keeps the hot seams on their
zero-overhead path.

Factories cover the three deployment shapes:

* :meth:`Telemetry.disabled` — wired but off (the implicit default),
* :meth:`Telemetry.in_memory` — ring-buffer sink, for tests and notebooks,
* :meth:`Telemetry.to_directory` — JSONL stream + metrics snapshot on
  disk, the shape ``repro campaign --telemetry`` produces and
  ``repro obs summary`` consumes.
"""

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import JsonlSink, ObsEvent, RingBufferSink, Tracer

#: File suffixes for the on-disk telemetry pair written next to traces.
EVENTS_SUFFIX = ".events.jsonl"
METRICS_SUFFIX = ".metrics.json"


class Telemetry:
    """One tracer + one metrics registry, moved through the stack as a unit."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Where :meth:`finalize` writes the metrics snapshot (None skips).
        self.metrics_path: Optional[str] = None
        self._finalized = False

    @property
    def enabled(self) -> bool:
        """Hot-seam gate: instrumentation emits only when this is True."""
        return self.tracer.enabled

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Telemetry":
        """A wired-but-off bundle (useful for overhead tests)."""
        return cls()

    @classmethod
    def in_memory(cls, capacity: int = 65536) -> "Telemetry":
        """Enabled bundle capturing events in a bounded ring buffer."""
        return cls(tracer=Tracer(RingBufferSink(capacity)))

    @classmethod
    def to_directory(
        cls, directory: Union[str, os.PathLike], stem: str = "telemetry"
    ) -> "Telemetry":
        """Enabled bundle writing ``<stem>.events.jsonl`` under ``directory``.

        :meth:`finalize` completes the pair with ``<stem>.metrics.json``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        telemetry = cls(tracer=Tracer(JsonlSink(directory / f"{stem}{EVENTS_SUFFIX}")))
        telemetry.metrics_path = str(directory / f"{stem}{METRICS_SUFFIX}")
        return telemetry

    # ------------------------------------------------------------------
    # inspection / teardown
    # ------------------------------------------------------------------
    def events(self) -> List[ObsEvent]:
        """Captured events, for ring-buffer telemetry (else empty)."""
        sink = self.tracer.sink
        if isinstance(sink, RingBufferSink):
            return sink.events()
        return []

    def finalize(self) -> None:
        """Flush and close the stream; write the metrics snapshot if placed.

        Idempotent, so error paths may call it defensively.
        """
        if self._finalized:
            return
        self._finalized = True
        if self.metrics_path is not None:
            self.metrics.write_snapshot(self.metrics_path)
        self.tracer.close()

    def __repr__(self) -> str:
        return (
            f"Telemetry({'on' if self.enabled else 'off'}, "
            f"events={self.tracer.events_emitted}, metrics={len(self.metrics)})"
        )
