"""Run reports over emitted telemetry: ``repro obs summary PATH``.

Consumes the on-disk telemetry pair (``*.events.jsonl`` streams plus
``*.metrics.json`` snapshots, as written by
:meth:`repro.obs.telemetry.Telemetry.to_directory`) and renders the
operational picture of a run: what executed, where the wall time went,
what failed and whether it was attributed, and how the trace cache
behaved.  This is the simulator-side analogue of the paper's
"mine the logs" methodology — the report exists so a campaign's numbers
can be explained without re-running it under a debugger.
"""

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import load_snapshot
from repro.obs.telemetry import EVENTS_SUFFIX, METRICS_SUFFIX


def iter_event_dicts(path: Union[str, os.PathLike]) -> Iterator[Dict[str, Any]]:
    """Yield parsed event dicts from one JSONL stream.

    Raises ``ValueError`` (with the line number) on a malformed line —
    the obs-smoke target leans on this being strict.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{lineno}: malformed telemetry line: {err}"
                ) from err
            if "category" not in payload or "sim_time" not in payload:
                raise ValueError(
                    f"{path}:{lineno}: telemetry record missing "
                    "category/sim_time"
                )
            yield payload


def find_telemetry_files(
    path: Union[str, os.PathLike]
) -> List[Tuple[Path, Optional[Path]]]:
    """Resolve ``path`` to ``(events, metrics-or-None)`` pairs.

    ``path`` may be a telemetry directory or a single events file; the
    metrics snapshot is matched by the shared stem.
    """
    path = Path(path)
    if path.is_dir():
        streams = sorted(path.glob(f"*{EVENTS_SUFFIX}"))
    elif path.is_file():
        streams = [path]
    else:
        raise FileNotFoundError(f"no telemetry at {path}")
    if not streams:
        raise FileNotFoundError(f"no *{EVENTS_SUFFIX} streams under {path}")
    pairs: List[Tuple[Path, Optional[Path]]] = []
    for stream in streams:
        stem = stream.name
        if stem.endswith(EVENTS_SUFFIX):
            stem = stem[: -len(EVENTS_SUFFIX)]
        else:
            stem = stream.stem
        metrics = stream.parent / f"{stem}{METRICS_SUFFIX}"
        pairs.append((stream, metrics if metrics.is_file() else None))
    return pairs


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal fixed-width table (obs stays import-light)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.1f}us"


@dataclass
class ObsSummary:
    """Aggregated view over one or more telemetry streams."""

    streams: List[str] = field(default_factory=list)
    n_events: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    #: label group -> (executions, total wall seconds) from sim.execute.
    label_timings: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    failures_by_component: Dict[str, int] = field(default_factory=dict)
    failures_attributed: int = 0
    failures_unattributed: int = 0
    checks_fired: Dict[str, int] = field(default_factory=dict)
    lemon_flags: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sched_attempts_by_state: Dict[str, int] = field(default_factory=dict)
    engine_events_executed: int = 0
    engine_wall_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: counter name -> value for ``resilience_*_total`` recovery
    #: counters (retries, respawns, quarantines, timeouts, ...), plus
    #: the tracer degradation signals (``tracer_self_disabled``,
    #: ``tracer_sink_errors_total``).
    resilience: Dict[str, int] = field(default_factory=dict)
    #: span name -> wall durations (seconds) from ``span.end`` events;
    #: feeds the p50/p95 phase table.
    span_durations: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def cache_hit_ratio(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return None
        return self.cache_hits / total

    @property
    def events_per_sec(self) -> Optional[float]:
        if self.engine_wall_seconds <= 0:
            return None
        return self.engine_events_executed / self.engine_wall_seconds

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add_event(self, payload: Dict[str, Any]) -> None:
        category = payload["category"]
        attrs = payload.get("attrs", {})
        self.n_events += 1
        self.by_category[category] = self.by_category.get(category, 0) + 1
        if category == "sim.execute":
            group = attrs.get("group", payload.get("label", "")) or "unlabeled"
            count, total = self.label_timings.get(group, (0, 0.0))
            self.label_timings[group] = (
                count + 1,
                total + float(attrs.get("duration_s", 0.0)),
            )
            self.engine_events_executed += 1
            self.engine_wall_seconds += float(attrs.get("duration_s", 0.0))
        elif category == "failure.injected":
            component = attrs.get("component", "unknown")
            self.failures_by_component[component] = (
                self.failures_by_component.get(component, 0) + 1
            )
            if attrs.get("attributed"):
                self.failures_attributed += 1
            else:
                self.failures_unattributed += 1
        elif category in ("health.check_fired", "health.heartbeat_only"):
            check = attrs.get("check", "node_fail_heartbeat")
            self.checks_fired[check] = self.checks_fired.get(check, 0) + 1
        elif category == "lemon.flagged":
            self.lemon_flags += 1
        elif category == "cache.hit":
            self.cache_hits += 1
        elif category == "cache.miss":
            self.cache_misses += 1
        elif category == "sched.finish":
            state = attrs.get("state", "unknown")
            self.sched_attempts_by_state[state] = (
                self.sched_attempts_by_state.get(state, 0) + 1
            )
        elif category == "resilience.retry":
            self.resilience["resilience_retries_total"] = (
                self.resilience.get("resilience_retries_total", 0) + 1
            )
        elif category == "cache.quarantine":
            self.resilience["resilience_cache_quarantined_total"] = (
                self.resilience.get("resilience_cache_quarantined_total", 0)
                + 1
            )
        elif category == "span.end":
            name = attrs.get("name") or payload.get("label") or "span"
            self.span_durations.setdefault(str(name), []).append(
                float(attrs.get("dur_s", 0.0))
            )

    def add_metrics_snapshot(self, snapshot: Dict[str, Any]) -> None:
        for entry in snapshot.get("counters", []):
            name = entry.get("name")
            value = int(entry.get("value", 0))
            if name == "trace_cache_hits_total":
                self.cache_hits += value
            elif name == "trace_cache_misses_total":
                self.cache_misses += value
            elif name and name.startswith("resilience_"):
                # Event-derived counts (resilience.retry/cache.quarantine
                # streams) already cover the tracer-enabled case; prefer
                # the registry value when both exist rather than double
                # counting.
                self.resilience[name] = max(
                    self.resilience.get(name, 0), value
                )
            elif name == "tracer_sink_errors_total":
                self.resilience[name] = max(
                    self.resilience.get(name, 0), value
                )
        for entry in snapshot.get("gauges", []):
            if entry.get("name") == "tracer_self_disabled":
                self.resilience["tracer_self_disabled"] = max(
                    self.resilience.get("tracer_self_disabled", 0),
                    int(float(entry.get("value", 0.0))),
                )
        for entry in snapshot.get("histograms", []):
            if entry.get("name") == "campaign_phase_seconds":
                phase = entry.get("labels", {}).get("phase", "unknown")
                self.phase_seconds[phase] = (
                    self.phase_seconds.get(phase, 0.0)
                    + float(entry.get("sum", 0.0))
                )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, top_labels: int = 10) -> str:
        parts: List[str] = []
        n_streams = len(self.streams)
        header = (
            f"Telemetry summary — {self.n_events:,} events from "
            f"{n_streams} stream{'s' if n_streams != 1 else ''}"
        )
        eps = self.events_per_sec
        if eps is not None:
            header += (
                f"; engine executed {self.engine_events_executed:,} events "
                f"in {_fmt_seconds(self.engine_wall_seconds)} "
                f"({eps:,.0f} events/s of callback time)"
            )
        parts.append(header)

        if self.by_category:
            rows = [
                (cat, f"{count:,}")
                for cat, count in sorted(
                    self.by_category.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            parts.append("\nEvents by category\n" + _table(["category", "count"], rows))

        if self.label_timings:
            ordered = sorted(
                self.label_timings.items(), key=lambda kv: (-kv[1][1], kv[0])
            )[:top_labels]
            rows = [
                (
                    group,
                    f"{count:,}",
                    _fmt_seconds(total),
                    _fmt_seconds(total / count) if count else "-",
                )
                for group, (count, total) in ordered
            ]
            parts.append(
                f"\nTop event labels by wall time (top {len(rows)})\n"
                + _table(["label", "events", "total", "mean"], rows)
            )

        if self.failures_by_component:
            total_failures = self.failures_attributed + self.failures_unattributed
            rows = [
                (comp, f"{count:,}")
                for comp, count in sorted(
                    self.failures_by_component.items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            ]
            attributed_pct = (
                100.0 * self.failures_attributed / total_failures
                if total_failures
                else 0.0
            )
            parts.append(
                f"\nFailure injections — {total_failures:,} total, "
                f"{self.failures_attributed:,} attributed "
                f"({attributed_pct:.1f}%), "
                f"{self.failures_unattributed:,} heartbeat-only\n"
                + _table(["component", "count"], rows)
            )

        if self.checks_fired:
            rows = [
                (check, f"{count:,}")
                for check, count in sorted(
                    self.checks_fired.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            parts.append(
                "\nHealth checks fired\n" + _table(["check", "count"], rows)
            )

        if self.sched_attempts_by_state:
            rows = [
                (state, f"{count:,}")
                for state, count in sorted(
                    self.sched_attempts_by_state.items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            ]
            parts.append(
                "\nScheduler attempts by final state\n"
                + _table(["state", "attempts"], rows)
            )

        if self.lemon_flags:
            parts.append(f"\nLemon nodes flagged: {self.lemon_flags}")

        ratio = self.cache_hit_ratio
        if ratio is not None:
            parts.append(
                f"\nTrace cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"(hit ratio {100.0 * ratio:.1f}%)"
            )

        if self.phase_seconds:
            rows = [
                (phase, _fmt_seconds(total))
                for phase, total in sorted(
                    self.phase_seconds.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            parts.append(
                "\nCampaign phases (wall time)\n"
                + _table(["phase", "total"], rows)
            )

        if self.span_durations:
            from repro.obs.spans import phase_stats

            rows = [
                (
                    stat.name,
                    f"{stat.count:,}",
                    _fmt_seconds(stat.total_s),
                    _fmt_seconds(stat.p50_s),
                    _fmt_seconds(stat.p95_s),
                )
                for stat in phase_stats(self.span_durations)
            ]
            parts.append(
                "\nSpan phases (wall time)\n"
                + _table(["span", "count", "total", "p50", "p95"], rows)
            )

        if any(self.resilience.values()):
            rows = [
                (name, f"{count:,}")
                for name, count in sorted(
                    self.resilience.items(), key=lambda kv: (-kv[1], kv[0])
                )
                if count
            ]
            parts.append(
                "\nResilience (recovery actions)\n"
                + _table(["counter", "count"], rows)
            )
        return "\n".join(parts)


def summarize(path: Union[str, os.PathLike]) -> ObsSummary:
    """Build an :class:`ObsSummary` from a telemetry directory or stream."""
    summary = ObsSummary()
    for stream, metrics in find_telemetry_files(path):
        summary.streams.append(str(stream))
        for payload in iter_event_dicts(stream):
            summary.add_event(payload)
        if metrics is not None:
            summary.add_metrics_snapshot(load_snapshot(metrics))
    return summary


def check_stream_well_formed(path: Union[str, os.PathLike]) -> int:
    """Validate one JSONL stream: parseable, monotone sim-time per category.

    Returns the number of records; raises ``ValueError`` on violations.
    The obs-smoke make target calls this.
    """
    last_by_category: Dict[str, float] = {}
    n = 0
    for payload in iter_event_dicts(path):
        category = payload["category"]
        sim_time = float(payload["sim_time"])
        if not math.isfinite(sim_time):
            raise ValueError(f"{path}: non-finite sim_time in {category}")
        previous = last_by_category.get(category)
        if previous is not None and sim_time < previous:
            raise ValueError(
                f"{path}: sim-time regression in category {category}: "
                f"{sim_time} after {previous}"
            )
        last_by_category[category] = sim_time
        n += 1
    return n
