"""Fleet health scoring: the PVC ``getClusterHealth`` weighted-delta model.

The paper's operational claim is that fleet reliability must be
*attributable* — a single number is only useful when every point it lost
names the condition that took it.  This module reproduces that shape:
a :class:`FleetHealthScorer` starts from a perfect 100, subtracts a
configurable delta per observed condition instance (``health_delta_map``),
clamps to ``[0, 100]``, and keeps one human-readable message per applied
condition, exactly the contract of PVC's ``getClusterHealth`` endpoint.

Inputs arrive as a :class:`HealthSignals` snapshot — a pure-data view of
the fleet assembled from whichever layer is observing:

* live sessions (:meth:`HealthSignals.from_analytics`): FleetGauges'
  down/quarantined sets, the lemon estimator's provisional suspects, and
  the session watermark;
* telemetry directories (:meth:`HealthSignals.from_summary`): failure
  injections by component, resilience counters, cache quarantines, and
  the tracer's self-disable state;
* anything else that can fill the dataclass (the planned ``repro.serve``
  endpoint reads this directly).

Scoring is pure arithmetic over the snapshot: no RNG, no clocks, no
side effects — it can run inside an instrumented campaign without
perturbing anything.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Failure-domain components treated as *network* incidents by the
#: summary adapter (everything else counts as node hardware).
NETWORK_COMPONENTS = frozenset(
    {"ib_link", "eth_link", "nic", "nvlink", "optics"}
)

#: Default weighted-delta map, PVC ``getClusterHealth`` style: condition
#: name -> points subtracted per instance.  Override any subset via
#: ``FleetHealthScorer(health_delta_map={...})``.
DEFAULT_HEALTH_DELTA_MAP: Dict[str, float] = {
    # fleet capacity
    "hardware_failure": 4.0,   # node out in remediation / hw incident
    "network_incident": 6.0,   # network-domain failure (blast radius >1)
    "heartbeat_only_failure": 2.0,  # unattributed: detection gap
    # quarantine
    "quarantined_node": 5.0,   # lemon-quarantined node
    "lemon_suspect": 1.0,      # provisional suspect (not yet pulled)
    # runtime / recovery machinery
    "breaker_open": 25.0,      # pooled execution degraded to inline
    "cache_quarantine": 3.0,   # corrupt trace-cache entry quarantined
    "worker_respawn": 2.0,     # worker process died and was respawned
    "retry": 0.5,              # attempt retried (transient fault)
    "timeout": 2.0,            # attempt reclaimed by the watchdog
    # observability freshness
    "stale_watermark": 15.0,   # live estimators lag the stream
    "tracer_self_disabled": 10.0,  # telemetry gave up on its sink
}

#: Condition -> sub-score component; every condition must appear here so
#: per-component scores partition the delta map.
COMPONENT_BY_CONDITION: Dict[str, str] = {
    "hardware_failure": "capacity",
    "network_incident": "network",
    "heartbeat_only_failure": "capacity",
    "quarantined_node": "quarantine",
    "lemon_suspect": "quarantine",
    "breaker_open": "runtime",
    "cache_quarantine": "runtime",
    "worker_respawn": "runtime",
    "retry": "runtime",
    "timeout": "runtime",
    "stale_watermark": "observability",
    "tracer_self_disabled": "observability",
}

#: Cap on the points any single condition may subtract in total, so one
#: noisy counter (hundreds of retries) degrades its component without
#: single-handedly zeroing the fleet score.
DEFAULT_CONDITION_CAP = 40.0


@dataclass(frozen=True)
class HealthSignals:
    """Point-in-time fleet state, as counts of scoreable conditions."""

    n_nodes: int
    nodes_down: int = 0
    nodes_quarantined: int = 0
    hardware_incidents: int = 0
    network_incidents: int = 0
    heartbeat_only_failures: int = 0
    lemon_suspects: Tuple[int, ...] = ()
    breaker_open: bool = False
    cache_quarantined: int = 0
    worker_respawns: int = 0
    retries: int = 0
    timeouts: int = 0
    watermark_stale: bool = False
    tracer_self_disabled: bool = False

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")

    # ------------------------------------------------------------------
    # adapters
    # ------------------------------------------------------------------
    @classmethod
    def from_analytics(
        cls, analytics, stale_after_days: Optional[float] = None
    ) -> "HealthSignals":
        """Snapshot a :class:`repro.live.LiveAnalytics` session.

        ``stale_after_days``: watermark age (behind the configured span)
        beyond which the stream counts as stale; ``None`` disables the
        staleness condition (replays legitimately end mid-span).
        """
        from repro.sim.timeunits import DAY

        fleet = analytics.fleet
        stale = False
        if stale_after_days is not None and not analytics.finished:
            # finish() forces the watermark to the span end, so only an
            # unfinished session can have a meaningful lag.
            lag_days = (
                analytics.config.span_seconds - analytics.watermark
            ) / DAY
            stale = lag_days > stale_after_days
        telemetry = analytics.telemetry
        tracer_dead = bool(
            telemetry is not None
            and getattr(telemetry.tracer, "self_disabled", False)
        )
        return cls(
            n_nodes=analytics.config.n_nodes,
            nodes_down=fleet.nodes_down,
            nodes_quarantined=fleet.nodes_quarantined,
            hardware_incidents=fleet.nodes_down,
            lemon_suspects=tuple(analytics.lemons.suspects()),
            watermark_stale=stale,
            tracer_self_disabled=tracer_dead,
        )

    @classmethod
    def from_summary(cls, summary, n_nodes: int) -> "HealthSignals":
        """Build signals from an :class:`repro.obs.summary.ObsSummary`.

        Telemetry streams carry injections and recovery actions but not
        remediation state, so ``nodes_down`` stays 0 on this path; the
        failure-injection and resilience counters carry the signal.
        """
        network = 0
        hardware = 0
        for component, count in summary.failures_by_component.items():
            if component in NETWORK_COMPONENTS:
                network += count
            else:
                hardware += count
        resilience = summary.resilience
        return cls(
            n_nodes=n_nodes,
            nodes_quarantined=summary.lemon_flags,
            hardware_incidents=hardware,
            network_incidents=network,
            heartbeat_only_failures=summary.failures_unattributed,
            breaker_open=bool(
                resilience.get("resilience_circuit_open_total", 0)
            ),
            cache_quarantined=resilience.get(
                "resilience_cache_quarantined_total", 0
            ),
            worker_respawns=resilience.get(
                "resilience_worker_respawns_total", 0
            ),
            retries=resilience.get("resilience_retries_total", 0),
            timeouts=resilience.get("resilience_timeouts_total", 0),
            tracer_self_disabled=bool(
                resilience.get("tracer_self_disabled", 0)
            ),
        )

    def condition_counts(self) -> Dict[str, int]:
        """How many instances of each scoreable condition are present."""
        return {
            "hardware_failure": max(
                self.hardware_incidents, self.nodes_down
            ),
            "network_incident": self.network_incidents,
            "heartbeat_only_failure": self.heartbeat_only_failures,
            "quarantined_node": self.nodes_quarantined,
            "lemon_suspect": len(self.lemon_suspects),
            "breaker_open": int(self.breaker_open),
            "cache_quarantine": self.cache_quarantined,
            "worker_respawn": self.worker_respawns,
            "retry": self.retries,
            "timeout": self.timeouts,
            "stale_watermark": int(self.watermark_stale),
            "tracer_self_disabled": int(self.tracer_self_disabled),
        }


#: Message template per condition (``{n}`` = instance count,
#: ``{points}`` = subtracted points).
_MESSAGES: Dict[str, str] = {
    "hardware_failure": "{n} node(s) down with hardware failures",
    "network_incident": "{n} network incident(s)",
    "heartbeat_only_failure": "{n} failure(s) caught only by heartbeat",
    "quarantined_node": "{n} node(s) quarantined as lemons",
    "lemon_suspect": "{n} provisional lemon suspect(s)",
    "breaker_open": "circuit breaker open: pooled execution degraded",
    "cache_quarantine": "{n} corrupt cache entr(ies) quarantined",
    "worker_respawn": "{n} worker process(es) died and respawned",
    "retry": "{n} attempt retr(ies)",
    "timeout": "{n} attempt timeout(s)",
    "stale_watermark": "live watermark is stale",
    "tracer_self_disabled": "telemetry tracer disabled itself (sink errors)",
}


@dataclass
class HealthReport:
    """The scored outcome: overall value, sub-scores, and attributions."""

    score: float
    components: Dict[str, float]
    messages: List[str]
    #: condition -> (instances, points subtracted after the cap)
    applied: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    signals: Optional[HealthSignals] = None

    @property
    def healthy(self) -> bool:
        return self.score >= 90.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "score": self.score,
            "components": dict(self.components),
            "messages": list(self.messages),
            "applied": {
                name: {"count": count, "points": points}
                for name, (count, points) in self.applied.items()
            },
        }

    def render(self) -> str:
        from repro.analysis.report import render_table

        rows = [("fleet health", f"{self.score:.1f} / 100")]
        for name in sorted(self.components):
            rows.append((f"  {name}", f"{self.components[name]:.1f}"))
        table = render_table(
            ["component", "score"], rows, title="fleet health"
        )
        if not self.messages:
            return table + "\nno active conditions"
        lines = [table, "conditions:"]
        lines.extend(f"  - {message}" for message in self.messages)
        return "\n".join(lines)


class FleetHealthScorer:
    """Weighted-delta health scoring with per-condition attribution."""

    def __init__(
        self,
        health_delta_map: Optional[Mapping[str, float]] = None,
        condition_cap: float = DEFAULT_CONDITION_CAP,
        component_by_condition: Optional[Mapping[str, str]] = None,
    ):
        self.health_delta_map = dict(DEFAULT_HEALTH_DELTA_MAP)
        if health_delta_map:
            for name, delta in health_delta_map.items():
                if float(delta) < 0:
                    raise ValueError(
                        f"health delta for {name!r} must be >= 0"
                    )
                self.health_delta_map[name] = float(delta)
        if condition_cap <= 0:
            raise ValueError("condition_cap must be positive")
        self.condition_cap = float(condition_cap)
        self.component_by_condition = dict(COMPONENT_BY_CONDITION)
        if component_by_condition:
            self.component_by_condition.update(component_by_condition)

    def score(self, signals: HealthSignals) -> HealthReport:
        """Score one snapshot: 100 minus capped per-condition deltas."""
        cluster_health_value = 100.0
        component_values: Dict[str, float] = {
            component: 100.0
            for component in set(self.component_by_condition.values())
        }
        messages: List[str] = []
        applied: Dict[str, Tuple[int, float]] = {}
        for name, count in signals.condition_counts().items():
            if count <= 0:
                continue
            delta = self.health_delta_map.get(name, 0.0)
            points = min(delta * count, self.condition_cap)
            if points <= 0:
                continue
            cluster_health_value -= points
            component = self.component_by_condition.get(name, "other")
            component_values[component] = (
                component_values.get(component, 100.0) - points
            )
            applied[name] = (count, points)
            template = _MESSAGES.get(name, name + " ({n})")
            messages.append(
                template.format(n=count) + f" [{name}, -{points:g}]"
            )
        def clamp(value: float) -> float:
            return max(0.0, min(100.0, value))

        return HealthReport(
            score=clamp(cluster_health_value),
            components={
                name: clamp(value)
                for name, value in sorted(component_values.items())
            },
            messages=messages,
            applied=applied,
            signals=signals,
        )


__all__ = [
    "COMPONENT_BY_CONDITION",
    "DEFAULT_CONDITION_CAP",
    "DEFAULT_HEALTH_DELTA_MAP",
    "FleetHealthScorer",
    "HealthReport",
    "HealthSignals",
    "NETWORK_COMPONENTS",
]
