"""Structured event tracing: typed, timestamped records with pluggable sinks.

The tracer is the simulator's own operational log — the analogue of the
health-check event streams and Slurm accounting logs the paper mines.
Instrumented subsystems (the event engine, failure injector, health
monitor, scheduler, runtime pool/cache) emit :class:`ObsEvent` records
through one :class:`Tracer`; where the events land is a sink decision:

* :class:`RingBufferSink` — bounded in-memory buffer for tests and
  interactive inspection,
* :class:`JsonlSink` — one JSON object per line, the durable stream
  ``repro obs summary`` consumes,
* :class:`NullSink` — discard (the default).

The tracer is **off by default** and the disabled path is a single
attribute check, so instrumentation can stay wired into hot seams
permanently.  Emitting records never touches any RNG stream, so an
instrumented run is bit-identical to an uninstrumented one (the
determinism tests assert this).
"""

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union


def label_group(label: str) -> str:
    """Collapse an event label to its bounded-cardinality group.

    Engine labels embed entity ids (``"failure:1734"``, ``"end:88"``);
    grouping on the prefix before ``":"`` keeps per-label metrics at a
    fixed, small cardinality.
    """
    if not label:
        return "unlabeled"
    return label.partition(":")[0]


@dataclass(frozen=True)
class ObsEvent:
    """One telemetry record.

    Attributes:
        sim_time: Simulation clock at emission (seconds).  Within one
            campaign run, non-decreasing per category.
        wall_time: Host ``perf_counter`` clock at emission.
        category: Namespaced event category (``"sim.execute"``,
            ``"failure.injected"``, ``"cache.hit"``, ...).
        label: The concerned entity or engine-event label.
        attrs: Free-form JSON-serializable payload.
    """

    sim_time: float
    wall_time: float
    category: str
    label: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "category": self.category,
            "label": self.label,
            "attrs": self.attrs,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "ObsEvent":
        return cls(
            sim_time=float(payload["sim_time"]),
            wall_time=float(payload["wall_time"]),
            category=str(payload["category"]),
            label=str(payload.get("label", "")),
            attrs=dict(payload.get("attrs", {})),
        )


class NullSink:
    """Discards every event (the disabled tracer's sink)."""

    def write(self, event: ObsEvent) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: "deque[ObsEvent]" = deque(maxlen=capacity)
        self.total_written = 0

    def write(self, event: ObsEvent) -> None:
        self._buffer.append(event)
        self.total_written += 1

    def close(self) -> None:
        pass

    @property
    def dropped(self) -> int:
        return self.total_written - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self._buffer)

    def events(self) -> List[ObsEvent]:
        return list(self._buffer)


class JsonlSink:
    """Appends one compact JSON object per event to ``path``."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.total_written = 0

    def write(self, event: ObsEvent) -> None:
        self._fh.write(
            json.dumps(event.to_json_dict(), separators=(",", ":")) + "\n"
        )
        self.total_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class Tracer:
    """Emits :class:`ObsEvent` records to a sink when enabled.

    The ``enabled`` flag is a plain attribute checked by every
    instrumentation site before doing *any* work; a tracer built with no
    sink (or a :class:`NullSink`) defaults to disabled.
    """

    #: Consecutive sink write failures tolerated before the tracer turns
    #: itself off.  Telemetry must never take the simulation down: a
    #: flaky disk degrades observability, not results.
    SINK_ERROR_LIMIT = 8

    def __init__(
        self,
        sink: Optional[object] = None,
        enabled: Optional[bool] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sink = sink if sink is not None else NullSink()
        if enabled is None:
            enabled = not isinstance(self.sink, NullSink)
        self.enabled = bool(enabled)
        self.events_emitted = 0
        self.sink_errors = 0
        #: True once the tracer turned itself off after
        #: :data:`SINK_ERROR_LIMIT` consecutive sink failures.  Distinct
        #: from ``enabled`` (which is also False for never-enabled
        #: tracers): this flag means *observability was lost mid-run*,
        #: and is surfaced in metrics snapshots and ``repro obs summary``.
        self.self_disabled = False
        self._consecutive_sink_errors = 0
        self._clock = clock

    def emit(
        self, category: str, label: str, sim_time: float, **attrs: Any
    ) -> Optional[ObsEvent]:
        """Record one event; no-op (returning None) when disabled.

        A sink ``OSError``/``ValueError`` is swallowed and counted in
        ``sink_errors``; after :data:`SINK_ERROR_LIMIT` consecutive
        failures the tracer disables itself (observability degrades, the
        run continues).
        """
        if not self.enabled:
            return None
        event = ObsEvent(
            sim_time=float(sim_time),
            wall_time=self._clock(),
            category=category,
            label=label,
            attrs=attrs,
        )
        try:
            self.sink.write(event)
        except (OSError, ValueError):
            self.sink_errors += 1
            self._consecutive_sink_errors += 1
            if self._consecutive_sink_errors >= self.SINK_ERROR_LIMIT:
                self.enabled = False
                self.self_disabled = True
            return None
        self._consecutive_sink_errors = 0
        self.events_emitted += 1
        return event

    def close(self) -> None:
        self.sink.close()

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"Tracer({type(self.sink).__name__}, {state}, "
            f"emitted={self.events_emitted})"
        )


#: Shared always-off tracer for call sites that want a non-None default.
NULL_TRACER = Tracer()
