"""Incident timeline reconstruction: detection → response → repair.

"From Detection to Recovery" (arXiv 2605.09370) argues that on a real
fleet the operationally useful reliability metric is the *timeline* of
each incident — how long until the failure was detected, how long until
remediation started, how long the repair took — not point failure
counts.  This module rebuilds exactly those records from a simulated
:class:`~repro.workload.trace.Trace`, stitching together the event
vocabulary the cluster already emits:

* ``cluster.incident``            — the fault occurs (backdated time),
* ``health.check_failed`` /
  ``health.node_fail_heartbeat``  — the fault is detected,
* ``remediation.ticket_opened``   — the response begins,
* ``remediation.ticket_closed``   — the node returns to service,
* ``lemon.quarantined``           — proactive capacity removal,
* job records (``hw_incident_id``) — the blast radius.

Stage latencies telescope over clamped milestones
``m0 = occurred ≤ m1 = detected ≤ m2 = ticket opened ≤ m3 = closed``::

    detection = m1 - m0      (fault → first health-check/heartbeat hit)
    response  = m2 - m1      (detection → remediation ticket)
    repair    = m3 - m2      (ticket → return to service)

so for every resolved incident the three stages sum *exactly* to its
downtime ``m3 - m0`` (test-enforced).  Incidents that never reach a
ticket (drain resolved by the untracked-repair path) or whose ticket is
still open at trace end are reported as unresolved and excluded from
stage aggregates.

Reconstruction is pure reading: it never mutates the trace and works on
any saved trace, including ones recorded before ``incident_id`` was
added to the remediation events (a node-and-time fallback match covers
those).
"""

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.spans import PhaseStat, phase_stats

#: Stage names, in timeline order.
STAGES = ("detection", "response", "repair")


@dataclass
class IncidentRecord:
    """One hardware incident's reconstructed lifecycle."""

    incident_id: int
    node_id: int
    component: str
    failure_class: str
    severity: int
    attributed: bool
    immediate: bool
    occurred_at: float
    detected_at: Optional[float] = None
    #: What detected it: ``"check:<name>"`` or ``"heartbeat"``.
    detected_via: Optional[str] = None
    ticket_id: Optional[int] = None
    ticket_opened_at: Optional[float] = None
    recovered_at: Optional[float] = None
    gpu_swapped: bool = False
    jobs_interrupted: int = 0
    jobs_requeued: int = 0

    @property
    def resolved(self) -> bool:
        return self.recovered_at is not None

    def milestones(self) -> Tuple[float, float, float, Optional[float]]:
        """Clamped ``(m0, m1, m2, m3)``; ``m3`` is None while open."""
        m0 = self.occurred_at
        m1 = max(m0, self.detected_at) if self.detected_at is not None else m0
        m2 = (
            max(m1, self.ticket_opened_at)
            if self.ticket_opened_at is not None
            else m1
        )
        m3 = (
            max(m2, self.recovered_at)
            if self.recovered_at is not None
            else None
        )
        return m0, m1, m2, m3

    @property
    def downtime_s(self) -> Optional[float]:
        """Occurrence to return-to-service; None while unresolved."""
        m0, _, _, m3 = self.milestones()
        return None if m3 is None else m3 - m0

    def stages(self) -> Optional[Dict[str, float]]:
        """Stage latencies; None while unresolved.  Sums to downtime."""
        m0, m1, m2, m3 = self.milestones()
        if m3 is None:
            return None
        return {
            "detection": m1 - m0,
            "response": m2 - m1,
            "repair": m3 - m2,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "incident_id": self.incident_id,
            "node_id": self.node_id,
            "component": self.component,
            "failure_class": self.failure_class,
            "severity": self.severity,
            "attributed": self.attributed,
            "immediate": self.immediate,
            "occurred_at": self.occurred_at,
            "detected_at": self.detected_at,
            "detected_via": self.detected_via,
            "ticket_id": self.ticket_id,
            "ticket_opened_at": self.ticket_opened_at,
            "recovered_at": self.recovered_at,
            "gpu_swapped": self.gpu_swapped,
            "jobs_interrupted": self.jobs_interrupted,
            "jobs_requeued": self.jobs_requeued,
            "downtime_s": self.downtime_s,
            "stages": self.stages(),
        }


@dataclass
class IncidentTimeline:
    """All reconstructed incidents of one trace, plus fleet context."""

    cluster_name: str
    span_seconds: float
    incidents: List[IncidentRecord] = field(default_factory=list)
    #: ``(time, node_id)`` lemon-quarantine events (proactive removals).
    quarantines: List[Tuple[float, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def resolved(self) -> List[IncidentRecord]:
        return [i for i in self.incidents if i.resolved]

    def open_incidents(self) -> List[IncidentRecord]:
        return [i for i in self.incidents if not i.resolved]

    def stage_stats(self) -> List[PhaseStat]:
        """p50/p95 per stage over resolved incidents, plus downtime."""
        durations: Dict[str, List[float]] = {s: [] for s in STAGES}
        durations["downtime"] = []
        for incident in self.resolved():
            stages = incident.stages()
            for stage in STAGES:
                durations[stage].append(stages[stage])
            durations["downtime"].append(incident.downtime_s)
        stats = phase_stats(durations)
        order = {name: i for i, name in enumerate(STAGES + ("downtime",))}
        stats.sort(key=lambda s: order.get(s.name, len(order)))
        return stats

    def total_downtime_s(self) -> float:
        return sum(i.downtime_s for i in self.resolved())

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "cluster_name": self.cluster_name,
            "span_seconds": self.span_seconds,
            "n_incidents": len(self.incidents),
            "n_resolved": len(self.resolved()),
            "n_open": len(self.open_incidents()),
            "total_downtime_s": self.total_downtime_s(),
            "quarantines": [
                {"time": t, "node_id": n} for t, n in self.quarantines
            ],
            "incidents": [i.to_dict() for i in self.incidents],
        }

    def write_json(self, path: Union[str, os.PathLike]) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    def render(self, limit: int = 15) -> str:
        from repro.analysis.report import render_table

        resolved = self.resolved()
        header = (
            f"incident timeline — {self.cluster_name}: "
            f"{len(self.incidents)} incidents "
            f"({len(resolved)} resolved, "
            f"{len(self.open_incidents())} open, "
            f"{len(self.quarantines)} lemon quarantines)"
        )
        parts = [header]
        stats = self.stage_stats()
        if stats:
            rows = [
                (
                    s.name,
                    str(s.count),
                    _fmt_hours(s.p50_s),
                    _fmt_hours(s.p95_s),
                    _fmt_hours(s.max_s),
                )
                for s in stats
            ]
            parts.append(
                render_table(
                    ["stage", "n", "p50", "p95", "max"],
                    rows,
                    title="stage latencies (detection → recovery)",
                )
            )
        shown = self.incidents[:limit]
        if shown:
            rows = []
            for i in shown:
                stages = i.stages()
                rows.append(
                    (
                        str(i.incident_id),
                        str(i.node_id),
                        i.component,
                        "yes" if i.attributed else "hb-only",
                        _fmt_hours(stages["detection"]) if stages else "-",
                        _fmt_hours(stages["repair"]) if stages else "-",
                        _fmt_hours(i.downtime_s)
                        if i.downtime_s is not None
                        else "open",
                        str(i.jobs_interrupted),
                    )
                )
            title = f"incidents (first {len(shown)} of {len(self.incidents)})"
            parts.append(
                render_table(
                    [
                        "id",
                        "node",
                        "component",
                        "attributed",
                        "detect",
                        "repair",
                        "downtime",
                        "jobs",
                    ],
                    rows,
                    title=title,
                )
            )
        return "\n".join(parts)


def _fmt_hours(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"


def reconstruct_timeline(trace) -> IncidentTimeline:
    """Stitch a trace's events and job records into incident timelines."""
    timeline = IncidentTimeline(
        cluster_name=trace.cluster_name,
        span_seconds=trace.span_seconds,
    )
    by_id: Dict[int, IncidentRecord] = {}
    #: node_id -> incident ids in occurrence order (fallback matching for
    #: events recorded before incident_id reached the remediation data).
    by_node: Dict[int, List[int]] = {}
    open_tickets: Dict[int, IncidentRecord] = {}  # ticket_id -> incident
    for event in trace.events:
        kind = event.kind
        data = event.data
        if kind == "cluster.incident":
            incident_id = int(data.get("incident_id", len(by_id)))
            record = IncidentRecord(
                incident_id=incident_id,
                node_id=int(data.get("node_id", -1)),
                component=str(data.get("component", "unknown")),
                failure_class=str(data.get("failure_class", "unknown")),
                severity=int(data.get("severity", 0)),
                attributed=bool(data.get("attributed", False)),
                immediate=bool(data.get("immediate", False)),
                occurred_at=event.time,
            )
            by_id[incident_id] = record
            by_node.setdefault(record.node_id, []).append(incident_id)
            timeline.incidents.append(record)
        elif kind in ("health.check_failed", "health.node_fail_heartbeat"):
            incident_id = data.get("incident_id", -1)
            record = by_id.get(int(incident_id) if incident_id is not None else -1)
            if record is None or bool(data.get("false_positive", False)):
                continue
            if record.detected_at is None or event.time < record.detected_at:
                record.detected_at = event.time
                record.detected_via = (
                    "heartbeat"
                    if kind == "health.node_fail_heartbeat"
                    else f"check:{data.get('check', 'unknown')}"
                )
        elif kind == "remediation.ticket_opened":
            record = _match_ticket(event, data, by_id, by_node)
            if record is None:
                continue
            record.ticket_opened_at = event.time
            ticket_id = data.get("ticket_id")
            if ticket_id is not None:
                record.ticket_id = int(ticket_id)
                open_tickets[int(ticket_id)] = record
        elif kind == "remediation.ticket_closed":
            ticket_id = data.get("ticket_id")
            record = (
                open_tickets.pop(int(ticket_id), None)
                if ticket_id is not None
                else None
            )
            if record is None:
                continue
            record.recovered_at = event.time
            record.gpu_swapped = bool(data.get("gpu_swapped", False))
        elif kind == "lemon.quarantined":
            node_id = data.get("node_id")
            if node_id is not None:
                timeline.quarantines.append((event.time, int(node_id)))
    for job in trace.job_records:
        incident_id = getattr(job, "hw_incident_id", None)
        if incident_id is None:
            continue
        record = by_id.get(int(incident_id))
        if record is None:
            continue
        record.jobs_interrupted += 1
        state = getattr(job, "state", None)
        if state is not None and getattr(state, "value", state) == "REQUEUED":
            record.jobs_requeued += 1
    timeline.incidents.sort(key=lambda i: (i.occurred_at, i.incident_id))
    return timeline


def _match_ticket(
    event, data, by_id: Dict[int, IncidentRecord], by_node: Dict[int, List[int]]
) -> Optional[IncidentRecord]:
    """Find the incident a ticket belongs to.

    Prefers the event's ``incident_id``; traces recorded before that
    field existed fall back to the latest still-unticketed incident on
    the same node that occurred at or before the ticket.
    """
    incident_id = data.get("incident_id")
    if incident_id is not None:
        return by_id.get(int(incident_id))
    node_id = data.get("node_id")
    if node_id is None:
        return None
    best: Optional[IncidentRecord] = None
    for candidate_id in by_node.get(int(node_id), ()):
        candidate = by_id[candidate_id]
        if (
            candidate.ticket_opened_at is None
            and candidate.occurred_at <= event.time
        ):
            best = candidate  # latest qualifying occurrence wins
    return best


__all__ = [
    "IncidentRecord",
    "IncidentTimeline",
    "STAGES",
    "reconstruct_timeline",
]
