"""Metrics registry: counters, gauges, and histogram timers with labels.

The registry is the aggregate side of the telemetry subsystem: where the
tracer records *what happened*, the registry records *how much and how
long*.  Metrics are identified by ``(name, labels)``; ``registry.counter``
and friends get-or-create, so instrumentation sites never need setup code.

Exports:

* ``to_dict()`` — the JSON snapshot written next to campaign traces and
  read back by ``repro obs summary``,
* ``render_prometheus()`` — Prometheus-style text exposition (counters and
  gauges as samples, histograms as quantile/sum/count summaries).

Everything here is allocation-light pure Python; the registry itself is
always safe to use (it never touches simulation state or RNG streams),
and hot-seam callers additionally gate on the tracer's enabled flag.
"""

import json
import math
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

LabelKey = Tuple[Tuple[str, str], ...]

#: The content type Prometheus scrapers expect for the text exposition
#: format rendered by :meth:`MetricsRegistry.render_prometheus`.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Sample distribution with exact quantiles.

    Observations are retained (bounded by ``max_samples`` via reservoir-free
    downsampling of the *oldest* half) so p50/p95 are exact for the scales
    this repository produces — thousands of phases, not billions.
    """

    kind = "histogram"

    def __init__(self, max_samples: int = 100_000) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._max_samples = max_samples
        # Ingest stride: once the retained set fills, only every
        # ``_stride``-th observation is kept and the stride doubles on each
        # halving, so retention stays uniform over the whole run instead of
        # biased toward recent samples.  count/sum/min/max remain exact.
        self._stride = 1
        self._phase = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            self._samples.append(value)
            if len(self._samples) > self._max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile over retained samples (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def snapshot(self) -> Dict[str, Any]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Timer:
    """Context manager that observes its elapsed wall time into a histogram.

    ::

        with registry.timer("campaign_phase_seconds", phase="simulate"):
            engine.run_until(span)
    """

    def __init__(
        self,
        histogram: Histogram,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._histogram = histogram
        self._clock = clock
        self._start: Optional[float] = None
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self._clock() - self._start
        self._histogram.observe(self.elapsed)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of labelled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any]) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def timer(self, name: str, **labels: Any) -> Timer:
        return Timer(self.histogram(name, **labels))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, LabelKey, Metric]]:
        for (name, key), metric in sorted(self._metrics.items()):
            yield name, key, metric

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-stable snapshot of every metric (the on-disk format)."""
        out: Dict[str, List[Dict[str, Any]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for name, key, metric in self:
            entry = {
                "name": name,
                "labels": dict(key),
                **metric.snapshot(),
            }
            out[metric.kind + "s"].append(entry)
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (histograms as quantile summaries)."""
        lines: List[str] = []
        seen_types = set()
        for name, key, metric in self:
            if name not in seen_types:
                ptype = "summary" if metric.kind == "histogram" else metric.kind
                lines.append(f"# TYPE {name} {ptype}")
                seen_types.add(name)
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name}{_render_labels(key)} {metric.value:g}")
            else:
                for q in (50, 95, 99):
                    labels = _render_labels(
                        key, (("quantile", f"{q / 100:g}"),)
                    )
                    lines.append(f"{name}{labels} {metric.percentile(q):g}")
                lines.append(f"{name}_sum{_render_labels(key)} {metric.total:g}")
                lines.append(f"{name}_count{_render_labels(key)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_snapshot(self, path: Union[str, os.PathLike]) -> str:
        """Write the :meth:`to_dict` snapshot as JSON; returns the path."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path


def load_snapshot(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read back a :meth:`MetricsRegistry.write_snapshot` JSON file."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        return json.load(fh)
