"""Campaign runner: wire cluster + scheduler + workload, produce a Trace.

A campaign is this repository's unit of "data collection" — the analogue of
the paper's 11 months of observing a cluster.  Everything is derived from a
:class:`CampaignConfig` and a single seed, so every figure is regenerable
bit-for-bit.

Scaled-down campaigns are first-class: the workload generator calibrates
submission rate to the cluster's size, and profiles drop job sizes that
would not fit, so a 128-node campaign exhibits the same *shapes* as a
2000-node one with proportionally fewer events.
"""

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.obs.spans import maybe_span
from repro.options import DEFAULT_OPTIONS, RunOptions, UNSET, resolve_options
from repro.scheduler.engine import SlurmLikeScheduler
from repro.scheduler.quota import QuotaManager
from repro.sim.engine import Engine
from repro.sim.events import EventLog
from repro.sim.rng import RngStreams
from repro.sim.timeunits import DAY
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import WorkloadProfile, rsc1_profile, rsc2_profile
from repro.workload.trace import NodeTraceRecord, Trace

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Telemetry
    from repro.scheduler.preflight import PreflightPolicy


@dataclass
class CampaignConfig:
    """Everything needed to replay one campaign."""

    cluster_spec: ClusterSpec
    duration_days: float
    seed: int = 0
    profile: Optional[WorkloadProfile] = None
    target_utilization: float = 0.87
    diurnal_amplitude: float = 0.3
    quotas: Optional[Dict[str, int]] = None
    #: Section V's research direction: gang placement prefers nodes with
    #: clean failure histories (see scheduler.reliability_aware).
    reliability_aware_placement: bool = False
    #: Section V: preflight hardware batteries before large gangs start
    #: (None disables; see scheduler.preflight.PreflightPolicy).
    preflight: Optional["PreflightPolicy"] = None
    lemon_detection: bool = False
    lemon_detection_period_days: float = 7.0
    max_events: int = 50_000_000

    def __post_init__(self):
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.duration_days > self.cluster_spec.campaign_days:
            raise ValueError(
                "duration_days exceeds the cluster spec's campaign_days "
                "(episodic regimes are placed within campaign_days)"
            )
        if self.preflight is not None:
            # Deferred import: campaign is the bridge between the config
            # vocabulary and the scheduler, and must stay import-light.
            from repro.scheduler.preflight import PreflightPolicy

            if not isinstance(self.preflight, PreflightPolicy):
                raise TypeError(
                    "preflight must be a scheduler.preflight.PreflightPolicy "
                    f"or None, got {type(self.preflight).__name__}"
                )

    def resolve_profile(self) -> WorkloadProfile:
        if self.profile is not None:
            return self.profile
        if self.cluster_spec.name.startswith("RSC-2"):
            return rsc2_profile()
        return rsc1_profile()


def _phase_timer(telemetry: Optional["Telemetry"], observing: bool, phase: str):
    """Per-phase profiling timer; a no-op context when telemetry is off."""
    if not observing:
        return nullcontext()
    return telemetry.metrics.timer("campaign_phase_seconds", phase=phase)


class Campaign:
    """Owns the live objects of one campaign and runs it to a trace."""

    def __init__(
        self,
        config: CampaignConfig,
        telemetry: Optional["Telemetry"] = None,
        incremental_indices: Optional[bool] = None,
        options: Optional["RunOptions"] = None,
    ):
        # Campaign is the low-level runner object; its explicit keywords
        # stay supported (no deprecation), with ``options`` filling any
        # that were not passed.
        opts = options if options is not None else DEFAULT_OPTIONS
        if telemetry is None:
            telemetry = opts.telemetry
        if incremental_indices is None:
            incremental_indices = opts.incremental_indices
        self.config = config
        #: Observability bundle (repro.obs.Telemetry).  Deliberately NOT a
        #: CampaignConfig field: telemetry must never influence the cache
        #: key or the simulated trace — it only observes.
        self.telemetry = telemetry
        self.engine = Engine(telemetry=telemetry)
        self.rngs = RngStreams(config.seed)
        self.event_log = EventLog()
        # incremental_indices=False runs the whole cluster/scheduler stack
        # on the pre-index O(N)-scan reference path.  Like telemetry it is
        # a runner argument, not a config field: both paths must produce
        # bit-identical traces (the benchmarks assert exactly that), so it
        # must never reach the cache key.
        self.cluster = Cluster(
            config.cluster_spec,
            self.engine,
            self.rngs,
            event_log=self.event_log,
            telemetry=telemetry,
            incremental_indices=incremental_indices,
        )
        placement = None
        if config.reliability_aware_placement:
            from repro.scheduler.reliability_aware import ReliabilityAwarePlacement

            placement = ReliabilityAwarePlacement()
        self.scheduler = SlurmLikeScheduler(
            self.engine,
            self.cluster,
            self.rngs,
            placement=placement,
            quotas=QuotaManager(config.quotas),
            preflight=config.preflight,
            event_log=self.event_log,
            telemetry=telemetry,
        )
        self.generator = WorkloadGenerator(
            config.resolve_profile(),
            self.rngs,
            cluster_gpus=config.cluster_spec.n_gpus,
            target_utilization=config.target_utilization,
            diurnal_amplitude=config.diurnal_amplitude,
        )
        self._detector = None
        if config.lemon_detection:
            # Deferred import: core.lemon consumes cluster/trace types, and
            # campaign is the only place both halves meet.
            from repro.core.lemon import LemonDetector, LemonPolicy
            from repro.sim.processes import PeriodicProcess

            self._detector = LemonDetector(LemonPolicy())
            self._lemon_sweeper = PeriodicProcess(
                self.engine,
                config.lemon_detection_period_days * DAY,
                self._lemon_sweep,
                label="lemon-sweep",
            )

    def _lemon_sweep(self) -> None:
        flagged = self._detector.detect_live(self.cluster.nodes.values())
        telemetry = self.telemetry
        observing = telemetry is not None and telemetry.enabled
        for node in flagged:
            if not node.quarantined:
                node.quarantined = True
                self.scheduler.index.remove(node.node_id)
                self.event_log.emit(
                    self.engine.now,
                    "lemon.quarantined",
                    node.name,
                    node_id=node.node_id,
                )
                if observing:
                    telemetry.tracer.emit(
                        "lemon.flagged",
                        node.name,
                        self.engine.now,
                        node_id=node.node_id,
                        votes=self._detector.policy.votes(
                            lambda name: node.counters.as_dict()[name]
                        ),
                    )
                    telemetry.metrics.counter(
                        "lemon_nodes_flagged_total"
                    ).inc()

    def _submit_continuation(self, job, record) -> None:
        """Chain the next segment of a long training run (same jobrun)."""
        next_spec = self.generator.continuations.pop(job.job_id, None)
        if next_spec is not None:
            self.scheduler.submit(next_spec)

    def run(self) -> Trace:
        """Run the configured span and return the observable trace."""
        t0 = time.perf_counter()
        span = self.config.duration_days * DAY
        telemetry = self.telemetry
        observing = telemetry is not None and telemetry.enabled
        if observing:
            telemetry.tracer.emit(
                "campaign.begin",
                self.config.cluster_spec.name,
                0.0,
                seed=self.config.seed,
                n_nodes=self.config.cluster_spec.n_nodes,
                duration_days=self.config.duration_days,
            )
        self.scheduler.on_job_completed = self._submit_continuation
        with maybe_span(
            telemetry,
            "campaign",
            seed=self.config.seed,
            cluster=self.config.cluster_spec.name,
            duration_days=self.config.duration_days,
        ):
            with _phase_timer(telemetry, observing, "generate"), maybe_span(
                telemetry, "phase:generate"
            ):
                for spec in self.generator.generate(0.0, span):
                    # Eligibility is deferred to each spec's submit_time.
                    self.scheduler.submit(spec)
            with _phase_timer(telemetry, observing, "simulate"), maybe_span(
                telemetry, "phase:simulate"
            ):
                self.cluster.start()
                self.engine.run_until(span, max_events=self.config.max_events)
                self.scheduler.stop()
            with _phase_timer(telemetry, observing, "build_trace"), maybe_span(
                telemetry, "phase:build_trace"
            ):
                trace = self._build_trace(span)
        elapsed = time.perf_counter() - t0
        executed = self.engine.executed_events
        # Instrumentation consumed by CampaignPool/TraceCache and surfaced
        # in BENCH output; excluded from trace_digest so a cache-loaded
        # trace still digests equal to a freshly simulated one.
        trace.metadata["runtime"] = {
            "wall_time_s": elapsed,
            "events_executed": executed,
            "events_per_sec": executed / elapsed if elapsed > 0 else 0.0,
            "source": "simulated",
        }
        if observing:
            telemetry.tracer.emit(
                "campaign.end",
                self.config.cluster_spec.name,
                span,
                seed=self.config.seed,
                events_executed=executed,
                wall_time_s=elapsed,
            )
            telemetry.metrics.counter("campaigns_run_total").inc()
            telemetry.metrics.counter("engine_events_executed_total").inc(
                executed
            )
            telemetry.metrics.histogram("campaign_wall_seconds").observe(
                elapsed
            )
        return trace

    def _build_trace(self, span: float) -> Trace:
        lemon_by_id = {
            spec.node_id: spec.component.value for spec in self.cluster.lemon_specs
        }
        node_records = []
        for node in self.cluster.nodes.values():
            counters = node.counters
            node_records.append(
                NodeTraceRecord(
                    node_id=node.node_id,
                    rack_id=node.rack_id,
                    pod_id=node.pod_id,
                    gpu_swaps=node.gpu_swaps,
                    is_lemon_truth=node.node_id in lemon_by_id,
                    lemon_component=lemon_by_id.get(node.node_id),
                    excl_jobid_count=counters.excl_jobid_count,
                    xid_cnt=counters.xid_cnt,
                    tickets=counters.tickets,
                    out_count=counters.out_count,
                    multi_node_node_fails=counters.multi_node_node_fails,
                    single_node_node_fails=counters.single_node_node_fails,
                    single_node_jobs_seen=counters.single_node_jobs_seen,
                )
            )
        spec = self.config.cluster_spec
        return Trace(
            cluster_name=spec.name,
            n_nodes=spec.n_nodes,
            n_gpus=spec.n_gpus,
            start=0.0,
            end=span,
            job_records=list(self.scheduler.records),
            node_records=node_records,
            events=list(self.event_log),
            metadata={
                "check_introductions": {
                    check.name: check.introduced_at
                    for check in self.cluster.monitor.checks
                    if check.introduced_at > 0
                },
                "seed": self.config.seed,
                "profile": self.generator.profile.name,
                "jobs_per_day": self.generator.jobs_per_day,
                "baseline_rf_per_node_day": self.cluster.hazards.baseline_total_rate(),
                "lemon_detection": self.config.lemon_detection,
                "target_utilization": self.config.target_utilization,
            },
        )


def run_campaign(
    config: CampaignConfig,
    options: Optional["RunOptions"] = None,
    *,
    telemetry=UNSET,
    incremental_indices=UNSET,
) -> Trace:
    """One-call convenience: build and run a campaign.

    ``options`` (a :class:`repro.RunOptions`) is the supported way to
    select the execution strategy — telemetry bundle, incremental vs
    reference indices; none of it changes the simulated trace.  The
    ``telemetry=``/``incremental_indices=`` keywords are the deprecated
    pre-``RunOptions`` spelling and emit a :class:`DeprecationWarning`.
    """
    opts = resolve_options(
        options,
        "run_campaign",
        telemetry=telemetry,
        incremental_indices=incremental_indices,
    )
    return Campaign(config, options=opts).run()
