"""Reliability metrics: ETTR, MFU, goodput (Section II-D).

ETTR — Effective Training Time Ratio — is productive runtime over available
wallclock time for a *job run* (a chain of scheduler jobs of one logical
training task).  Productive runtime excludes (1) re-training from the last
checkpoint after an interruption and (2) restart initialization overhead.
Neither is directly observable at scale, so — exactly like the paper — they
are free parameters supplied as :class:`ETTRAssumptions`.
"""

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.sim.timeunits import HOUR, MINUTE
from repro.workload.jobruns import JobRun


@dataclass(frozen=True)
class ETTRAssumptions:
    """The paper's free parameters for unproductive time.

    Defaults are the values Fig. 9 uses: 60-minute checkpoint interval and
    a 5-minute restart overhead, with every attempt treated as interrupted
    by an infra failure (making measured ETTR an underestimate).
    """

    checkpoint_interval: float = 1 * HOUR
    restart_overhead: float = 5 * MINUTE
    treat_all_attempts_as_interrupted: bool = True

    def __post_init__(self):
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.restart_overhead < 0:
            raise ValueError("restart_overhead must be non-negative")

    @property
    def expected_checkpoint_loss(self) -> float:
        """E[recompute] when interruptions are uniform over the interval."""
        return self.checkpoint_interval / 2


@dataclass(frozen=True)
class JobRunETTR:
    """ETTR decomposition of one job run: W = R + U + Q."""

    jobrun_id: int
    n_gpus: int
    productive: float  # R
    unproductive: float  # U
    queue: float  # Q
    n_interruptions: int

    @property
    def wallclock(self) -> float:
        return self.productive + self.unproductive + self.queue

    @property
    def ettr(self) -> float:
        if self.wallclock <= 0:
            return 0.0
        return self.productive / self.wallclock


def job_run_ettr(
    run: JobRun, assumptions: Optional[ETTRAssumptions] = None
) -> JobRunETTR:
    """Measured ETTR of a job run under the stated assumptions.

    Follows Appendix A's accounting: the first attempt pays the restart
    overhead u0; every subsequent attempt pays u0 plus the expected
    checkpoint recompute dt/2 (each term capped at the attempt's actual
    runtime — a 2-minute attempt cannot waste 35 minutes).
    """
    if assumptions is None:
        assumptions = ETTRAssumptions()
    u0 = assumptions.restart_overhead
    cp_loss = assumptions.expected_checkpoint_loss
    unproductive = 0.0
    for i, attempt in enumerate(run.attempts):
        loss = u0 if i == 0 else u0 + cp_loss
        unproductive += min(loss, attempt.runtime)
    productive = run.total_runtime - unproductive
    return JobRunETTR(
        jobrun_id=run.jobrun_id,
        n_gpus=run.n_gpus,
        productive=max(0.0, productive),
        unproductive=unproductive,
        queue=run.total_queue_time,
        n_interruptions=run.n_interruptions,
    )


def mean_ettr(
    runs: Iterable[JobRun], assumptions: Optional[ETTRAssumptions] = None
) -> float:
    """Unweighted mean ETTR across job runs (Fig. 9's per-bucket statistic)."""
    values = [job_run_ettr(run, assumptions).ettr for run in runs]
    if not values:
        raise ValueError("no job runs supplied")
    return sum(values) / len(values)


def model_flops_utilization(
    achieved_flops_per_second: float,
    peak_flops_per_second: float,
) -> float:
    """MFU: achieved model FLOPs over hardware peak (Section II-D).

    The paper quotes 38-43% for LLaMa-3-scale training; ETTR is typically
    much higher because it ignores per-step efficiency.
    """
    if peak_flops_per_second <= 0:
        raise ValueError("peak FLOPs must be positive")
    if achieved_flops_per_second < 0:
        raise ValueError("achieved FLOPs must be non-negative")
    mfu = achieved_flops_per_second / peak_flops_per_second
    if mfu > 1:
        raise ValueError(
            f"achieved FLOPs exceed peak ({mfu:.2f}x); check inputs"
        )
    return mfu


def cluster_goodput_fraction(
    scheduled_gpu_seconds: float,
    wasted_gpu_seconds: float,
    capacity_gpu_seconds: float,
) -> float:
    """Aggregate goodput normalized by capacity (Section II-D).

    ``wasted_gpu_seconds`` is lost work (failures, cascades, restart
    overheads); the result is the utilization-style value in [0, 1].
    """
    if capacity_gpu_seconds <= 0:
        raise ValueError("capacity must be positive")
    if wasted_gpu_seconds < 0 or scheduled_gpu_seconds < 0:
        raise ValueError("GPU-seconds must be non-negative")
    if wasted_gpu_seconds > scheduled_gpu_seconds:
        raise ValueError("cannot waste more than was scheduled")
    return (scheduled_gpu_seconds - wasted_gpu_seconds) / capacity_gpu_seconds
