"""Table I: the failure taxonomy.

"There may be many potential root causes for any given symptom, and the
only way to limit the hypothesis space is to rule out unlikely causes"
(Section II-E).  Each taxonomy entry maps an observed *symptom* to the
failure *domains* it may implicate (user program, system software, hardware
infrastructure) and the likely causes the paper lists.  :func:`diagnose`
implements the differential-diagnosis step: given a symptom and the set of
domains already ruled out, it returns the remaining hypotheses.
"""

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.cluster.components import ComponentType


class FailureDomain(enum.Enum):
    """Where a failure can originate (Table I's three columns)."""

    USER_PROGRAM = "user_program"
    SYSTEM_SOFTWARE = "system_software"
    HARDWARE_INFRA = "hardware_infra"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FailureSymptom(enum.Enum):
    """Observable symptoms (Table I's rows)."""

    OOM = "oom"
    GPU_UNAVAILABLE = "gpu_unavailable"
    GPU_MEMORY_ERRORS = "gpu_memory_errors"
    GPU_DRIVER_FIRMWARE_ERROR = "gpu_driver_firmware_error"
    GPU_NVLINK_ERROR = "gpu_nvlink_error"
    INFINIBAND_LINK = "infiniband_link"
    FILESYSTEM_MOUNTS = "filesystem_mounts"
    MAIN_MEMORY_ERRORS = "main_memory_errors"
    ETHLINK_ERRORS = "ethlink_errors"
    PCIE_ERRORS = "pcie_errors"
    NCCL_TIMEOUT = "nccl_timeout"
    SYSTEM_SERVICES = "system_services"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TaxonomyEntry:
    """One row of Table I."""

    symptom: FailureSymptom
    domains: FrozenSet[FailureDomain]
    likely_causes: Tuple[str, ...]
    component: Optional[ComponentType] = None

    def implicates(self, domain: FailureDomain) -> bool:
        return domain in self.domains

    @property
    def is_ambiguous(self) -> bool:
        """True when more than one domain is suspect (the red-herring risk)."""
        return len(self.domains) > 1


def _entry(symptom, domains, causes, component=None) -> TaxonomyEntry:
    return TaxonomyEntry(
        symptom=symptom,
        domains=frozenset(domains),
        likely_causes=tuple(causes),
        component=component,
    )


_U = FailureDomain.USER_PROGRAM
_S = FailureDomain.SYSTEM_SOFTWARE
_H = FailureDomain.HARDWARE_INFRA

#: Table I, verbatim rows.
FAILURE_TAXONOMY: Dict[FailureSymptom, TaxonomyEntry] = {
    e.symptom: e
    for e in [
        _entry(FailureSymptom.OOM, {_U}, ["User Bug"]),
        _entry(
            FailureSymptom.GPU_UNAVAILABLE,
            {_S, _H},
            ["PCIe error", "Driver/BIOS", "thermals"],
            ComponentType.GPU,
        ),
        _entry(
            FailureSymptom.GPU_MEMORY_ERRORS,
            {_H},
            ["Thermal Noise", "Cosmic Rays", "HBM Defect or Wear"],
            ComponentType.GPU_MEMORY,
        ),
        _entry(
            FailureSymptom.GPU_DRIVER_FIRMWARE_ERROR,
            {_S},
            ["Outdated Software", "High Load"],
            ComponentType.GPU,
        ),
        _entry(
            FailureSymptom.GPU_NVLINK_ERROR,
            {_H},
            ["Electro/Material Failure", "Switch"],
            ComponentType.NVLINK,
        ),
        _entry(
            FailureSymptom.INFINIBAND_LINK,
            {_H},
            ["Electro/Material Failure", "Switch"],
            ComponentType.IB_LINK,
        ),
        _entry(
            FailureSymptom.FILESYSTEM_MOUNTS,
            {_S},
            ["Failed Frontend Network", "Drivers in D State", "Storage Backend"],
            ComponentType.FILESYSTEM_MOUNT,
        ),
        _entry(
            FailureSymptom.MAIN_MEMORY_ERRORS,
            {_H},
            ["Circuit Wear", "Thermal Noise", "Cosmic Rays"],
            ComponentType.HOST_MEMORY,
        ),
        _entry(
            FailureSymptom.ETHLINK_ERRORS,
            {_H},
            ["Electro/Material Failure", "Switch"],
            ComponentType.ETH_LINK,
        ),
        _entry(
            FailureSymptom.PCIE_ERRORS,
            {_H},
            ["GPU Failure", "Poor Electrical Contacts"],
            ComponentType.PCIE,
        ),
        _entry(
            FailureSymptom.NCCL_TIMEOUT,
            {_U, _S, _H},
            ["Userspace Crash", "Deadlock", "Failed HW"],
        ),
        _entry(
            FailureSymptom.SYSTEM_SERVICES,
            {_U, _S, _H},
            ["Userspace Interference", "Software Bugs", "Network Partition"],
            ComponentType.SYSTEM_SERVICES,
        ),
    ]
}

#: Maps simulator component domains back to their taxonomy symptom.
SYMPTOM_BY_COMPONENT: Dict[ComponentType, FailureSymptom] = {
    entry.component: symptom
    for symptom, entry in FAILURE_TAXONOMY.items()
    if entry.component is not None
}


def diagnose(
    symptom: FailureSymptom,
    ruled_out: Iterable[FailureDomain] = (),
) -> List[FailureDomain]:
    """Differential diagnosis: domains still suspect after exclusions.

    >>> diagnose(FailureSymptom.NCCL_TIMEOUT,
    ...          ruled_out=[FailureDomain.USER_PROGRAM])
    [<FailureDomain.SYSTEM_SOFTWARE: 'system_software'>, \
<FailureDomain.HARDWARE_INFRA: 'hardware_infra'>]
    """
    entry = FAILURE_TAXONOMY[symptom]
    ruled = set(ruled_out)
    remaining = [d for d in FailureDomain if d in entry.domains and d not in ruled]
    return remaining


def ambiguous_symptoms() -> List[FailureSymptom]:
    """Symptoms spanning multiple domains — the paper's red-herrings."""
    return [s for s, e in FAILURE_TAXONOMY.items() if e.is_ambiguous]
