"""Columnar trace blocks: the typed-array data plane behind :class:`Trace`.

A campaign trace is logically three tables — job attempts, end-of-campaign
node records, and the health/cluster event stream.  The row-object form
(`JobAttemptRecord` / `NodeTraceRecord` / `EventRecord` lists) is the API
every module speaks, but analyzing a production-scale campaign by walking
those rows one at a time is what made figure generation O(rows * figures)
in pure Python.

:class:`ColumnarTrace` stores the same content as typed NumPy column
blocks:

* :class:`JobColumns` — one array per accounting-log field, with ragged
  ``node_ids`` in CSR form (flat ids + offsets) and interned string
  columns (project, hw_component);
* :class:`NodeColumns` — the per-node reliability counters;
* :class:`EventColumns` — event times, interned kind/subject, the exact
  JSON payload per event, plus *extracted* convenience columns
  (``node_id``, ``component_code``, ``check_code``, ``severity``) for the
  fields the analysis layer filters on constantly.

The contract is exactness: ``ColumnarTrace.from_trace(t).to_trace()``
reproduces ``t`` bit-for-bit at the ``Trace.to_dict()`` level (the
determinism-digest level), and the npz persistence used by the runtime
trace cache round-trips through ``save_npz``/``load_npz`` without pickle.

One normalization applies: event payloads travel as JSON, so tuples inside
``EventRecord.data`` come back as lists — the same normalization the
existing JSONL ``Trace.save``/``Trace.load`` path has always performed,
and invisible to ``trace_digest`` (which canonicalizes both identically).
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.jobtypes import JobAttemptRecord, JobState, QosTier
from repro.sim.events import EventRecord

#: Version of the columnar block layout (npz key schema).  Independent of
#: ``TRACE_SCHEMA_VERSION`` (the row-level shape) and of the cache-key
#: format: bumping it invalidates *columnar* payloads only.
COLUMNAR_SCHEMA_VERSION = 1

#: Fixed, order-stable state vocabulary: the uint8 code of a state is its
#: position in JobState declaration order.
JOB_STATES: Tuple[JobState, ...] = tuple(JobState)
_STATE_CODE: Dict[JobState, int] = {s: i for i, s in enumerate(JOB_STATES)}
STATE_CODE_NODE_FAIL = _STATE_CODE[JobState.NODE_FAIL]
STATE_CODE_FAILED = _STATE_CODE[JobState.FAILED]
STATE_CODE_REQUEUED = _STATE_CODE[JobState.REQUEUED]
STATE_CODE_PREEMPTED = _STATE_CODE[JobState.PREEMPTED]
STATE_CODE_COMPLETED = _STATE_CODE[JobState.COMPLETED]


def state_code(state: JobState) -> int:
    """The stable uint8 code of a :class:`JobState`."""
    return _STATE_CODE[state]


# ----------------------------------------------------------------------
# string packing (npz-safe, pickle-free)
# ----------------------------------------------------------------------
def pack_strings(strings: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack strings as a UTF-8 byte blob plus int64 offsets."""
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(b) for b in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return blob, offsets


def unpack_strings(blob: np.ndarray, offsets: np.ndarray) -> List[str]:
    """Inverse of :func:`pack_strings`."""
    raw = blob.tobytes()
    return [
        raw[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


class StringTable:
    """Append-only string interning: string <-> small int code.

    Code ``-1`` is reserved for ``None`` (missing) and never appears in
    the table itself.
    """

    __slots__ = ("strings", "_codes")

    def __init__(self, strings: Optional[Iterable[str]] = None):
        self.strings: List[str] = []
        self._codes: Dict[str, int] = {}
        if strings is not None:
            for s in strings:
                self.intern(s)

    def intern(self, value: Optional[str]) -> int:
        if value is None:
            return -1
        code = self._codes.get(value)
        if code is None:
            code = len(self.strings)
            self.strings.append(value)
            self._codes[value] = code
        return code

    def lookup(self, code: int) -> Optional[str]:
        return None if code < 0 else self.strings[code]

    def __len__(self) -> int:
        return len(self.strings)


def next_power_of_two(values: np.ndarray, minimum: int = 1) -> np.ndarray:
    """Vectorized ``power_of_two_bucket``: round up to a power of two.

    Matches :func:`repro.stats.quantiles.power_of_two_bucket` exactly for
    positive integers and power-of-two ``minimum`` (the only uses in the
    analysis layer: 1 for Fig. 6, 8 for the Fig. 7/8 node-level buckets).
    """
    if minimum < 1 or (minimum & (minimum - 1)) != 0:
        raise ValueError(f"minimum must be a power of two, got {minimum}")
    v = np.asarray(values, dtype=np.int64)
    if v.size and int(v.min()) <= 0:
        raise ValueError("values must be positive")
    mantissa, exponent = np.frexp(v.astype(np.float64))
    exact = mantissa == 0.5  # already a power of two
    out = np.where(exact, v, np.left_shift(np.int64(1), exponent))
    return np.maximum(out.astype(np.int64), minimum)


def _json_default(value: Any) -> Any:
    """JSON fallback for numpy scalars that may appear in event payloads."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"event payload value of type {type(value).__name__} is not "
        "JSON-serializable"
    )


# ----------------------------------------------------------------------
# job columns
# ----------------------------------------------------------------------
@dataclass
class JobColumns:
    """The accounting log as typed arrays (one element per attempt row)."""

    job_id: np.ndarray  # int64
    attempt: np.ndarray  # int32
    jobrun_id: np.ndarray  # int64
    project_code: np.ndarray  # int32 -> project_table
    qos: np.ndarray  # int8 (QosTier values)
    n_gpus: np.ndarray  # int32
    n_nodes: np.ndarray  # int32
    enqueue_time: np.ndarray  # float64
    start_time: np.ndarray  # float64
    end_time: np.ndarray  # float64
    state_code: np.ndarray  # uint8 -> JOB_STATES
    node_ids_flat: np.ndarray  # int64, CSR values
    node_ids_offsets: np.ndarray  # int64, CSR offsets (len n+1)
    hw_component_code: np.ndarray  # int32 -> hw_component_table, -1 = None
    hw_incident_id: np.ndarray  # int64 (valid where ~hw_incident_null)
    hw_incident_null: np.ndarray  # bool
    hw_attributed: np.ndarray  # bool
    failing_node_id: np.ndarray  # int64 (valid where ~failing_node_null)
    failing_node_null: np.ndarray  # bool
    instigator_job_id: np.ndarray  # int64 (valid where ~instigator_null)
    instigator_null: np.ndarray  # bool
    project_table: List[str] = field(default_factory=list)
    hw_component_table: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.job_id.shape[0])

    # -- derived vectors (cached) --------------------------------------
    @property
    def runtime(self) -> np.ndarray:
        """Seconds of scheduled runtime per attempt."""
        cached = getattr(self, "_runtime", None)
        if cached is None:
            cached = self.end_time - self.start_time
            self._runtime = cached
        return cached

    @property
    def queue_wait(self) -> np.ndarray:
        cached = getattr(self, "_queue_wait", None)
        if cached is None:
            cached = self.start_time - self.enqueue_time
            self._queue_wait = cached
        return cached

    @property
    def gpu_seconds(self) -> np.ndarray:
        cached = getattr(self, "_gpu_seconds", None)
        if cached is None:
            cached = self.runtime * self.n_gpus
            self._gpu_seconds = cached
        return cached

    @property
    def is_hw_interruption(self) -> np.ndarray:
        """Vector form of ``JobAttemptRecord.is_hw_interruption``."""
        cached = getattr(self, "_is_hw", None)
        if cached is None:
            cached = (self.state_code == STATE_CODE_NODE_FAIL) | (
                ~self.hw_incident_null
            )
            self._is_hw = cached
        return cached

    def hw_failure_mask(self, use_ground_truth: bool = True) -> np.ndarray:
        """Vector form of ``core.mttf._is_hw_failure``."""
        if use_ground_truth:
            return self.is_hw_interruption
        observable = (self.state_code == STATE_CODE_FAILED) | (
            self.state_code == STATE_CODE_REQUEUED
        )
        return (self.state_code == STATE_CODE_NODE_FAIL) | (
            observable & self.hw_attributed
        )

    def size_bucket(self) -> np.ndarray:
        """Fig. 7/8 bucketing: ceil to a server, then a power of two."""
        cached = getattr(self, "_size_bucket", None)
        if cached is None:
            from repro.cluster.components import GPUS_PER_NODE

            rounded = (
                (self.n_gpus.astype(np.int64) + GPUS_PER_NODE - 1)
                // GPUS_PER_NODE
            ) * GPUS_PER_NODE
            cached = next_power_of_two(rounded, minimum=GPUS_PER_NODE)
            self._size_bucket = cached
        return cached

    # -- construction ---------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[JobAttemptRecord]) -> "JobColumns":
        n = len(records)
        projects = StringTable()
        components = StringTable()
        job_id = np.empty(n, dtype=np.int64)
        attempt = np.empty(n, dtype=np.int32)
        jobrun_id = np.empty(n, dtype=np.int64)
        project_code = np.empty(n, dtype=np.int32)
        qos = np.empty(n, dtype=np.int8)
        n_gpus = np.empty(n, dtype=np.int32)
        n_nodes = np.empty(n, dtype=np.int32)
        enqueue_time = np.empty(n, dtype=np.float64)
        start_time = np.empty(n, dtype=np.float64)
        end_time = np.empty(n, dtype=np.float64)
        state = np.empty(n, dtype=np.uint8)
        hw_component_code = np.empty(n, dtype=np.int32)
        hw_incident_id = np.zeros(n, dtype=np.int64)
        hw_incident_null = np.empty(n, dtype=bool)
        hw_attributed = np.empty(n, dtype=bool)
        failing_node_id = np.zeros(n, dtype=np.int64)
        failing_node_null = np.empty(n, dtype=bool)
        instigator_job_id = np.zeros(n, dtype=np.int64)
        instigator_null = np.empty(n, dtype=bool)
        offsets = np.zeros(n + 1, dtype=np.int64)
        flat: List[int] = []
        for i, rec in enumerate(records):
            job_id[i] = rec.job_id
            attempt[i] = rec.attempt
            jobrun_id[i] = rec.jobrun_id
            project_code[i] = projects.intern(rec.project)
            qos[i] = int(rec.qos)
            n_gpus[i] = rec.n_gpus
            n_nodes[i] = rec.n_nodes
            enqueue_time[i] = rec.enqueue_time
            start_time[i] = rec.start_time
            end_time[i] = rec.end_time
            state[i] = _STATE_CODE[rec.state]
            hw_component_code[i] = components.intern(rec.hw_component)
            if rec.hw_incident_id is None:
                hw_incident_null[i] = True
            else:
                hw_incident_null[i] = False
                hw_incident_id[i] = rec.hw_incident_id
            hw_attributed[i] = rec.hw_attributed
            if rec.failing_node_id is None:
                failing_node_null[i] = True
            else:
                failing_node_null[i] = False
                failing_node_id[i] = rec.failing_node_id
            if rec.instigator_job_id is None:
                instigator_null[i] = True
            else:
                instigator_null[i] = False
                instigator_job_id[i] = rec.instigator_job_id
            flat.extend(rec.node_ids)
            offsets[i + 1] = len(flat)
        return cls(
            job_id=job_id,
            attempt=attempt,
            jobrun_id=jobrun_id,
            project_code=project_code,
            qos=qos,
            n_gpus=n_gpus,
            n_nodes=n_nodes,
            enqueue_time=enqueue_time,
            start_time=start_time,
            end_time=end_time,
            state_code=state,
            node_ids_flat=np.asarray(flat, dtype=np.int64),
            node_ids_offsets=offsets,
            hw_component_code=hw_component_code,
            hw_incident_id=hw_incident_id,
            hw_incident_null=hw_incident_null,
            hw_attributed=hw_attributed,
            failing_node_id=failing_node_id,
            failing_node_null=failing_node_null,
            instigator_job_id=instigator_job_id,
            instigator_null=instigator_null,
            project_table=projects.strings,
            hw_component_table=components.strings,
        )

    def node_ids_of(self, i: int) -> Tuple[int, ...]:
        lo, hi = self.node_ids_offsets[i], self.node_ids_offsets[i + 1]
        return tuple(int(v) for v in self.node_ids_flat[lo:hi])

    def record(self, i: int) -> JobAttemptRecord:
        """Reconstruct row ``i`` exactly."""
        return JobAttemptRecord(
            job_id=int(self.job_id[i]),
            attempt=int(self.attempt[i]),
            jobrun_id=int(self.jobrun_id[i]),
            project=self.project_table[int(self.project_code[i])],
            qos=QosTier(int(self.qos[i])),
            n_gpus=int(self.n_gpus[i]),
            n_nodes=int(self.n_nodes[i]),
            enqueue_time=float(self.enqueue_time[i]),
            start_time=float(self.start_time[i]),
            end_time=float(self.end_time[i]),
            state=JOB_STATES[int(self.state_code[i])],
            node_ids=self.node_ids_of(i),
            hw_component=(
                None
                if self.hw_component_code[i] < 0
                else self.hw_component_table[int(self.hw_component_code[i])]
            ),
            hw_incident_id=(
                None if self.hw_incident_null[i] else int(self.hw_incident_id[i])
            ),
            hw_attributed=bool(self.hw_attributed[i]),
            failing_node_id=(
                None if self.failing_node_null[i] else int(self.failing_node_id[i])
            ),
            instigator_job_id=(
                None if self.instigator_null[i] else int(self.instigator_job_id[i])
            ),
        )

    def to_records(self) -> List[JobAttemptRecord]:
        # Bulk-convert each column once (`.tolist()` yields native Python
        # scalars) instead of paying a numpy scalar extraction per field
        # per row; this is the cache-hit hot path.
        n = len(self)
        job_id = self.job_id.tolist()
        attempt = self.attempt.tolist()
        jobrun_id = self.jobrun_id.tolist()
        project_code = self.project_code.tolist()
        qos = [QosTier(q) for q in self.qos.tolist()]
        n_gpus = self.n_gpus.tolist()
        n_nodes = self.n_nodes.tolist()
        enqueue_time = self.enqueue_time.tolist()
        start_time = self.start_time.tolist()
        end_time = self.end_time.tolist()
        states = [JOB_STATES[c] for c in self.state_code.tolist()]
        offsets = self.node_ids_offsets.tolist()
        flat = self.node_ids_flat.tolist()
        hw_component_code = self.hw_component_code.tolist()
        hw_incident_null = self.hw_incident_null.tolist()
        hw_incident_id = self.hw_incident_id.tolist()
        hw_attributed = self.hw_attributed.tolist()
        failing_node_null = self.failing_node_null.tolist()
        failing_node_id = self.failing_node_id.tolist()
        instigator_null = self.instigator_null.tolist()
        instigator_job_id = self.instigator_job_id.tolist()
        comp_table = self.hw_component_table
        return [
            JobAttemptRecord(
                job_id=job_id[i],
                attempt=attempt[i],
                jobrun_id=jobrun_id[i],
                project=self.project_table[project_code[i]],
                qos=qos[i],
                n_gpus=n_gpus[i],
                n_nodes=n_nodes[i],
                enqueue_time=enqueue_time[i],
                start_time=start_time[i],
                end_time=end_time[i],
                state=states[i],
                node_ids=tuple(flat[offsets[i] : offsets[i + 1]]),
                hw_component=(
                    None
                    if hw_component_code[i] < 0
                    else comp_table[hw_component_code[i]]
                ),
                hw_incident_id=(
                    None if hw_incident_null[i] else hw_incident_id[i]
                ),
                hw_attributed=hw_attributed[i],
                failing_node_id=(
                    None if failing_node_null[i] else failing_node_id[i]
                ),
                instigator_job_id=(
                    None if instigator_null[i] else instigator_job_id[i]
                ),
            )
            for i in range(n)
        ]


# ----------------------------------------------------------------------
# node columns
# ----------------------------------------------------------------------
#: NodeTraceRecord integer counter fields, in dataclass order.
NODE_INT_FIELDS: Tuple[str, ...] = (
    "node_id",
    "rack_id",
    "pod_id",
    "gpu_swaps",
    "excl_jobid_count",
    "xid_cnt",
    "tickets",
    "out_count",
    "multi_node_node_fails",
    "single_node_node_fails",
    "single_node_jobs_seen",
)


@dataclass
class NodeColumns:
    """End-of-campaign node counters as int64 arrays."""

    ints: Dict[str, np.ndarray]  # field name -> int64 array
    is_lemon_truth: np.ndarray  # bool
    lemon_component_code: np.ndarray  # int32, -1 = None
    lemon_component_table: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.is_lemon_truth.shape[0])

    @classmethod
    def from_records(cls, records: Sequence) -> "NodeColumns":
        n = len(records)
        ints = {
            name: np.empty(n, dtype=np.int64) for name in NODE_INT_FIELDS
        }
        is_lemon = np.empty(n, dtype=bool)
        lemon_code = np.empty(n, dtype=np.int32)
        table = StringTable()
        for i, rec in enumerate(records):
            for name in NODE_INT_FIELDS:
                ints[name][i] = getattr(rec, name)
            is_lemon[i] = rec.is_lemon_truth
            lemon_code[i] = table.intern(rec.lemon_component)
        return cls(
            ints=ints,
            is_lemon_truth=is_lemon,
            lemon_component_code=lemon_code,
            lemon_component_table=table.strings,
        )

    def row_dict(self, i: int) -> Dict[str, Any]:
        """Row ``i`` in the exact ``asdict(NodeTraceRecord)`` key order."""
        ints = self.ints
        code = int(self.lemon_component_code[i])
        return {
            "node_id": int(ints["node_id"][i]),
            "rack_id": int(ints["rack_id"][i]),
            "pod_id": int(ints["pod_id"][i]),
            "gpu_swaps": int(ints["gpu_swaps"][i]),
            "is_lemon_truth": bool(self.is_lemon_truth[i]),
            "lemon_component": (
                None if code < 0 else self.lemon_component_table[code]
            ),
            "excl_jobid_count": int(ints["excl_jobid_count"][i]),
            "xid_cnt": int(ints["xid_cnt"][i]),
            "tickets": int(ints["tickets"][i]),
            "out_count": int(ints["out_count"][i]),
            "multi_node_node_fails": int(ints["multi_node_node_fails"][i]),
            "single_node_node_fails": int(ints["single_node_node_fails"][i]),
            "single_node_jobs_seen": int(ints["single_node_jobs_seen"][i]),
        }


# ----------------------------------------------------------------------
# event columns
# ----------------------------------------------------------------------
@dataclass
class EventColumns:
    """The event stream: typed time/kind/subject plus exact JSON payloads.

    ``node_id`` / ``component_code`` / ``check_code`` / ``severity`` /
    ``incident_id`` are *extracted accessors* over the payloads — the
    fields the analysis layer filters on — with ``-1`` (codes/severity)
    or the paired null mask (ids) marking absence.  The JSON blob remains
    the round-trip source of truth.
    """

    time: np.ndarray  # float64
    kind_code: np.ndarray  # int32 -> kind_table
    subject_code: np.ndarray  # int32 -> subject_table
    data_blob: np.ndarray  # uint8 (packed JSON strings)
    data_offsets: np.ndarray  # int64
    node_id: np.ndarray  # int64, -1 = absent
    component_code: np.ndarray  # int32 -> component_table, -1 = absent
    check_code: np.ndarray  # int32 -> check_table, -1 = absent
    severity: np.ndarray  # int16, -1 = absent
    incident_id: np.ndarray  # int64, valid where ~incident_null
    incident_null: np.ndarray  # bool
    kind_table: List[str] = field(default_factory=list)
    subject_table: List[str] = field(default_factory=list)
    component_table: List[str] = field(default_factory=list)
    check_table: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.time.shape[0])

    @classmethod
    def from_records(cls, records: Sequence[EventRecord]) -> "EventColumns":
        n = len(records)
        kinds = StringTable()
        subjects = StringTable()
        components = StringTable()
        checks = StringTable()
        time = np.empty(n, dtype=np.float64)
        kind_code = np.empty(n, dtype=np.int32)
        subject_code = np.empty(n, dtype=np.int32)
        node_id = np.full(n, -1, dtype=np.int64)
        component_code = np.full(n, -1, dtype=np.int32)
        check_code = np.full(n, -1, dtype=np.int32)
        severity = np.full(n, -1, dtype=np.int16)
        incident_id = np.zeros(n, dtype=np.int64)
        incident_null = np.ones(n, dtype=bool)
        payloads: List[str] = []
        for i, event in enumerate(records):
            time[i] = event.time
            kind_code[i] = kinds.intern(event.kind)
            subject_code[i] = subjects.intern(event.subject)
            data = event.data
            payloads.append(json.dumps(data, default=_json_default))
            nid = data.get("node_id")
            if isinstance(nid, (int, np.integer)) and not isinstance(nid, bool):
                node_id[i] = int(nid)
            component = data.get("component")
            if isinstance(component, str):
                component_code[i] = components.intern(component)
            check = data.get("check")
            if isinstance(check, str):
                check_code[i] = checks.intern(check)
            sev = data.get("severity")
            if isinstance(sev, (int, np.integer)) and not isinstance(sev, bool):
                severity[i] = int(sev)
            incident = data.get("incident_id")
            if isinstance(incident, (int, np.integer)) and not isinstance(
                incident, bool
            ):
                incident_null[i] = False
                incident_id[i] = int(incident)
        blob, offsets = pack_strings(payloads)
        return cls(
            time=time,
            kind_code=kind_code,
            subject_code=subject_code,
            data_blob=blob,
            data_offsets=offsets,
            node_id=node_id,
            component_code=component_code,
            check_code=check_code,
            severity=severity,
            incident_id=incident_id,
            incident_null=incident_null,
            kind_table=kinds.strings,
            subject_table=subjects.strings,
            component_table=components.strings,
            check_table=checks.strings,
        )

    # -- vectorized filters --------------------------------------------
    def code_of_kind(self, kind: str) -> int:
        """The kind's code, or ``-1`` if the kind never occurs."""
        try:
            return self.kind_table.index(kind)
        except ValueError:
            return -1

    def mask_for_kind(self, kind: str) -> np.ndarray:
        """Boolean mask of events whose kind matches (exact or ``"x."``
        prefix, mirroring ``EventLog.filter``)."""
        if kind.endswith("."):
            codes = [
                i for i, k in enumerate(self.kind_table) if k.startswith(kind)
            ]
            if not codes:
                return np.zeros(len(self), dtype=bool)
            return np.isin(self.kind_code, np.asarray(codes, dtype=np.int32))
        return self.kind_code == self.code_of_kind(kind)

    def times_for_kind(self, kind: str) -> np.ndarray:
        return self.time[self.mask_for_kind(kind)]

    def data_of(self, i: int) -> Dict[str, Any]:
        lo, hi = self.data_offsets[i], self.data_offsets[i + 1]
        return json.loads(self.data_blob[lo:hi].tobytes().decode("utf-8"))

    def record(self, i: int) -> EventRecord:
        return EventRecord(
            time=float(self.time[i]),
            kind=self.kind_table[int(self.kind_code[i])],
            subject=self.subject_table[int(self.subject_code[i])],
            data=self.data_of(i),
        )

    def to_records(self) -> List[EventRecord]:
        # Bulk-decode the payload blob once instead of slicing per event;
        # decoding the whole blob to str first keeps json off its per-call
        # bytes encoding-detection path, and offsets stay valid as string
        # indices because offsets index code points only for ASCII — so
        # non-ASCII payloads fall back to per-slice bytes decoding.
        raw = self.data_blob.tobytes()
        offsets = self.data_offsets.tolist()
        try:
            text = raw.decode("ascii")
        except UnicodeDecodeError:
            text = None
        decode = json.JSONDecoder().decode
        kind_table = self.kind_table
        subject_table = self.subject_table
        time = self.time.tolist()
        kind_code = self.kind_code.tolist()
        subject_code = self.subject_code.tolist()
        if text is not None:
            payloads = [
                decode(text[offsets[i] : offsets[i + 1]])
                for i in range(len(offsets) - 1)
            ]
        else:
            payloads = [
                decode(raw[offsets[i] : offsets[i + 1]].decode("utf-8"))
                for i in range(len(offsets) - 1)
            ]
        return [
            EventRecord(
                time=time[i],
                kind=kind_table[kind_code[i]],
                subject=subject_table[subject_code[i]],
                data=payloads[i],
            )
            for i in range(len(self))
        ]


# ----------------------------------------------------------------------
# the assembled columnar trace
# ----------------------------------------------------------------------
@dataclass
class ColumnarTrace:
    """A complete campaign trace in columnar form.

    Builders: :meth:`from_trace` (live row objects), :meth:`from_dict`
    (the ``Trace.to_dict`` schema), :meth:`load_npz`.  Consumers:
    :meth:`to_trace` / :meth:`to_dict` (exact inverses at digest level)
    and :meth:`save_npz`.
    """

    cluster_name: str
    n_nodes: int
    n_gpus: int
    start: float
    end: float
    jobs: JobColumns
    nodes: NodeColumns
    events: EventColumns
    metadata: Dict[str, Any] = field(default_factory=dict)

    # -- builders -------------------------------------------------------
    @classmethod
    def from_trace(cls, trace) -> "ColumnarTrace":
        return cls(
            cluster_name=trace.cluster_name,
            n_nodes=trace.n_nodes,
            n_gpus=trace.n_gpus,
            start=trace.start,
            end=trace.end,
            jobs=JobColumns.from_records(trace.job_records),
            nodes=NodeColumns.from_records(trace.node_records),
            events=EventColumns.from_records(trace.events),
            metadata=trace.metadata,
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ColumnarTrace":
        """Build from the exact ``Trace.to_dict`` schema."""
        from repro.workload.trace import Trace

        return cls.from_trace(Trace.from_dict(payload))

    # -- consumers ------------------------------------------------------
    def to_trace(self):
        from repro.workload.trace import NodeTraceRecord, Trace

        trace = Trace(
            cluster_name=self.cluster_name,
            n_nodes=self.n_nodes,
            n_gpus=self.n_gpus,
            start=self.start,
            end=self.end,
            job_records=self.jobs.to_records(),
            node_records=[
                NodeTraceRecord(**self.nodes.row_dict(i))
                for i in range(len(self.nodes))
            ],
            events=self.events.to_records(),
            metadata=self.metadata,
        )
        # The trace was born columnar; hand it the blocks so analysis
        # does not rebuild them from the rows we just materialized.
        trace._columns = self
        return trace

    def to_dict(self) -> Dict[str, Any]:
        """The exact ``Trace.to_dict`` schema, built from the columns."""
        return self.to_trace().to_dict()

    # -- persistence ----------------------------------------------------
    def _npz_payload(self) -> Dict[str, np.ndarray]:
        from repro.workload.trace import TRACE_SCHEMA_VERSION

        header = {
            "columnar_schema": COLUMNAR_SCHEMA_VERSION,
            "trace_schema": TRACE_SCHEMA_VERSION,
            "cluster_name": self.cluster_name,
            "n_nodes": self.n_nodes,
            "n_gpus": self.n_gpus,
            "start": self.start,
            "end": self.end,
            "metadata": self.metadata,
            "tables": {
                "job_project": self.jobs.project_table,
                "job_hw_component": self.jobs.hw_component_table,
                "node_lemon_component": self.nodes.lemon_component_table,
                "event_kind": self.events.kind_table,
                "event_subject": self.events.subject_table,
                "event_component": self.events.component_table,
                "event_check": self.events.check_table,
            },
        }
        header_blob = np.frombuffer(
            json.dumps(header, default=_json_default).encode("utf-8"),
            dtype=np.uint8,
        )
        arrays: Dict[str, np.ndarray] = {"header_json": header_blob}
        jobs = self.jobs
        for name in (
            "job_id",
            "attempt",
            "jobrun_id",
            "project_code",
            "qos",
            "n_gpus",
            "n_nodes",
            "enqueue_time",
            "start_time",
            "end_time",
            "state_code",
            "node_ids_flat",
            "node_ids_offsets",
            "hw_component_code",
            "hw_incident_id",
            "hw_incident_null",
            "hw_attributed",
            "failing_node_id",
            "failing_node_null",
            "instigator_job_id",
            "instigator_null",
        ):
            arrays[f"jobs_{name}"] = getattr(jobs, name)
        for name, column in self.nodes.ints.items():
            arrays[f"nodes_{name}"] = column
        arrays["nodes_is_lemon_truth"] = self.nodes.is_lemon_truth
        arrays["nodes_lemon_component_code"] = self.nodes.lemon_component_code
        events = self.events
        for name in (
            "time",
            "kind_code",
            "subject_code",
            "data_blob",
            "data_offsets",
            "node_id",
            "component_code",
            "check_code",
            "severity",
            "incident_id",
            "incident_null",
        ):
            arrays[f"events_{name}"] = getattr(events, name)
        return arrays

    def save_npz(self, file, extra: Optional[Dict[str, Any]] = None) -> None:
        """Write a compressed, pickle-free npz of every column block.

        ``extra`` (JSON-serializable) is stored alongside the blocks under
        the ``extra_json`` key — the trace cache uses it for entry stamps.
        """
        payload = self._npz_payload()
        if extra is not None:
            payload["extra_json"] = np.frombuffer(
                json.dumps(extra, default=_json_default).encode("utf-8"),
                dtype=np.uint8,
            )
        np.savez_compressed(file, **payload)

    @staticmethod
    def read_extra(file) -> Optional[Dict[str, Any]]:
        """The ``extra`` dict stored by :meth:`save_npz`, if any."""
        with np.load(file, allow_pickle=False) as data:
            if "extra_json" not in data:
                return None
            return json.loads(data["extra_json"].tobytes().decode("utf-8"))

    @classmethod
    def load_npz(cls, file) -> "ColumnarTrace":
        """Inverse of :meth:`save_npz`; validates the schema stamps."""
        from repro.workload.trace import TRACE_SCHEMA_VERSION

        with np.load(file, allow_pickle=False) as data:
            header = json.loads(data["header_json"].tobytes().decode("utf-8"))
            if header.get("columnar_schema") != COLUMNAR_SCHEMA_VERSION:
                raise ValueError(
                    f"columnar schema {header.get('columnar_schema')!r} does "
                    f"not match COLUMNAR_SCHEMA_VERSION={COLUMNAR_SCHEMA_VERSION}"
                )
            if header.get("trace_schema") != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"trace schema {header.get('trace_schema')!r} does not "
                    f"match TRACE_SCHEMA_VERSION={TRACE_SCHEMA_VERSION}"
                )
            tables = header["tables"]
            jobs = JobColumns(
                job_id=data["jobs_job_id"],
                attempt=data["jobs_attempt"],
                jobrun_id=data["jobs_jobrun_id"],
                project_code=data["jobs_project_code"],
                qos=data["jobs_qos"],
                n_gpus=data["jobs_n_gpus"],
                n_nodes=data["jobs_n_nodes"],
                enqueue_time=data["jobs_enqueue_time"],
                start_time=data["jobs_start_time"],
                end_time=data["jobs_end_time"],
                state_code=data["jobs_state_code"],
                node_ids_flat=data["jobs_node_ids_flat"],
                node_ids_offsets=data["jobs_node_ids_offsets"],
                hw_component_code=data["jobs_hw_component_code"],
                hw_incident_id=data["jobs_hw_incident_id"],
                hw_incident_null=data["jobs_hw_incident_null"],
                hw_attributed=data["jobs_hw_attributed"],
                failing_node_id=data["jobs_failing_node_id"],
                failing_node_null=data["jobs_failing_node_null"],
                instigator_job_id=data["jobs_instigator_job_id"],
                instigator_null=data["jobs_instigator_null"],
                project_table=list(tables["job_project"]),
                hw_component_table=list(tables["job_hw_component"]),
            )
            nodes = NodeColumns(
                ints={
                    name: data[f"nodes_{name}"] for name in NODE_INT_FIELDS
                },
                is_lemon_truth=data["nodes_is_lemon_truth"],
                lemon_component_code=data["nodes_lemon_component_code"],
                lemon_component_table=list(tables["node_lemon_component"]),
            )
            events = EventColumns(
                time=data["events_time"],
                kind_code=data["events_kind_code"],
                subject_code=data["events_subject_code"],
                data_blob=data["events_data_blob"],
                data_offsets=data["events_data_offsets"],
                node_id=data["events_node_id"],
                component_code=data["events_component_code"],
                check_code=data["events_check_code"],
                severity=data["events_severity"],
                incident_id=data["events_incident_id"],
                incident_null=data["events_incident_null"],
                kind_table=list(tables["event_kind"]),
                subject_table=list(tables["event_subject"]),
                component_table=list(tables["event_component"]),
                check_table=list(tables["event_check"]),
            )
        return cls(
            cluster_name=header["cluster_name"],
            n_nodes=header["n_nodes"],
            n_gpus=header["n_gpus"],
            start=header["start"],
            end=header["end"],
            jobs=jobs,
            nodes=nodes,
            events=events,
            metadata=header.get("metadata", {}),
        )
