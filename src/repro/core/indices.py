"""Incremental sorted-set primitives for cluster/scheduler hot paths.

The scheduler's placement loop needs two things from its node indices:
*deterministic sorted iteration* (allocation order is part of the trace
contract) and *cheap membership churn* (every allocate/release/incident
moves nodes between buckets).  A Python ``set`` gives O(1) churn but
forces a ``sorted()`` per query; a heap gives neither stable iteration
nor deletion.  :class:`SortedIntSet` keeps a sorted int list under
bisect: O(log n) membership, O(n) worst-case insert/remove via
``memmove`` (cheap at bucket sizes), and iteration is already sorted —
the per-allocation ``sorted()`` disappears from the hot loop.
"""

from bisect import bisect_left, insort
from typing import Iterable, Iterator, List, Optional


class SortedIntSet:
    """A set of ints maintained in ascending order.

    Iteration yields ascending ids with no per-call sort.  Mutating while
    iterating is not supported (callers snapshot or defer mutations).
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[int]] = None):
        if items is None:
            self._items: List[int] = []
        else:
            self._items = sorted(set(items))

    def add(self, value: int) -> None:
        items = self._items
        i = bisect_left(items, value)
        if i == len(items) or items[i] != value:
            items.insert(i, value)

    def discard(self, value: int) -> None:
        items = self._items
        i = bisect_left(items, value)
        if i < len(items) and items[i] == value:
            del items[i]

    def __contains__(self, value: int) -> bool:
        items = self._items
        i = bisect_left(items, value)
        return i < len(items) and items[i] == value

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other) -> bool:
        if isinstance(other, SortedIntSet):
            return self._items == other._items
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        if isinstance(other, (list, tuple)):
            return self._items == list(other)
        return NotImplemented

    def as_list(self) -> List[int]:
        """A copy of the contents, ascending."""
        return list(self._items)

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortedIntSet({self._items!r})"
