"""The analytical E[ETTR] model (Eq. 1-2) and its Monte Carlo validator.

Appendix A derives, for a job on N nodes with per-node failure rate r_f,
checkpoint interval dt, restart overhead u0, mean queue wait q, and
productive runtime R:

    E[N_f] ~ N r_f (R + u0) / (1 - N r_f (u0 + dt/2))          (Eq. 4)
    E[S]   ~ ((E[N_f]+1)(q + u0) + E[N_f] dt/2) / R            (Eq. 5)
    E[ETTR] >~ 1 / (1 + E[S])                                   (Eq. 6)

which expands to Eq. 1 and, for long high-priority jobs with negligible
queueing, collapses to Eq. 2: ``1 - N r_f (u0 + dt/2)``.

All rates here are *per node-day*; times are seconds (converted
internally).  The Monte Carlo simulator draws failure times, checkpoint
positions, and queue waits explicitly, and the paper's claim — the closed
form is within ~5% even for large jobs — is asserted in the test suite.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.timeunits import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class ETTRParameters:
    """Inputs to the expected-ETTR model.

    Attributes:
        n_nodes: Nodes in the gang (N_nodes).
        failure_rate_per_node_day: r_f, failures per node-day of runtime.
        checkpoint_interval: dt_cp, seconds between checkpoints.
        restart_overhead: u0, seconds of initialization per (re)start.
        queue_time: q, expected wait before the first start and after every
            interruption, seconds.
        productive_runtime: R, seconds of productive compute required.
    """

    n_nodes: int
    failure_rate_per_node_day: float
    checkpoint_interval: float = 1 * HOUR
    restart_overhead: float = 5 * MINUTE
    queue_time: float = 1 * MINUTE
    productive_runtime: float = 7 * DAY

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.failure_rate_per_node_day < 0:
            raise ValueError("failure rate must be non-negative")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.restart_overhead < 0 or self.queue_time < 0:
            raise ValueError("overheads must be non-negative")
        if self.productive_runtime <= 0:
            raise ValueError("productive_runtime must be positive")

    @property
    def job_failure_rate_per_second(self) -> float:
        """N_nodes * r_f, converted to per-second."""
        return self.n_nodes * self.failure_rate_per_node_day / DAY

    @property
    def mttf_seconds(self) -> float:
        rate = self.job_failure_rate_per_second
        return float("inf") if rate == 0 else 1.0 / rate

    def overhead_per_failure(self) -> float:
        """u0 + dt/2 — expected unproductive seconds per interruption."""
        return self.restart_overhead + self.checkpoint_interval / 2


def expected_failures(params: ETTRParameters) -> float:
    """Eq. 4: expected interruptions over the whole run."""
    lam = params.job_failure_rate_per_second
    denom = 1.0 - lam * params.overhead_per_failure()
    if denom <= 0:
        raise ValueError(
            "model invalid: expected overhead per failure exceeds MTTF "
            f"(N*r_f*(u0 + dt/2) = {lam * params.overhead_per_failure():.3f} >= 1); "
            "checkpoint much more often or reduce the failure rate"
        )
    return lam * (params.productive_runtime + params.restart_overhead) / denom


def expected_slowdown(params: ETTRParameters) -> float:
    """Eq. 5: E[S] = E[(U + Q) / R]."""
    n_f = expected_failures(params)
    q = params.queue_time
    u0 = params.restart_overhead
    dt_half = params.checkpoint_interval / 2
    return ((n_f + 1) * (q + u0) + n_f * dt_half) / params.productive_runtime


def expected_ettr(params: ETTRParameters) -> float:
    """Eq. 1 / Eq. 6-7: the full expected-ETTR approximation."""
    return 1.0 / (1.0 + expected_slowdown(params))


def expected_ettr_simple(params: ETTRParameters) -> float:
    """Eq. 2: the long-run, negligible-queue simplification.

    Clamped at 0 — beyond the model's validity region (overheads per
    failure comparable to MTTF) the training run makes no progress.
    """
    lam = params.job_failure_rate_per_second
    return max(0.0, 1.0 - lam * params.overhead_per_failure())


def monte_carlo_ettr_samples(
    params: ETTRParameters,
    n_trials: int = 200,
    rng: Optional[np.random.Generator] = None,
    exponential_queue: bool = True,
) -> np.ndarray:
    """Simulate job runs explicitly; one ETTR sample per trial.

    Each trial replays one training run: queue, initialize (u0), make
    progress with checkpoints every dt of *productive* time, suffer
    Poisson failures at rate N*r_f, lose progress back to the last
    checkpoint, requeue, repeat until R productive seconds accumulate.
    The full sample lets callers look at run-to-run spread (e.g. the
    unlucky tail of an 8k-GPU week), not just the expectation.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    lam = params.job_failure_rate_per_second
    R = params.productive_runtime
    dt = params.checkpoint_interval
    u0 = params.restart_overhead

    # All trials advance in lock-step, one scheduling attempt per round:
    # each round draws one batched queue wait and one batched failure time
    # for every still-running trial, so the Python-loop cost is O(rounds)
    # instead of O(total attempts).  The estimator is unchanged — only the
    # order in which the generator's draws are assigned to trials differs
    # from the historical one-trial-at-a-time loop.
    wallclock = np.zeros(n_trials)
    progress = np.zeros(n_trials)
    active = np.ones(n_trials, dtype=bool)
    while True:
        act = np.flatnonzero(active)
        if act.size == 0:
            break
        if exponential_queue and params.queue_time > 0:
            wallclock[act] += rng.exponential(params.queue_time, size=act.size)
        else:
            wallclock[act] += params.queue_time
        if lam > 0:
            ttf = rng.exponential(1.0 / lam, size=act.size)
        else:
            ttf = np.full(act.size, np.inf)
        needed = u0 + (R - progress[act])
        finished = ttf >= needed
        done_idx = act[finished]
        wallclock[done_idx] += needed[finished]
        progress[done_idx] = R
        active[done_idx] = False
        cont_idx = act[~finished]
        if cont_idx.size:
            ttf_cont = ttf[~finished]
            wallclock[cont_idx] += ttf_cont
            productive = np.maximum(0.0, ttf_cont - u0)
            # Progress snaps back to the last checkpoint boundary;
            # checkpoints are taken every dt of productive time and
            # survive restarts (global checkpoint clock).
            total = progress[cont_idx] + productive
            progress[cont_idx] = np.minimum(np.floor(total / dt) * dt, R)
    return np.where(wallclock > 0, R / wallclock, 1.0)


def monte_carlo_ettr(
    params: ETTRParameters,
    n_trials: int = 200,
    rng: Optional[np.random.Generator] = None,
    exponential_queue: bool = True,
) -> float:
    """Mean of :func:`monte_carlo_ettr_samples` (the paper's comparison)."""
    return float(
        monte_carlo_ettr_samples(params, n_trials, rng, exponential_queue).mean()
    )


def dedicated_cluster_scenario(
    n_gpus: int,
    failure_rate_per_node_day: float,
    checkpoint_interval: float,
    restart_overhead: float = 5 * MINUTE,
    queue_time: float = 1 * MINUTE,
    productive_runtime: float = 7 * DAY,
    gpus_per_node: int = 8,
) -> ETTRParameters:
    """Convenience for the paper's hypotheticals (e.g. all of RSC-1 as one
    16k-GPU job, or the O(1e5)-GPU future runs of Fig. 10)."""
    n_nodes = max(1, n_gpus // gpus_per_node)
    return ETTRParameters(
        n_nodes=n_nodes,
        failure_rate_per_node_day=failure_rate_per_node_day,
        checkpoint_interval=checkpoint_interval,
        restart_overhead=restart_overhead,
        queue_time=queue_time,
        productive_runtime=productive_runtime,
    )
