"""Failure attribution: joining job terminations to health-check events.

The paper's rule (Section III): "We attribute a failure to a cause if the
cause was detected within the last 10 minutes [of] a failing job's lifetime
(FAILED or NODE_FAIL) or 5 minutes after."  When multiple checks fire, the
most likely cause is chosen by severity and then by a component priority
list (mirroring "we report the most likely cause of failure according to
heuristics ... indicating whether a node should be isolated").

The attributor consumes only *observables* — attempt rows plus the health
event stream — never the simulator's ground truth, so it can be validated
against that ground truth in tests.
"""

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.jobtypes import JobAttemptRecord, JobState
from repro.sim.events import EventRecord
from repro.sim.timeunits import MINUTE
from repro.workload.trace import Trace

#: Tie-break order for "most likely cause" among equal-severity checks;
#: earlier entries win.  Ordered roughly by how actionable/diagnostic the
#: paper treats each domain.
DEFAULT_COMPONENT_PRIORITY: Tuple[str, ...] = (
    "ib_link",
    "filesystem_mount",
    "gpu_memory",
    "pcie",
    "gpu",
    "nvlink",
    "host_memory",
    "eth_link",
    "nic",
    "system_services",
    "cpu",
    "psu",
    "bios",
    "eud",
    "optics",
)


@dataclass(frozen=True)
class AttributionPolicy:
    """The attribution window and candidate job states."""

    lookback: float = 10 * MINUTE
    lookahead: float = 5 * MINUTE
    candidate_states: Tuple[JobState, ...] = (
        JobState.FAILED,
        JobState.NODE_FAIL,
        JobState.REQUEUED,
    )
    component_priority: Tuple[str, ...] = DEFAULT_COMPONENT_PRIORITY

    def __post_init__(self):
        if self.lookback < 0 or self.lookahead < 0:
            raise ValueError("attribution window bounds must be non-negative")


@dataclass(frozen=True)
class AttributedFailure:
    """One job termination with its diagnosed cause (or lack thereof)."""

    record: JobAttemptRecord
    cause_component: Optional[str]
    checks: Tuple[str, ...]
    components_seen: Tuple[str, ...]
    attributed: bool

    @property
    def multi_attributed(self) -> bool:
        """Multiple distinct components implicated (co-occurrence)."""
        return len(set(self.components_seen)) > 1


class FailureAttributor:
    """Attributes job failures from a trace's health event stream.

    Two engines, same answers:

    * ``use_columns=True`` (default) indexes the ``health.check_failed``
      events from the trace's :class:`~repro.core.columns.EventColumns`
      — one vectorized pass over typed arrays instead of a Python loop
      over every event — and memoizes :meth:`attribute_all`, which the
      aggregate views each re-used to recompute from scratch.
    * ``use_columns=False`` keeps the original rowwise build and rescan
      semantics intact as the benchmark reference path.

    The candidate ranking (severity, then component priority, with
    first-of-min tie-breaking over windows concatenated in ``node_ids``
    order) is replicated exactly, so both engines return identical
    :class:`AttributedFailure` lists.
    """

    def __init__(
        self,
        trace: Trace,
        policy: Optional[AttributionPolicy] = None,
        use_columns: bool = True,
    ):
        self.trace = trace
        self.policy = policy if policy is not None else AttributionPolicy()
        self._use_columns = use_columns
        self._memo_all: Optional[List[AttributedFailure]] = None
        if use_columns:
            self._build_columnar_index()
        else:
            self._build_rowwise_index()

    def _build_rowwise_index(self) -> None:
        self._events_by_node: Dict[int, List[Tuple[float, EventRecord]]] = {}
        self._times_by_node: Dict[int, List[float]] = {}
        for event in self.trace.events:
            if event.kind != "health.check_failed":
                continue
            node_id = event.data.get("node_id")
            if node_id is None:
                continue
            self._events_by_node.setdefault(node_id, []).append((event.time, event))
        for node_id, pairs in self._events_by_node.items():
            pairs.sort(key=lambda p: p[0])
            self._times_by_node[node_id] = [t for t, _e in pairs]

    def _build_columnar_index(self) -> None:
        """Group health.check_failed events by node from the event columns.

        ``np.lexsort((time, node))`` is stable, so within a node events
        keep stream order for equal times — the same order the rowwise
        build's stable per-node time sort produces.
        """
        ev = self.trace.columns.events
        idx = np.flatnonzero(
            ev.mask_for_kind("health.check_failed") & (ev.node_id >= 0)
        )
        nodes = ev.node_id[idx]
        times = ev.time[idx]
        order = np.lexsort((times, nodes))
        nodes = nodes[order]
        self._ev_times = times[order]
        self._ev_comp = ev.component_code[idx][order]
        self._ev_check = ev.check_code[idx][order]
        severity = ev.severity[idx][order].astype(np.int64)
        # data.get("severity", 0): an absent severity (-1 sentinel) ranks as 0.
        severity = np.where(severity < 0, 0, severity)
        # Per-event rank key packing (-severity, priority): lower is better,
        # and np.argmin returns the first minimum — matching Python min().
        priority = self.policy.component_priority
        pri_by_code = np.empty(len(ev.component_table) + 1, dtype=np.int64)
        pri_by_code[0] = len(priority)  # slot for code -1 (component absent)
        for code, name in enumerate(ev.component_table):
            try:
                pri_by_code[code + 1] = priority.index(name)
            except ValueError:
                pri_by_code[code + 1] = len(priority)
        self._rank_key = -severity * (len(priority) + 1) + pri_by_code[
            self._ev_comp + 1
        ]
        # node id -> contiguous [start, stop) range in the sorted arrays.
        self._node_ranges: Dict[int, Tuple[int, int]] = {}
        if len(nodes):
            starts = np.flatnonzero(np.diff(nodes)) + 1
            bounds = np.concatenate(([0], starts, [len(nodes)]))
            for i, node_id in enumerate(nodes[bounds[:-1]]):
                self._node_ranges[int(node_id)] = (
                    int(bounds[i]),
                    int(bounds[i + 1]),
                )
        self._component_table = ev.component_table
        self._check_table = ev.check_table

    # ------------------------------------------------------------------
    def _window_events(
        self, node_id: int, end_time: float
    ) -> List[EventRecord]:
        """Health events on a node within the attribution window of a job end."""
        times = self._times_by_node.get(node_id)
        if not times:
            return []
        lo = end_time - self.policy.lookback
        hi = end_time + self.policy.lookahead
        pairs = self._events_by_node[node_id]
        start = bisect.bisect_left(times, lo)
        stop = bisect.bisect_right(times, hi)
        return [pairs[i][1] for i in range(start, stop)]

    def _window_range(self, node_id: int, end_time: float) -> Tuple[int, int]:
        """Columnar twin of :meth:`_window_events`: an index range."""
        rng = self._node_ranges.get(node_id)
        if rng is None:
            return (0, 0)
        lo, hi = rng
        t = self._ev_times
        start = lo + int(
            np.searchsorted(t[lo:hi], end_time - self.policy.lookback, "left")
        )
        stop = lo + int(
            np.searchsorted(t[lo:hi], end_time + self.policy.lookahead, "right")
        )
        return (start, stop)

    def attribute_record(self, record: JobAttemptRecord) -> AttributedFailure:
        """Diagnose one failing attempt from observable health events."""
        if self._use_columns:
            return self._attribute_record_columnar(record)
        events: List[EventRecord] = []
        for node_id in record.node_ids:
            events.extend(self._window_events(node_id, record.end_time))
        if not events:
            return AttributedFailure(
                record=record,
                cause_component=None,
                checks=(),
                components_seen=(),
                attributed=False,
            )
        # Most likely cause: highest severity first, then the priority list.
        def rank(event: EventRecord) -> Tuple[int, int]:
            severity = int(event.data.get("severity", 0))
            component = event.data.get("component", "")
            try:
                pri = self.policy.component_priority.index(component)
            except ValueError:
                pri = len(self.policy.component_priority)
            return (-severity, pri)

        best = min(events, key=rank)
        return AttributedFailure(
            record=record,
            cause_component=best.data.get("component"),
            checks=tuple(sorted({e.data.get("check", "?") for e in events})),
            components_seen=tuple(
                sorted({e.data.get("component", "?") for e in events})
            ),
            attributed=True,
        )

    def _attribute_record_columnar(
        self, record: JobAttemptRecord
    ) -> AttributedFailure:
        segments = []
        for node_id in record.node_ids:
            start, stop = self._window_range(node_id, record.end_time)
            if stop > start:
                segments.append(np.arange(start, stop))
        if not segments:
            return AttributedFailure(
                record=record,
                cause_component=None,
                checks=(),
                components_seen=(),
                attributed=False,
            )
        # Candidates concatenate in node_ids order (then time order within a
        # node), so argmin's first-of-min matches the rowwise min() exactly.
        window = segments[0] if len(segments) == 1 else np.concatenate(segments)
        best = int(window[np.argmin(self._rank_key[window])])
        best_comp = int(self._ev_comp[best])
        comp_table = self._component_table
        check_table = self._check_table
        return AttributedFailure(
            record=record,
            cause_component=None if best_comp < 0 else comp_table[best_comp],
            checks=tuple(
                sorted(
                    "?" if code < 0 else check_table[code]
                    for code in np.unique(self._ev_check[window])
                )
            ),
            components_seen=tuple(
                sorted(
                    "?" if code < 0 else comp_table[code]
                    for code in np.unique(self._ev_comp[window])
                )
            ),
            attributed=True,
        )

    def attribute_all(self) -> List[AttributedFailure]:
        """Attribute every candidate-state attempt in the trace.

        Memoized on the columnar engine: the aggregate views below all
        re-enter here, and the attribution join is by far their dominant
        cost.  The rowwise engine recomputes every call, preserving the
        pre-columnar baseline for benchmarks.
        """
        if self._use_columns and self._memo_all is not None:
            return self._memo_all
        out = []
        candidates = self.policy.candidate_states
        for record in self.trace.job_records:
            if record.state in candidates:
                out.append(self.attribute_record(record))
        if self._use_columns:
            self._memo_all = out
        return out

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def failure_rate_by_component(
        self, per_gpu_hours: float = 1.0
    ) -> Dict[str, float]:
        """Fig. 4: attributed failures per GPU-hour, by component.

        The denominator is the trace's total scheduled GPU-hours; the
        ``unattributed_node_fail`` bucket counts NODE_FAIL terminations with
        no health event in the window (c.f. the paper's "NODE_FAIL without
        associated health checks").
        """
        total_gpu_hours = self.trace.total_gpu_seconds() / 3600.0
        if total_gpu_hours <= 0:
            raise ValueError("trace has no scheduled GPU time")
        counts: Dict[str, int] = {}
        for att in self.attribute_all():
            if att.attributed:
                key = att.cause_component or "unknown"
            elif att.record.state is JobState.NODE_FAIL:
                key = "unattributed_node_fail"
            else:
                continue  # plain user FAILED with no health event
            counts[key] = counts.get(key, 0) + 1
        return {
            comp: count / total_gpu_hours * per_gpu_hours
            for comp, count in sorted(counts.items(), key=lambda kv: -kv[1])
        }

    def check_co_occurrence_fraction(self, check_a: str, check_b: str) -> float:
        """Of attributed failures where ``check_a`` fired, the fraction
        where ``check_b`` fired in the same window — Observation 5's "43%
        of PCI errors co-occur with XID 79" style of number."""
        with_a = 0
        with_both = 0
        for att in self.attribute_all():
            if not att.attributed:
                continue
            checks = set(att.checks)
            if check_a in checks:
                with_a += 1
                if check_b in checks:
                    with_both += 1
        return 0.0 if with_a == 0 else with_both / with_a

    def co_occurrence_matrix(self) -> Dict[Tuple[str, str], float]:
        """Observation 5's full pairwise view.

        Entry ``(a, b)`` is the fraction of attributed failures where check
        ``a`` fired that also saw check ``b`` (rows don't sum to 1; the
        diagonal is 1 by construction).  Pairs with no ``a`` firings are
        omitted.
        """
        firings: Dict[str, int] = {}
        pair_counts: Dict[Tuple[str, str], int] = {}
        for att in self.attribute_all():
            if not att.attributed:
                continue
            checks = sorted(set(att.checks))
            for a in checks:
                firings[a] = firings.get(a, 0) + 1
                for b in checks:
                    pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
        return {
            (a, b): count / firings[a]
            for (a, b), count in sorted(pair_counts.items())
        }

    def hw_failure_records(self) -> List[JobAttemptRecord]:
        """Records counted as infrastructure failures by the paper's rule:
        NODE_FAIL, plus candidate-state records with an attributed check."""
        out = []
        for att in self.attribute_all():
            if att.record.state is JobState.NODE_FAIL or att.attributed:
                out.append(att.record)
        return out
