"""Failure attribution: joining job terminations to health-check events.

The paper's rule (Section III): "We attribute a failure to a cause if the
cause was detected within the last 10 minutes [of] a failing job's lifetime
(FAILED or NODE_FAIL) or 5 minutes after."  When multiple checks fire, the
most likely cause is chosen by severity and then by a component priority
list (mirroring "we report the most likely cause of failure according to
heuristics ... indicating whether a node should be isolated").

The attributor consumes only *observables* — attempt rows plus the health
event stream — never the simulator's ground truth, so it can be validated
against that ground truth in tests.
"""

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jobtypes import JobAttemptRecord, JobState
from repro.sim.events import EventRecord
from repro.sim.timeunits import MINUTE
from repro.workload.trace import Trace

#: Tie-break order for "most likely cause" among equal-severity checks;
#: earlier entries win.  Ordered roughly by how actionable/diagnostic the
#: paper treats each domain.
DEFAULT_COMPONENT_PRIORITY: Tuple[str, ...] = (
    "ib_link",
    "filesystem_mount",
    "gpu_memory",
    "pcie",
    "gpu",
    "nvlink",
    "host_memory",
    "eth_link",
    "nic",
    "system_services",
    "cpu",
    "psu",
    "bios",
    "eud",
    "optics",
)


@dataclass(frozen=True)
class AttributionPolicy:
    """The attribution window and candidate job states."""

    lookback: float = 10 * MINUTE
    lookahead: float = 5 * MINUTE
    candidate_states: Tuple[JobState, ...] = (
        JobState.FAILED,
        JobState.NODE_FAIL,
        JobState.REQUEUED,
    )
    component_priority: Tuple[str, ...] = DEFAULT_COMPONENT_PRIORITY

    def __post_init__(self):
        if self.lookback < 0 or self.lookahead < 0:
            raise ValueError("attribution window bounds must be non-negative")


@dataclass(frozen=True)
class AttributedFailure:
    """One job termination with its diagnosed cause (or lack thereof)."""

    record: JobAttemptRecord
    cause_component: Optional[str]
    checks: Tuple[str, ...]
    components_seen: Tuple[str, ...]
    attributed: bool

    @property
    def multi_attributed(self) -> bool:
        """Multiple distinct components implicated (co-occurrence)."""
        return len(set(self.components_seen)) > 1


class FailureAttributor:
    """Attributes job failures from a trace's health event stream."""

    def __init__(self, trace: Trace, policy: Optional[AttributionPolicy] = None):
        self.trace = trace
        self.policy = policy if policy is not None else AttributionPolicy()
        self._events_by_node: Dict[int, List[Tuple[float, EventRecord]]] = {}
        self._times_by_node: Dict[int, List[float]] = {}
        for event in trace.events:
            if event.kind != "health.check_failed":
                continue
            node_id = event.data.get("node_id")
            if node_id is None:
                continue
            self._events_by_node.setdefault(node_id, []).append((event.time, event))
        for node_id, pairs in self._events_by_node.items():
            pairs.sort(key=lambda p: p[0])
            self._times_by_node[node_id] = [t for t, _e in pairs]

    # ------------------------------------------------------------------
    def _window_events(
        self, node_id: int, end_time: float
    ) -> List[EventRecord]:
        """Health events on a node within the attribution window of a job end."""
        times = self._times_by_node.get(node_id)
        if not times:
            return []
        lo = end_time - self.policy.lookback
        hi = end_time + self.policy.lookahead
        pairs = self._events_by_node[node_id]
        start = bisect.bisect_left(times, lo)
        stop = bisect.bisect_right(times, hi)
        return [pairs[i][1] for i in range(start, stop)]

    def attribute_record(self, record: JobAttemptRecord) -> AttributedFailure:
        """Diagnose one failing attempt from observable health events."""
        events: List[EventRecord] = []
        for node_id in record.node_ids:
            events.extend(self._window_events(node_id, record.end_time))
        if not events:
            return AttributedFailure(
                record=record,
                cause_component=None,
                checks=(),
                components_seen=(),
                attributed=False,
            )
        # Most likely cause: highest severity first, then the priority list.
        def rank(event: EventRecord) -> Tuple[int, int]:
            severity = int(event.data.get("severity", 0))
            component = event.data.get("component", "")
            try:
                pri = self.policy.component_priority.index(component)
            except ValueError:
                pri = len(self.policy.component_priority)
            return (-severity, pri)

        best = min(events, key=rank)
        return AttributedFailure(
            record=record,
            cause_component=best.data.get("component"),
            checks=tuple(sorted({e.data.get("check", "?") for e in events})),
            components_seen=tuple(
                sorted({e.data.get("component", "?") for e in events})
            ),
            attributed=True,
        )

    def attribute_all(self) -> List[AttributedFailure]:
        """Attribute every candidate-state attempt in the trace."""
        out = []
        for record in self.trace.job_records:
            if record.state in self.policy.candidate_states:
                out.append(self.attribute_record(record))
        return out

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def failure_rate_by_component(
        self, per_gpu_hours: float = 1.0
    ) -> Dict[str, float]:
        """Fig. 4: attributed failures per GPU-hour, by component.

        The denominator is the trace's total scheduled GPU-hours; the
        ``unattributed_node_fail`` bucket counts NODE_FAIL terminations with
        no health event in the window (c.f. the paper's "NODE_FAIL without
        associated health checks").
        """
        total_gpu_hours = self.trace.total_gpu_seconds() / 3600.0
        if total_gpu_hours <= 0:
            raise ValueError("trace has no scheduled GPU time")
        counts: Dict[str, int] = {}
        for att in self.attribute_all():
            if att.attributed:
                key = att.cause_component or "unknown"
            elif att.record.state is JobState.NODE_FAIL:
                key = "unattributed_node_fail"
            else:
                continue  # plain user FAILED with no health event
            counts[key] = counts.get(key, 0) + 1
        return {
            comp: count / total_gpu_hours * per_gpu_hours
            for comp, count in sorted(counts.items(), key=lambda kv: -kv[1])
        }

    def check_co_occurrence_fraction(self, check_a: str, check_b: str) -> float:
        """Of attributed failures where ``check_a`` fired, the fraction
        where ``check_b`` fired in the same window — Observation 5's "43%
        of PCI errors co-occur with XID 79" style of number."""
        with_a = 0
        with_both = 0
        for att in self.attribute_all():
            if not att.attributed:
                continue
            checks = set(att.checks)
            if check_a in checks:
                with_a += 1
                if check_b in checks:
                    with_both += 1
        return 0.0 if with_a == 0 else with_both / with_a

    def co_occurrence_matrix(self) -> Dict[Tuple[str, str], float]:
        """Observation 5's full pairwise view.

        Entry ``(a, b)`` is the fraction of attributed failures where check
        ``a`` fired that also saw check ``b`` (rows don't sum to 1; the
        diagonal is 1 by construction).  Pairs with no ``a`` firings are
        omitted.
        """
        firings: Dict[str, int] = {}
        pair_counts: Dict[Tuple[str, str], int] = {}
        for att in self.attribute_all():
            if not att.attributed:
                continue
            checks = sorted(set(att.checks))
            for a in checks:
                firings[a] = firings.get(a, 0) + 1
                for b in checks:
                    pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
        return {
            (a, b): count / firings[a]
            for (a, b), count in sorted(pair_counts.items())
        }

    def hw_failure_records(self) -> List[JobAttemptRecord]:
        """Records counted as infrastructure failures by the paper's rule:
        NODE_FAIL, plus candidate-state records with an attributed check."""
        out = []
        for att in self.attribute_all():
            if att.record.state is JobState.NODE_FAIL or att.attributed:
                out.append(att.record)
        return out
