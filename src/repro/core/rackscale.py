"""Rack-scale repair units and spare capacity (Section V's GB200 outlook).

"Future GPU systems, such as the NVIDIA GB200, will change the unit of
repair from a server to a rack, creating incentives to avoiding downtime
by coping with failure."  This module quantifies that shift:

* **Capacity cost of repair** — when one tray's failure benches a whole
  rack, the expected fraction of the fleet sitting in repair scales with
  the repair-unit size.  At RSC-like failure rates and multi-day repairs
  this alone makes rack-unit repair untenable without new strategies.
* **Hot spares** — the "coping" alternative: keep ``s`` spare trays per
  rack and remap failed trays instead of draining.  A job is interrupted
  only when a failure lands in a rack whose spares are already exhausted,
  which thins the interruption process by the probability that the rack
  already has more than ``s`` trays pending repair.

All rates are failures per node-day (a "node" is an 8-GPU tray-equivalent
throughout the repo); repair times in days.
"""

import math
from dataclasses import dataclass
from typing import Optional

from scipy import stats as sps

from repro.core.ettr import ETTRParameters, expected_ettr_simple


@dataclass(frozen=True)
class RepairUnitSpec:
    """How much capacity one failure takes to the repair bench."""

    name: str
    nodes_per_unit: int
    repair_days: float

    def __post_init__(self):
        if self.nodes_per_unit <= 0:
            raise ValueError("nodes_per_unit must be positive")
        if self.repair_days <= 0:
            raise ValueError("repair_days must be positive")


#: The classic DGX-era unit: the failed server goes away, nothing else.
SERVER_UNIT = RepairUnitSpec(name="server", nodes_per_unit=1, repair_days=2.0)

#: GB200-NVL72-era: 72 GPUs = 9 tray-equivalents per rack; pulling the
#: rack for service benches all of them, and rack service is slower.
RACK_UNIT = RepairUnitSpec(name="rack", nodes_per_unit=9, repair_days=3.0)


def capacity_in_repair_fraction(
    failure_rate_per_node_day: float,
    unit: RepairUnitSpec,
) -> float:
    """Steady-state fraction of fleet capacity benched for repair.

    Each node fails at rate r_f; every failure removes ``nodes_per_unit``
    node-equivalents for ``repair_days``.  By Little's law the benched
    fraction is ``r_f * nodes_per_unit * repair_days`` (valid while << 1).
    """
    if failure_rate_per_node_day < 0:
        raise ValueError("failure rate must be non-negative")
    fraction = (
        failure_rate_per_node_day * unit.nodes_per_unit * unit.repair_days
    )
    return min(1.0, fraction)


def spare_exhaustion_probability(
    failure_rate_per_node_day: float,
    nodes_per_rack: int,
    spares_per_rack: int,
    repair_days: float,
) -> float:
    """P(a failing rack has no spare left) under Poisson repair backlog.

    Pending failed trays in one rack follow a Poisson with mean
    ``rack_rate * repair_days``; a *new* failure interrupts the resident
    job only if ``spares_per_rack`` trays are already down.
    """
    if nodes_per_rack <= 0:
        raise ValueError("nodes_per_rack must be positive")
    if spares_per_rack < 0:
        raise ValueError("spares_per_rack must be non-negative")
    if repair_days <= 0:
        raise ValueError("repair_days must be positive")
    backlog_mean = failure_rate_per_node_day * nodes_per_rack * repair_days
    # P(Poisson(mean) >= spares)
    if spares_per_rack == 0:
        return 1.0
    return float(1.0 - sps.poisson.cdf(spares_per_rack - 1, backlog_mean))


def effective_interruption_rate(
    failure_rate_per_node_day: float,
    nodes_per_rack: int,
    spares_per_rack: int,
    repair_days: float,
) -> float:
    """Job-visible failure rate per node-day once spares absorb the rest."""
    p_exhausted = spare_exhaustion_probability(
        failure_rate_per_node_day, nodes_per_rack, spares_per_rack, repair_days
    )
    return failure_rate_per_node_day * p_exhausted


def rack_scale_mttf_hours(
    n_gpus: int,
    failure_rate_per_node_day: float,
    spares_per_rack: int = 0,
    nodes_per_rack: int = 9,
    repair_days: float = 3.0,
    gpus_per_node: int = 8,
) -> float:
    """Job MTTF (hours) on rack-unit hardware with hot spares.

    With zero spares this equals the paper's 1/(N r_f); each spare thins
    interruptions by the backlog-exhaustion probability.
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    rate = effective_interruption_rate(
        failure_rate_per_node_day, nodes_per_rack, spares_per_rack, repair_days
    )
    if rate == 0:
        return float("inf")
    n_nodes = max(1, math.ceil(n_gpus / gpus_per_node))
    return (1.0 / (n_nodes * rate)) * 24.0


def ettr_with_spares(
    params: ETTRParameters,
    spares_per_rack: int,
    nodes_per_rack: int = 9,
    repair_days: float = 3.0,
) -> float:
    """Eq. 2's E[ETTR] with the spare-thinned interruption rate."""
    from dataclasses import replace

    rate = effective_interruption_rate(
        params.failure_rate_per_node_day,
        nodes_per_rack,
        spares_per_rack,
        repair_days,
    )
    return expected_ettr_simple(
        replace(params, failure_rate_per_node_day=rate)
    )
