"""Lemon-node detection (Section IV-A, Fig. 11, Table II).

Lemon nodes cause repeated job failures but evade one-shot health checks.
The paper's detector consumes seven per-node signals accumulated over a
multi-week window and applies manually tuned thresholds; flagged nodes are
quarantined and repaired.  Deployment removed 40 nodes (24 on RSC-1, 16 on
RSC-2, ~1.2%/1.7% of each fleet) at >85% accuracy and cut 512+-GPU job
failure rates from 14% to 4%.

We implement the same shape: per-signal thresholds — either fixed or set
from the fleet CDF at a percentile (the Fig. 11 methodology) — combined by
a minimum-signals vote.  The detector runs both offline (over a trace's
node records) and live (over scheduler node objects, for the mitigation
campaigns that reproduce the completion-rate improvement).
"""

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.workload.trace import NodeTraceRecord

#: The paper's seven detection signals, by name.
LEMON_SIGNALS: Tuple[str, ...] = (
    "excl_jobid_count",
    "xid_cnt",
    "tickets",
    "out_count",
    "multi_node_node_fails",
    "single_node_node_fails",
    "single_node_node_failure_rate",
)

#: Signals the paper found most predictive; excl_jobid_count notably did
#: NOT correlate with node failures ("a large number of nodes were excluded
#: by at least one job"), so the default policy ignores it.
DEFAULT_SIGNAL_THRESHOLDS: Dict[str, float] = {
    "xid_cnt": 4,
    "tickets": 4,
    "out_count": 4,
    "multi_node_node_fails": 4,
    "single_node_node_fails": 2,
    "single_node_node_failure_rate": 0.02,
}


@dataclass(frozen=True)
class LemonPolicy:
    """Thresholded vote over the detection signals.

    A node is flagged when at least ``min_signals`` of its signals meet or
    exceed their thresholds.
    """

    thresholds: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SIGNAL_THRESHOLDS)
    )
    min_signals: int = 2

    def __post_init__(self):
        unknown = set(self.thresholds) - set(LEMON_SIGNALS)
        if unknown:
            raise ValueError(f"unknown lemon signals: {sorted(unknown)}")
        if not self.thresholds:
            raise ValueError("policy needs at least one signal threshold")
        if not 1 <= self.min_signals <= len(self.thresholds):
            raise ValueError(
                f"min_signals must be in [1, {len(self.thresholds)}], "
                f"got {self.min_signals}"
            )

    @classmethod
    def from_cdf(
        cls,
        node_records: Sequence[NodeTraceRecord],
        percentile: float = 97.0,
        signals: Sequence[str] = tuple(DEFAULT_SIGNAL_THRESHOLDS),
        min_signals: int = 2,
    ) -> "LemonPolicy":
        """Set each threshold at a fleet-CDF percentile (Fig. 11's method).

        Most signals are highly sparse — the bulk of nodes sit at zero — so
        thresholds are additionally floored at 1 occurrence to avoid
        flagging the whole fleet when a percentile lands on zero.
        """
        if not node_records:
            raise ValueError("need node records to fit thresholds")
        if not 0 < percentile < 100:
            raise ValueError("percentile must be in (0, 100)")
        thresholds = {}
        for name in signals:
            values = np.asarray([rec.signal(name) for rec in node_records])
            cut = float(np.percentile(values, percentile))
            floor = 0.01 if name == "single_node_node_failure_rate" else 1.0
            thresholds[name] = max(cut, floor)
        return cls(thresholds=thresholds, min_signals=min_signals)

    def votes(self, signal_of) -> int:
        """Count thresholds met; ``signal_of(name) -> value``."""
        return sum(
            1 for name, cut in self.thresholds.items() if signal_of(name) >= cut
        )

    def is_lemon(self, signal_of) -> bool:
        return self.votes(signal_of) >= self.min_signals


@dataclass(frozen=True)
class LemonReport:
    """Detector evaluation against ground truth."""

    flagged_node_ids: Tuple[int, ...]
    true_lemon_ids: Tuple[int, ...]
    n_nodes: int

    @property
    def true_positives(self) -> int:
        return len(set(self.flagged_node_ids) & set(self.true_lemon_ids))

    @property
    def false_positives(self) -> int:
        return len(set(self.flagged_node_ids) - set(self.true_lemon_ids))

    @property
    def false_negatives(self) -> int:
        return len(set(self.true_lemon_ids) - set(self.flagged_node_ids))

    @property
    def precision(self) -> float:
        """The paper's "accuracy of predicted lemon nodes" (>85%)."""
        flagged = len(self.flagged_node_ids)
        return 0.0 if flagged == 0 else self.true_positives / flagged

    @property
    def recall(self) -> float:
        truth = len(self.true_lemon_ids)
        return 0.0 if truth == 0 else self.true_positives / truth

    @property
    def flagged_fraction(self) -> float:
        return len(self.flagged_node_ids) / self.n_nodes


class LemonDetector:
    """Applies a :class:`LemonPolicy` to node records or live nodes."""

    def __init__(self, policy: Optional[LemonPolicy] = None):
        self.policy = policy if policy is not None else LemonPolicy()

    def detect(self, node_records: Sequence[NodeTraceRecord]) -> List[NodeTraceRecord]:
        """Offline: flag trace node records."""
        return [
            rec for rec in node_records if self.policy.is_lemon(rec.signal)
        ]

    def detect_live(self, nodes: Iterable) -> List:
        """Live: flag scheduler/cluster node objects by their counters."""
        flagged = []
        for node in nodes:
            counters = node.counters.as_dict()
            if self.policy.is_lemon(lambda name: counters[name]):
                flagged.append(node)
        return flagged

    def evaluate(self, node_records: Sequence[NodeTraceRecord]) -> LemonReport:
        """Compare flags against the trace's ground-truth lemons."""
        flagged = self.detect(node_records)
        return LemonReport(
            flagged_node_ids=tuple(sorted(rec.node_id for rec in flagged)),
            true_lemon_ids=tuple(
                sorted(rec.node_id for rec in node_records if rec.is_lemon_truth)
            ),
            n_nodes=len(node_records),
        )


def root_cause_table(
    node_records: Sequence[NodeTraceRecord],
    flagged_ids: Optional[Iterable[int]] = None,
) -> Dict[str, float]:
    """Table II: fraction of lemon root causes among (flagged) lemons.

    With ``flagged_ids`` of ``None``, tabulates all ground-truth lemons.
    """
    if flagged_ids is not None:
        flagged = set(flagged_ids)
        cohort = [
            r
            for r in node_records
            if r.node_id in flagged and r.lemon_component is not None
        ]
    else:
        cohort = [r for r in node_records if r.lemon_component is not None]
    if not cohort:
        raise ValueError("no lemon nodes with known root causes in cohort")
    counts: Dict[str, int] = {}
    for rec in cohort:
        counts[rec.lemon_component] = counts.get(rec.lemon_component, 0) + 1
    total = sum(counts.values())
    return {
        comp: count / total
        for comp, count in sorted(counts.items(), key=lambda kv: -kv[1])
    }


def large_job_failure_rate(
    records,
    min_gpus: int = 512,
) -> float:
    """Fraction of large-job attempts ending in a hardware interruption.

    The mitigation claim: lemon quarantine cut this from 14% to 4% for
    512+-GPU jobs.
    """
    large = [r for r in records if r.n_gpus >= min_gpus]
    if not large:
        raise ValueError(f"no attempts with >= {min_gpus} GPUs in records")
    failing = sum(1 for r in large if r.is_hw_interruption)
    return failing / len(large)
