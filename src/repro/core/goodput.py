"""Lost goodput: first-order failures plus second-order preemption cascades.

Fig. 8's accounting: assuming hourly checkpoints (so a failure wastes on
average half an hour of work), the goodput lost to one terminated attempt
is ``min(runtime, 30 minutes) * n_gpus``.  The loss is charged to

* the failing job itself (NODE_FAIL or hardware-attributed FAILED), and
* every job **preempted because of** a failing job's requeue — the
  second-order cascade, reconstructed here through the PREEMPTED rows'
  ``instigator_job_id`` edge (the paper: ~16% of total lost goodput).

Also included: crash-loop detection — the pathological requeue chains the
paper illustrates with a 1024-GPU job that NODE_FAILed and requeued 35
times, preempting 548 jobs.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from repro.jobtypes import JobAttemptRecord, JobState
from repro.core.mttf import size_bucket
from repro.sim.timeunits import HOUR, MINUTE

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.columns import JobColumns

#: Expected wasted work per interruption under hourly checkpointing.
DEFAULT_LOST_WORK_CAP = 30 * MINUTE


@dataclass(frozen=True)
class GoodputLoss:
    """Lost GPU-time for one job-size bucket (one bar of Fig. 8)."""

    gpus: int
    direct_gpu_hours: float
    second_order_gpu_hours: float
    n_direct: int
    n_second_order: int

    @property
    def total_gpu_hours(self) -> float:
        return self.direct_gpu_hours + self.second_order_gpu_hours


def _attempt_loss(record: JobAttemptRecord, cap: float) -> float:
    return min(record.runtime, cap) * record.n_gpus


def _hw_instigator_jobs(records: List[JobAttemptRecord]) -> Set[int]:
    """Job ids that suffered at least one hardware interruption."""
    return {r.job_id for r in records if r.is_hw_interruption}


def lost_goodput_by_size(
    records: Iterable[JobAttemptRecord],
    lost_work_cap: float = DEFAULT_LOST_WORK_CAP,
    columns: Optional["JobColumns"] = None,
) -> List[GoodputLoss]:
    """Fig. 8: lost goodput by instigating-failure job size.

    Direct losses bucket by the failing job's size.  Second-order losses —
    preemptions whose instigator had a hardware interruption — are charged
    to the *preempted* job's own size bucket on the x-axis, matching the
    figure's per-size stacking of total cluster impact.

    With ``columns`` the hw-job join and per-bucket sums run vectorized
    over the typed arrays; the result is identical to the rowwise loop
    (``np.bincount`` accumulates weights in array order).
    """
    if columns is not None:
        return _lost_goodput_by_size_columnar(columns, lost_work_cap)
    records = list(records)
    hw_jobs = _hw_instigator_jobs(records)
    losses: Dict[int, Dict[str, float]] = {}

    def bucket_for(record: JobAttemptRecord) -> Dict[str, float]:
        key = size_bucket(record.n_gpus)
        return losses.setdefault(
            key, {"direct": 0.0, "second": 0.0, "n_direct": 0, "n_second": 0}
        )

    for record in records:
        if record.is_hw_interruption:
            slot = bucket_for(record)
            slot["direct"] += _attempt_loss(record, lost_work_cap)
            slot["n_direct"] += 1
        elif (
            record.state is JobState.PREEMPTED
            and record.instigator_job_id is not None
            and record.instigator_job_id in hw_jobs
        ):
            slot = bucket_for(record)
            slot["second"] += _attempt_loss(record, lost_work_cap)
            slot["n_second"] += 1
    return [
        GoodputLoss(
            gpus=gpus,
            direct_gpu_hours=slot["direct"] / HOUR,
            second_order_gpu_hours=slot["second"] / HOUR,
            n_direct=int(slot["n_direct"]),
            n_second_order=int(slot["n_second"]),
        )
        for gpus, slot in sorted(losses.items())
    ]


def _lost_goodput_by_size_columnar(
    columns: "JobColumns", lost_work_cap: float
) -> List[GoodputLoss]:
    from repro.core.columns import STATE_CODE_PREEMPTED

    if len(columns) == 0:
        return []
    direct = columns.is_hw_interruption
    hw_jobs = np.unique(columns.job_id[direct])
    # "& ~direct" mirrors the rowwise elif: an hw-interrupted row is never
    # double-charged as second-order even if it is also a PREEMPTED row.
    second = (
        (columns.state_code == STATE_CODE_PREEMPTED)
        & ~columns.instigator_null
        & np.isin(columns.instigator_job_id, hw_jobs)
        & ~direct
    )
    loss = np.minimum(columns.runtime, lost_work_cap) * columns.n_gpus.astype(
        np.float64
    )
    buckets = columns.size_bucket()
    uniq, inverse = np.unique(buckets, return_inverse=True)
    n = len(uniq)
    direct_sum = np.bincount(
        inverse, weights=np.where(direct, loss, 0.0), minlength=n
    )
    second_sum = np.bincount(
        inverse, weights=np.where(second, loss, 0.0), minlength=n
    )
    n_direct = np.bincount(inverse[direct], minlength=n)
    n_second = np.bincount(inverse[second], minlength=n)
    out = []
    for i, gpus in enumerate(uniq):  # np.unique is sorted ascending
        if n_direct[i] == 0 and n_second[i] == 0:
            continue  # bucket untouched by losses — rowwise never creates it
        out.append(
            GoodputLoss(
                gpus=int(gpus),
                direct_gpu_hours=float(direct_sum[i]) / HOUR,
                second_order_gpu_hours=float(second_sum[i]) / HOUR,
                n_direct=int(n_direct[i]),
                n_second_order=int(n_second[i]),
            )
        )
    return out


def second_order_fraction(losses: Iterable[GoodputLoss]) -> float:
    """Share of total lost goodput due to cascaded preemptions (~16%)."""
    losses = list(losses)
    total = sum(l.total_gpu_hours for l in losses)
    if total <= 0:
        raise ValueError("no lost goodput in the supplied buckets")
    return sum(l.second_order_gpu_hours for l in losses) / total


@dataclass(frozen=True)
class CrashLoop:
    """A job that kept requeueing through hardware failures."""

    job_id: int
    n_gpus: int
    hw_interruptions: int
    preemptions_caused: int
    gpus_preempted: int


def find_crash_loops(
    records: Iterable[JobAttemptRecord],
    min_interruptions: int = 5,
    columns: Optional["JobColumns"] = None,
) -> List[CrashLoop]:
    """Identify requeue loops and tally the churn they caused.

    ``preemptions_caused`` counts PREEMPTED rows whose instigator is the
    looping job; ``gpus_preempted`` sums their GPU counts (the paper's
    "548 preemptions (over 7k GPUs)" style of accounting).

    With ``columns`` the per-job tallies run as grouped array reductions
    instead of an O(loops x records) rescan; ordering matches the rowwise
    path (first-hw-occurrence order, then a stable sort by interruptions).
    """
    if columns is not None:
        return _find_crash_loops_columnar(columns, min_interruptions)
    records = list(records)
    hw_counts: Dict[int, int] = {}
    gpus: Dict[int, int] = {}
    for record in records:
        if record.is_hw_interruption:
            hw_counts[record.job_id] = hw_counts.get(record.job_id, 0) + 1
            gpus[record.job_id] = record.n_gpus
    loops = []
    for job_id, count in hw_counts.items():
        if count < min_interruptions:
            continue
        caused = [
            r
            for r in records
            if r.state is JobState.PREEMPTED and r.instigator_job_id == job_id
        ]
        loops.append(
            CrashLoop(
                job_id=job_id,
                n_gpus=gpus[job_id],
                hw_interruptions=count,
                preemptions_caused=len(caused),
                gpus_preempted=sum(r.n_gpus for r in caused),
            )
        )
    loops.sort(key=lambda l: -l.hw_interruptions)
    return loops


def _find_crash_loops_columnar(
    columns: "JobColumns", min_interruptions: int
) -> List[CrashLoop]:
    from repro.core.columns import STATE_CODE_PREEMPTED

    if len(columns) == 0:
        return []
    hw = columns.is_hw_interruption
    hw_ids = columns.job_id[hw]
    if len(hw_ids) == 0:
        return []
    uniq, first_idx, counts = np.unique(
        hw_ids, return_index=True, return_counts=True
    )
    # Rowwise dicts key jobs in first-hw-occurrence order; recover it so the
    # stable sort below breaks interruption-count ties identically.
    order = np.argsort(first_idx, kind="stable")
    uniq, first_idx, counts = uniq[order], first_idx[order], counts[order]
    # gpus[job_id] is overwritten per hw row rowwise; n_gpus is constant per
    # job so the first occurrence is equivalent to the last.
    gpus_by_job = columns.n_gpus[hw][first_idx]

    pre = (columns.state_code == STATE_CODE_PREEMPTED) & ~columns.instigator_null
    instigators = columns.instigator_job_id[pre]
    pre_gpus = columns.n_gpus[pre]

    loops = []
    for job_id, count, n_gpus in zip(uniq, counts, gpus_by_job):
        if count < min_interruptions:
            continue
        caused = instigators == job_id
        loops.append(
            CrashLoop(
                job_id=int(job_id),
                n_gpus=int(n_gpus),
                hw_interruptions=int(count),
                preemptions_caused=int(np.count_nonzero(caused)),
                gpus_preempted=int(pre_gpus[caused].sum()),
            )
        )
    loops.sort(key=lambda l: -l.hw_interruptions)
    return loops
