"""MTTF analysis: empirical per-size MTTF, Gamma CIs, 1/N projection (Fig. 7).

Three pieces, matching the paper's Section III:

1. **Empirical MTTF by job size** — jobs are bucketed by GPU count rounded
   up to the next multiple of 8 and then to powers of two; the bucket MTTF
   is total scheduled runtime over hardware-failure count, with a 90%
   Gamma confidence interval.
2. **Cluster failure rate r_f** — failures per node-day over jobs larger
   than a GPU floor (the paper uses >128 GPUs so small-job noise doesn't
   contaminate the estimate).
3. **Projection** — MTTF(N) = 1 / (N_nodes * r_f), the curve the paper
   validates against buckets from 32 to 4096 GPUs and then extrapolates to
   16k (1.8 h) and 131k (0.23 h) GPUs.
"""

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.cluster.components import GPUS_PER_NODE
from repro.jobtypes import JobAttemptRecord, JobState
from repro.sim.timeunits import DAY, HOUR
from repro.stats.fitting import RateEstimate, estimate_rate
from repro.stats.quantiles import power_of_two_bucket

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.columns import JobColumns


def size_bucket(n_gpus: int) -> int:
    """Fig. 7's bucketing: round up to a multiple of 8, then a power of 2."""
    if n_gpus <= 0:
        raise ValueError(f"n_gpus must be positive, got {n_gpus}")
    rounded = int(math.ceil(n_gpus / GPUS_PER_NODE)) * GPUS_PER_NODE
    return power_of_two_bucket(rounded, minimum=GPUS_PER_NODE)


@dataclass(frozen=True)
class MTTFBucket:
    """Empirical MTTF for one job-size bucket."""

    gpus: int
    n_records: int
    failures: int
    runtime_hours: float
    estimate: RateEstimate  # rate per hour of job runtime

    @property
    def mttf_hours(self) -> float:
        return self.estimate.mttf

    @property
    def mttf_hours_lo(self) -> float:
        return self.estimate.mttf_lo

    @property
    def mttf_hours_hi(self) -> float:
        return self.estimate.mttf_hi


def _is_hw_failure(record: JobAttemptRecord, use_ground_truth: bool) -> bool:
    if use_ground_truth:
        return record.is_hw_interruption
    # Observable rule: NODE_FAIL always counts; FAILED/REQUEUED count when
    # a health check was attributed (see core.attribution for the join).
    if record.state is JobState.NODE_FAIL:
        return True
    return (
        record.state in (JobState.FAILED, JobState.REQUEUED)
        and record.hw_attributed
    )


def empirical_mttf_by_size(
    records: Iterable[JobAttemptRecord],
    confidence: float = 0.90,
    use_ground_truth: bool = True,
    min_records: int = 1,
    columns: Optional["JobColumns"] = None,
) -> List[MTTFBucket]:
    """Per-size-bucket MTTF with Gamma confidence intervals.

    Exposure is the total scheduled runtime (hours) of all attempts in the
    bucket — completed attempts are right-censored observations of the
    failure process, exactly as in the paper's jobs-of-that-size pooling.

    When ``columns`` (a :class:`repro.core.columns.JobColumns` covering the
    same attempts) is given, the per-bucket sums run vectorized over the
    typed arrays; ``records`` is not touched.  ``np.bincount`` accumulates
    weights element-by-element in array order, so the per-bucket runtime
    sums are bit-identical to the rowwise loop.
    """
    if columns is not None:
        return _empirical_mttf_by_size_columnar(
            columns,
            confidence=confidence,
            use_ground_truth=use_ground_truth,
            min_records=min_records,
        )
    runtime: Dict[int, float] = {}
    failures: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for record in records:
        bucket = size_bucket(record.n_gpus)
        runtime[bucket] = runtime.get(bucket, 0.0) + record.runtime / HOUR
        counts[bucket] = counts.get(bucket, 0) + 1
        if _is_hw_failure(record, use_ground_truth):
            failures[bucket] = failures.get(bucket, 0) + 1
    out = []
    for bucket in sorted(runtime):
        if counts[bucket] < min_records or runtime[bucket] <= 0:
            continue
        est = estimate_rate(
            failures.get(bucket, 0), runtime[bucket], confidence=confidence
        )
        out.append(
            MTTFBucket(
                gpus=bucket,
                n_records=counts[bucket],
                failures=failures.get(bucket, 0),
                runtime_hours=runtime[bucket],
                estimate=est,
            )
        )
    return out


def _empirical_mttf_by_size_columnar(
    columns: "JobColumns",
    confidence: float,
    use_ground_truth: bool,
    min_records: int,
) -> List[MTTFBucket]:
    if len(columns) == 0:
        return []
    buckets = columns.size_bucket()
    hw = columns.hw_failure_mask(use_ground_truth=use_ground_truth)
    uniq, inverse = np.unique(buckets, return_inverse=True)
    counts = np.bincount(inverse, minlength=len(uniq))
    runtime_hours = np.bincount(
        inverse, weights=columns.runtime / HOUR, minlength=len(uniq)
    )
    failures = np.bincount(
        inverse, weights=hw.astype(np.float64), minlength=len(uniq)
    )
    out = []
    for i, bucket in enumerate(uniq):  # np.unique is sorted ascending
        n = int(counts[i])
        hours = float(runtime_hours[i])
        if n < min_records or hours <= 0:
            continue
        fails = int(round(failures[i]))
        out.append(
            MTTFBucket(
                gpus=int(bucket),
                n_records=n,
                failures=fails,
                runtime_hours=hours,
                estimate=estimate_rate(fails, hours, confidence=confidence),
            )
        )
    return out


def node_failure_rate(
    records: Iterable[JobAttemptRecord],
    min_gpus: int = 128,
    use_ground_truth: bool = True,
    confidence: float = 0.90,
    columns: Optional["JobColumns"] = None,
) -> RateEstimate:
    """Cluster failure rate r_f in failures per *node-day* of job runtime.

    Counts hardware failures among attempts with more than ``min_gpus``
    GPUs and divides by their node-days (runtime x allocated nodes) —
    Section III's recipe for the r_f that feeds both the Fig. 7 projection
    and E[ETTR].

    With ``columns`` the selection and node-day exposure run vectorized;
    the masked sum uses pairwise accumulation, which may differ from the
    sequential loop in the last ulp (figure assertions use bands, and
    trace digests never include analysis output).
    """
    if columns is not None:
        mask = columns.n_gpus > min_gpus
        node_days = float(
            np.sum(
                columns.runtime[mask]
                / DAY
                * columns.n_nodes[mask].astype(np.float64)
            )
        )
        failures = int(
            np.count_nonzero(
                columns.hw_failure_mask(use_ground_truth=use_ground_truth)
                & mask
            )
        )
    else:
        node_days = 0.0
        failures = 0
        for record in records:
            if record.n_gpus <= min_gpus:
                continue
            node_days += record.runtime / DAY * record.n_nodes
            if _is_hw_failure(record, use_ground_truth):
                failures += 1
    if node_days <= 0:
        raise ValueError(
            f"no runtime from jobs larger than {min_gpus} GPUs; "
            "lower min_gpus or use a longer trace"
        )
    return estimate_rate(failures, node_days, confidence=confidence)


def project_mttf(
    n_gpus: int,
    failure_rate_per_node_day: float,
    gpus_per_node: int = GPUS_PER_NODE,
) -> float:
    """Theoretical MTTF in **hours** for an ``n_gpus`` job: 1/(N * r_f)."""
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    if failure_rate_per_node_day <= 0:
        return float("inf")
    n_nodes = max(1, math.ceil(n_gpus / gpus_per_node))
    return (1.0 / (n_nodes * failure_rate_per_node_day)) * (DAY / HOUR)


def mttf_projection_curve(
    sizes: Sequence[int],
    failure_rate_per_node_day: float,
) -> Dict[int, float]:
    """MTTF-hours for each GPU count — the dashed theory line of Fig. 7."""
    return {
        int(size): project_mttf(int(size), failure_rate_per_node_day)
        for size in sizes
    }
