"""The paper's primary contribution: reliability metrics, models, analyses.

* :mod:`repro.core.taxonomy` — the failure taxonomy of Table I.
* :mod:`repro.core.attribution` — failure attribution via health-check
  windows and differential diagnosis (Section II-E, Fig. 4).
* :mod:`repro.core.metrics` — ETTR / MFU / goodput definitions (Section II-D).
* :mod:`repro.core.ettr` — analytical E[ETTR] (Eq. 1-2, Appendix A) and its
  Monte Carlo validator.
* :mod:`repro.core.mttf` — MTTF estimation with Gamma CIs and the
  1/(N * r_f) projection (Fig. 7).
* :mod:`repro.core.goodput` — lost-goodput accounting including
  second-order preemption cascades (Fig. 8).
* :mod:`repro.core.lemon` — lemon-node detection (Section IV-A, Fig. 11,
  Table II).
* :mod:`repro.core.checkpoint` — checkpoint-interval design space (Fig. 10).
"""

from repro.core.taxonomy import (
    FailureDomain,
    FailureSymptom,
    TaxonomyEntry,
    FAILURE_TAXONOMY,
    diagnose,
)
from repro.core.attribution import (
    AttributionPolicy,
    AttributedFailure,
    FailureAttributor,
)
from repro.core.metrics import (
    ETTRAssumptions,
    JobRunETTR,
    job_run_ettr,
    model_flops_utilization,
    cluster_goodput_fraction,
)
from repro.core.ettr import (
    ETTRParameters,
    expected_ettr,
    expected_ettr_simple,
    expected_failures,
    expected_slowdown,
    monte_carlo_ettr,
    monte_carlo_ettr_samples,
)
from repro.core.mttf import (
    MTTFBucket,
    empirical_mttf_by_size,
    node_failure_rate,
    project_mttf,
    mttf_projection_curve,
)
from repro.core.goodput import (
    GoodputLoss,
    lost_goodput_by_size,
    find_crash_loops,
)
from repro.core.lemon import (
    LemonPolicy,
    LemonDetector,
    LemonReport,
    LEMON_SIGNALS,
)
from repro.core.checkpoint import (
    required_checkpoint_interval,
    ettr_checkpoint_grid,
    optimal_checkpoint_interval,
)

__all__ = [
    "FailureDomain",
    "FailureSymptom",
    "TaxonomyEntry",
    "FAILURE_TAXONOMY",
    "diagnose",
    "AttributionPolicy",
    "AttributedFailure",
    "FailureAttributor",
    "ETTRAssumptions",
    "JobRunETTR",
    "job_run_ettr",
    "model_flops_utilization",
    "cluster_goodput_fraction",
    "ETTRParameters",
    "expected_ettr",
    "expected_ettr_simple",
    "expected_failures",
    "expected_slowdown",
    "monte_carlo_ettr",
    "monte_carlo_ettr_samples",
    "MTTFBucket",
    "empirical_mttf_by_size",
    "node_failure_rate",
    "project_mttf",
    "mttf_projection_curve",
    "GoodputLoss",
    "lost_goodput_by_size",
    "find_crash_loops",
    "LemonPolicy",
    "LemonDetector",
    "LemonReport",
    "LEMON_SIGNALS",
    "required_checkpoint_interval",
    "ettr_checkpoint_grid",
    "optimal_checkpoint_interval",
]
