"""Checkpoint-cadence design space (Fig. 10) and optimal-interval helpers.

Fig. 10 asks: at 100k-GPU scale, what (failure rate, checkpoint interval)
pairs achieve a given expected ETTR?  Using Eq. 2 —
``E[ETTR] = 1 - N r_f (u0 + dt/2)`` — the required interval solves in
closed form; the full Eq. 1 version is inverted numerically for scenarios
where queueing matters.  We also provide the classic Young/Daly optimum
for completeness (the paper assumes non-blocking checkpoint writes, in
which case smaller dt is strictly better down to the write cadence the
storage can absorb).
"""

import math
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ettr import ETTRParameters, expected_ettr
from repro.sim.timeunits import DAY, MINUTE


def required_checkpoint_interval(
    target_ettr: float,
    n_nodes: int,
    failure_rate_per_node_day: float,
    restart_overhead: float = 5 * MINUTE,
    queue_time: float = 0.0,
    productive_runtime: float = 7 * DAY,
    use_full_model: bool = False,
) -> float:
    """Checkpoint interval (seconds) achieving ``target_ettr``.

    Returns ``inf`` when any interval works (failure-free limit) and raises
    when no positive interval can reach the target (restart overhead alone
    already exceeds the budget) — the regime where the paper says hourly
    checkpointing "is untenable".
    """
    if not 0 < target_ettr < 1:
        raise ValueError("target_ettr must be in (0, 1)")
    lam = n_nodes * failure_rate_per_node_day / DAY  # failures per second
    if lam == 0:
        return float("inf")
    if not use_full_model:
        # Eq. 2 inverted: dt = 2 ((1 - ettr)/(N r) - u0).
        dt = 2 * ((1 - target_ettr) / lam - restart_overhead)
        if dt <= 0:
            raise ValueError(
                f"target ETTR {target_ettr} unreachable: restart overhead "
                f"({restart_overhead:.0f}s) alone exceeds the failure budget "
                f"at MTTF {1 / lam:.0f}s"
            )
        return dt

    # Full model: E[ETTR](dt) is monotone decreasing in dt; bisect.
    def ettr_at(dt: float) -> float:
        params = ETTRParameters(
            n_nodes=n_nodes,
            failure_rate_per_node_day=failure_rate_per_node_day,
            checkpoint_interval=dt,
            restart_overhead=restart_overhead,
            queue_time=queue_time,
            productive_runtime=productive_runtime,
        )
        try:
            return expected_ettr(params)
        except ValueError:
            return 0.0  # outside validity region -> no progress

    lo, hi = 1.0, 30 * DAY
    if ettr_at(lo) < target_ettr:
        raise ValueError(
            f"target ETTR {target_ettr} unreachable even at 1-second "
            "checkpointing; reduce restart overhead or failure rate"
        )
    if ettr_at(hi) >= target_ettr:
        return float("inf")
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # log-space bisection
        if ettr_at(mid) >= target_ettr:
            lo = mid
        else:
            hi = mid
        if hi / lo < 1.0001:
            break
    return lo


def ettr_checkpoint_grid(
    failure_rates_per_node_day: Sequence[float],
    checkpoint_intervals: Sequence[float],
    n_gpus: int = 100_000,
    restart_overhead: float = 5 * MINUTE,
    gpus_per_node: int = 8,
) -> Dict[Tuple[float, float], float]:
    """Fig. 10's surface: E[ETTR] over (r_f, dt) at 100k-GPU scale.

    Keys are ``(failure_rate, checkpoint_interval)``; values use Eq. 2
    (clamped at 0 where the job cannot progress).
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    n_nodes = max(1, n_gpus // gpus_per_node)
    rates = np.asarray(failure_rates_per_node_day, dtype=float)
    intervals = np.asarray(checkpoint_intervals, dtype=float)
    # Same validation ETTRParameters would apply per cell.
    if np.any(rates < 0):
        raise ValueError("failure rate must be non-negative")
    if np.any(intervals <= 0):
        raise ValueError("checkpoint_interval must be positive")
    if restart_overhead < 0:
        raise ValueError("overheads must be non-negative")
    # Eq. 2 broadcast over the whole (r_f, dt) surface at once; each cell
    # is the same float arithmetic expected_ettr_simple performs.
    lam = n_nodes * rates / DAY  # failures per second, shape (R,)
    overhead = restart_overhead + intervals / 2  # shape (D,)
    surface = np.maximum(0.0, 1.0 - lam[:, None] * overhead[None, :])
    grid: Dict[Tuple[float, float], float] = {}
    for i, rf in enumerate(rates):
        for j, dt in enumerate(intervals):
            grid[(float(rf), float(dt))] = float(surface[i, j])
    return grid


def optimal_checkpoint_interval(
    checkpoint_write_cost: float,
    mttf_seconds: float,
) -> float:
    """Young/Daly optimum: dt* = sqrt(2 * C * MTTF).

    Relevant when checkpoint writes *block* training for ``C`` seconds; the
    paper's Fig. 10 assumes non-blocking writes, where this is the floor on
    how aggressive a cadence is worth implementing.
    """
    if checkpoint_write_cost <= 0:
        raise ValueError("checkpoint_write_cost must be positive")
    if mttf_seconds <= 0:
        raise ValueError("mttf_seconds must be positive")
    return math.sqrt(2 * checkpoint_write_cost * mttf_seconds)
