"""Blocking vs asynchronous checkpointing and the optimal interval.

Fig. 10 "assum[es] checkpoint writes are non-blocking", in which case
smaller intervals are strictly better and the only limit is what storage
absorbs.  With *blocking* writes of ``w`` seconds every ``dt`` of
progress, there is a classic trade-off:

    ETTR_blocking(dt) ~ [1 - N r_f (u0 + dt/2)] * dt / (dt + w)

— the failure term wants dt small, the write-stall term wants dt large.
The maximizer generalizes Young/Daly's sqrt(2 w MTTF) (recovered exactly
as overheads vanish; asserted in tests).
"""

import enum
import math
from dataclasses import replace
from typing import Optional

from repro.core.ettr import ETTRParameters, expected_ettr_simple


class CheckpointMode(enum.Enum):
    BLOCKING = "blocking"
    ASYNC = "async"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def blocking_overhead_fraction(checkpoint_interval: float, write_time: float) -> float:
    """Fraction of scheduled time spent stalled in checkpoint writes."""
    if checkpoint_interval <= 0:
        raise ValueError("checkpoint_interval must be positive")
    if write_time < 0:
        raise ValueError("write_time must be non-negative")
    return write_time / (checkpoint_interval + write_time)


def ettr_with_checkpoint_writes(
    params: ETTRParameters,
    write_time: float,
    mode: CheckpointMode = CheckpointMode.BLOCKING,
) -> float:
    """E[ETTR] including the cost of the checkpoint writes themselves.

    ASYNC mode matches Eq. 2 (writes hidden behind training); BLOCKING
    mode additionally discounts by the write-stall fraction.  Clamped to
    [0, 1] outside the failure model's validity region.
    """
    base = expected_ettr_simple(params)
    if mode is CheckpointMode.ASYNC:
        return base
    stall = blocking_overhead_fraction(params.checkpoint_interval, write_time)
    return max(0.0, base * (1.0 - stall))


def optimal_blocking_interval(
    params: ETTRParameters,
    write_time: float,
    lo: float = 1.0,
    hi: float = 30 * 24 * 3600.0,
) -> float:
    """Interval maximizing blocking-mode E[ETTR] (golden-section search).

    The objective is unimodal in dt: the product of a decreasing affine
    failure term and an increasing write-efficiency term.
    """
    if write_time <= 0:
        raise ValueError(
            "write_time must be positive; with free writes checkpoint "
            "as often as possible"
        )

    def objective(dt: float) -> float:
        return ettr_with_checkpoint_writes(
            replace(params, checkpoint_interval=dt),
            write_time,
            CheckpointMode.BLOCKING,
        )

    invphi = (math.sqrt(5) - 1) / 2
    a, b = math.log(lo), math.log(hi)
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc, fd = objective(math.exp(c)), objective(math.exp(d))
    for _ in range(200):
        if b - a < 1e-6:
            break
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = objective(math.exp(c))
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = objective(math.exp(d))
    return math.exp((a + b) / 2)


def young_daly_interval(write_time: float, mttf_seconds: float) -> float:
    """The classical first-order optimum, for comparison."""
    if write_time <= 0 or mttf_seconds <= 0:
        raise ValueError("write_time and mttf_seconds must be positive")
    return math.sqrt(2.0 * write_time * mttf_seconds)
