"""Storage substrate: the clusters' three tiers and checkpoint-write costs.

Section II-A describes three offerings — a POSIX/NFS tier for home
directories and common checkpoint patterns, AirStore (a high-bandwidth
read-only dataset cache), and ObjectStore (high-capacity/throughput object
storage for checkpoints beyond NFS).  Fig. 10's conclusions assume
*non-blocking* checkpoint writes; this package quantifies when that
assumption matters by modelling write times per tier and the ETTR of
blocking vs asynchronous checkpointing.
"""

from repro.storage.tiers import (
    StorageTier,
    NFS,
    AIRSTORE,
    OBJECTSTORE,
    checkpoint_write_time,
    model_checkpoint_gb,
)
from repro.storage.checkpointing import (
    CheckpointMode,
    ettr_with_checkpoint_writes,
    optimal_blocking_interval,
    blocking_overhead_fraction,
)

__all__ = [
    "StorageTier",
    "NFS",
    "AIRSTORE",
    "OBJECTSTORE",
    "checkpoint_write_time",
    "model_checkpoint_gb",
    "CheckpointMode",
    "ettr_with_checkpoint_writes",
    "optimal_blocking_interval",
    "blocking_overhead_fraction",
]
