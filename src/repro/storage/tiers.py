"""Storage tiers and checkpoint sizing.

Bandwidth figures are aggregate, order-of-magnitude characterizations of
the three offerings in Section II-A, chosen so their *relative* behaviour
matches the paper's guidance (NFS for ease of use, ObjectStore "for
checkpointing and storing files when the NFS endpoint is insufficient").
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageTier:
    """One storage offering's performance envelope.

    Attributes:
        name: Human-readable tier name.
        aggregate_write_gbps: Fleet-wide write ceiling (Gb/s).
        aggregate_read_gbps: Fleet-wide read ceiling (Gb/s).
        per_client_write_gbps: What a single writer node can push (Gb/s).
    """

    name: str
    aggregate_write_gbps: float
    aggregate_read_gbps: float
    per_client_write_gbps: float

    def __post_init__(self):
        if min(
            self.aggregate_write_gbps,
            self.aggregate_read_gbps,
            self.per_client_write_gbps,
        ) <= 0:
            raise ValueError(f"tier {self.name}: bandwidths must be positive")


#: POSIX/NFS flash tier: convenient, modest aggregate write bandwidth.
NFS = StorageTier(
    name="NFS",
    aggregate_write_gbps=400.0,
    aggregate_read_gbps=800.0,
    per_client_write_gbps=10.0,
)

#: AirStore: read-optimized dataset cache — writes are not its job.
AIRSTORE = StorageTier(
    name="AirStore",
    aggregate_write_gbps=100.0,
    aggregate_read_gbps=4000.0,
    per_client_write_gbps=2.0,
)

#: ObjectStore: the high-throughput checkpoint sink.
OBJECTSTORE = StorageTier(
    name="ObjectStore",
    aggregate_write_gbps=2000.0,
    aggregate_read_gbps=2000.0,
    per_client_write_gbps=20.0,
)


def model_checkpoint_gb(
    n_params_billion: float,
    bytes_per_param: float = 2.0,
    optimizer_state_multiplier: float = 6.0,
) -> float:
    """Checkpoint size for a model of ``n_params_billion`` parameters.

    Default: bf16 weights plus fp32 Adam moments and master weights
    (~12 bytes/param extra), the common mixed-precision recipe.
    """
    if n_params_billion <= 0:
        raise ValueError("n_params_billion must be positive")
    if bytes_per_param <= 0 or optimizer_state_multiplier < 0:
        raise ValueError("invalid size parameters")
    total_bytes_per_param = bytes_per_param * (1.0 + optimizer_state_multiplier)
    return n_params_billion * total_bytes_per_param


def checkpoint_write_time(
    checkpoint_gb: float,
    tier: StorageTier,
    n_writer_nodes: int,
) -> float:
    """Seconds to land a sharded checkpoint on ``tier``.

    Writers shard the state; throughput is the lesser of the tier's
    aggregate ceiling and what the writer fleet can push.
    """
    if checkpoint_gb <= 0:
        raise ValueError("checkpoint_gb must be positive")
    if n_writer_nodes <= 0:
        raise ValueError("n_writer_nodes must be positive")
    throughput_gbps = min(
        tier.aggregate_write_gbps,
        tier.per_client_write_gbps * n_writer_nodes,
    )
    return checkpoint_gb * 8.0 / throughput_gbps
