"""Deterministic discrete-event simulation substrate.

The engine is deliberately small: a time-ordered event heap, a monotonic
clock, and named, independently seeded random streams.  Everything else in
the repository (cluster hardware, scheduler, workload) is built as callbacks
scheduled on this engine, which keeps campaign runs reproducible from a
single root seed.
"""

from repro.sim.engine import Engine, ScheduledEvent
from repro.sim.events import EventRecord, EventLog
from repro.sim.rng import RngStreams
from repro.sim.timeunits import (
    SECOND,
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    days,
    hours,
    minutes,
    format_duration,
)

__all__ = [
    "Engine",
    "ScheduledEvent",
    "EventRecord",
    "EventLog",
    "RngStreams",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "days",
    "hours",
    "minutes",
    "format_duration",
]
