"""Reusable process patterns on top of the event engine."""

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Engine, ScheduledEvent


class PeriodicProcess:
    """Run a callback at a fixed period until stopped.

    Used for coarse periodic activities (e.g. fleet sweeps).  Fine-grained
    periodic activities such as per-node five-minute health checks are *not*
    modelled as literal events — see :mod:`repro.cluster.health` for the
    lazy-detection design — so this class stays cheap to use.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[], None],
        start_at: Optional[float] = None,
        label: str = "periodic",
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._label = label
        self._stopped = False
        self._pending: Optional[ScheduledEvent] = None
        first = engine.now + period if start_at is None else start_at
        self._pending = engine.schedule_at(first, self._tick, label=label)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._pending = self._engine.schedule_after(
                self._period, self._tick, label=self._label
            )

    def stop(self) -> None:
        """Stop the process; any pending tick is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class PoissonProcess:
    """Schedule a callback at exponentially distributed intervals.

    The rate may be changed on the fly (e.g. the episodic failure regimes of
    Fig. 5); the next arrival is re-drawn from the new rate.  A rate of zero
    suspends the process until the rate becomes positive again.
    """

    def __init__(
        self,
        engine: Engine,
        rate_per_second: float,
        callback: Callable[[], None],
        rng: np.random.Generator,
        label: str = "poisson",
    ):
        if rate_per_second < 0:
            raise ValueError(f"rate must be non-negative, got {rate_per_second}")
        self._engine = engine
        self._rate = rate_per_second
        self._callback = callback
        self._rng = rng
        self._label = label
        self._stopped = False
        self._pending: Optional[ScheduledEvent] = None
        self._arm()

    @property
    def rate(self) -> float:
        return self._rate

    def set_rate(self, rate_per_second: float) -> None:
        """Change the arrival rate; re-arms the next arrival."""
        if rate_per_second < 0:
            raise ValueError(f"rate must be non-negative, got {rate_per_second}")
        self._rate = rate_per_second
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if not self._stopped:
            self._arm()

    def _arm(self) -> None:
        if self._rate <= 0:
            return
        gap = self._rng.exponential(1.0 / self._rate)
        self._pending = self._engine.schedule_after(gap, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Stop the process; any pending arrival is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
