"""Structured event records emitted during a campaign.

The engine itself schedules opaque callbacks; subsystems that want a durable
record of *what happened* (health checks firing, jobs changing state, links
flapping) append :class:`EventRecord` entries to an :class:`EventLog`.  The
analysis layer consumes these logs rather than live objects, mirroring how
the paper's analysis consumes Slurm and health-check logs rather than the
cluster itself.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One timestamped fact about the simulated cluster.

    Attributes:
        time: Simulation time in seconds.
        kind: Namespaced event kind, e.g. ``"health.check_failed"`` or
            ``"sched.job_state"``.
        subject: Primary entity the event concerns (node id, job id, ...).
        data: Free-form payload; values must be JSON-serializable.
    """

    time: float
    kind: str
    subject: str
    data: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """An append-only, time-ordered-by-construction list of events."""

    def __init__(self) -> None:
        self._records: List[EventRecord] = []
        #: Optional observer invoked with every record as it lands (the
        #: live tap's feed — see :mod:`repro.live.tap`).  One attribute
        #: check per append when unset; the listener must not mutate the
        #: log.
        self.listener: Optional[Callable[[EventRecord], None]] = None

    def append(self, record: EventRecord) -> None:
        self._records.append(record)
        if self.listener is not None:
            self.listener(record)

    def emit(self, time: float, kind: str, subject: str, **data: Any) -> EventRecord:
        """Create, append, and return an :class:`EventRecord`."""
        record = EventRecord(time=time, kind=kind, subject=subject, data=data)
        self._records.append(record)
        if self.listener is not None:
            self.listener(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> EventRecord:
        return self._records[index]

    def filter(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        predicate: Optional[Callable[[EventRecord], bool]] = None,
    ) -> List[EventRecord]:
        """Return events matching every provided criterion.

        ``kind`` matches exactly or by prefix when it ends with ``"."``
        (e.g. ``"health."`` matches all health events).  ``start`` is
        inclusive and ``end`` exclusive.
        """
        out = []
        for rec in self._records:
            if kind is not None:
                if kind.endswith("."):
                    if not rec.kind.startswith(kind):
                        continue
                elif rec.kind != kind:
                    continue
            if subject is not None and rec.subject != subject:
                continue
            if start is not None and rec.time < start:
                continue
            if end is not None and rec.time >= end:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def kinds(self) -> Dict[str, int]:
        """Return a histogram of event kinds."""
        counts: Dict[str, int] = {}
        for rec in self._records:
            counts[rec.kind] = counts.get(rec.kind, 0) + 1
        return counts
