"""Named, independently seeded random streams.

A campaign draws randomness for several logically independent processes:
workload arrivals, job outcomes, hardware failures, scheduler tie-breaking,
and so on.  Deriving one :class:`numpy.random.Generator` per named purpose
from a single root seed gives two properties we rely on throughout:

* **Reproducibility** — the same root seed replays the same campaign.
* **Isolation** — adding draws to one subsystem (say, a new health check)
  does not perturb the sampled sequence of any other subsystem, so
  experiments stay comparable across code changes.
"""

from typing import Dict

import numpy as np


class RngStreams:
    """A factory of named random generators derived from one root seed."""

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator instance, so
        subsystems can re-fetch their stream cheaply.
        """
        if name not in self._streams:
            seq = np.random.SeedSequence(self.root_seed, spawn_key=(_stable_key(name),))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Return an indexed child stream, e.g. one per node.

        Unlike :meth:`stream`, spawned generators are not cached; callers
        own them.  The (name, index) pair fully determines the sequence.
        """
        seq = np.random.SeedSequence(
            self.root_seed, spawn_key=(_stable_key(name), int(index))
        )
        return np.random.default_rng(seq)

    def __repr__(self) -> str:
        return f"RngStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"


def _stable_key(name: str) -> int:
    """Map a stream name to a stable non-negative integer key.

    Python's builtin ``hash`` is salted per-process for strings, so we use a
    simple FNV-1a hash to keep seeds stable across interpreter runs.
    """
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFF
