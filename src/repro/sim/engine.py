"""The discrete-event engine.

A classic event-heap design: callbacks are scheduled at absolute times and
executed in time order; ties break by insertion sequence so runs are fully
deterministic.  Events can be cancelled in O(1) (lazy deletion).

The engine is time-unit agnostic; by convention the rest of the repository
uses seconds (see :mod:`repro.sim.timeunits`).
"""

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Telemetry


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """A pending callback on the engine's heap.

    Ordering is (time, seq); ``seq`` is a monotonically increasing counter
    that makes the schedule a stable total order.  Slotted: a campaign
    allocates one of these per scheduled callback — millions per run — so
    the per-instance dict is pure overhead.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Owning engine; lets ``cancel`` keep the live-event counter exact
    #: without a heap scan.  Compare-excluded so ordering stays (time, seq).
    _owner: Optional["Engine"] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self._owner
        if owner is not None:
            owner._live -= 1
            telemetry = owner.telemetry
            if telemetry is not None and telemetry.enabled:
                telemetry.tracer.emit(
                    "sim.cancel",
                    self.label,
                    owner._now,
                    seq=self.seq,
                    scheduled_for=self.time,
                )


class Engine:
    """A deterministic discrete-event simulation loop."""

    def __init__(
        self, start_time: float = 0.0, telemetry: Optional["Telemetry"] = None
    ):
        self._now = float(start_time)
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._executed = 0
        self._live = 0  # non-cancelled events on the heap, kept exact
        self._running = False
        self._stopped = False
        #: Optional obs.Telemetry bundle; None (or a disabled bundle) keeps
        #: the run loop on its untraced path.  Checked once per run_until.
        self.telemetry = telemetry

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of callbacks executed so far (cancelled ones excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still on the heap.

        O(1): a live counter maintained on push/pop/cancel replaces the
        previous full-heap scan (this property sits on logging/monitoring
        hot paths).
        """
        return self._live

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``time``.

        Scheduling in the past is an error: it would silently reorder
        history and make runs non-reproducible.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = ScheduledEvent(
            time=float(time),
            seq=next(self._seq),
            callback=callback,
            label=label,
            _owner=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_after(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    def stop(self) -> None:
        """Request the run loop to halt after the current callback."""
        self._stopped = True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Execute events in time order until ``end_time`` (inclusive).

        Events scheduled exactly at ``end_time`` execute.  ``max_events``
        guards against runaway feedback loops in tests.

        A callback that raises leaves the engine consistent: ``_running``
        is reset, the failing event counts as executed, and the exception
        is re-raised annotated with the event's label and time
        (``err.sim_event_label`` / ``err.sim_event_time`` plus an
        ``add_note`` message), so the run can be diagnosed and — if the
        caller chooses — resumed with another ``run_until``.
        """
        if self._running:
            raise RuntimeError("engine is already running (reentrant run_until)")
        self._running = True
        self._stopped = False
        budget = max_events if max_events is not None else float("inf")
        # Telemetry is sampled once per run; enabling mid-run takes effect
        # on the next run_until call.  The disabled path costs one branch.
        telemetry = self.telemetry
        traced = telemetry is not None and telemetry.enabled
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue  # counter already decremented at cancel time
                self._live -= 1
                if self._executed >= budget:
                    raise RuntimeError(
                        f"exceeded max_events={max_events}; "
                        "possible event feedback loop"
                    )
                self._now = event.time
                if traced:
                    wall_start = perf_counter()
                try:
                    event.callback()
                except BaseException as err:
                    self._executed += 1
                    err.sim_event_label = event.label
                    err.sim_event_time = event.time
                    if hasattr(err, "add_note"):
                        err.add_note(
                            f"while executing sim event "
                            f"{event.label or '<unlabeled>'!r} "
                            f"(seq {event.seq}) at t={event.time}"
                        )
                    if traced:
                        telemetry.tracer.emit(
                            "sim.error",
                            event.label,
                            event.time,
                            seq=event.seq,
                            error=type(err).__name__,
                        )
                    raise
                self._executed += 1
                if traced:
                    duration = perf_counter() - wall_start
                    group = (
                        event.label.partition(":")[0]
                        if event.label
                        else "unlabeled"
                    )
                    telemetry.tracer.emit(
                        "sim.execute",
                        event.label,
                        event.time,
                        seq=event.seq,
                        group=group,
                        duration_s=duration,
                    )
                    metrics = telemetry.metrics
                    metrics.counter(
                        "sim_events_executed_total", label=group
                    ).inc()
                    metrics.histogram(
                        "sim_event_duration_seconds", label=group
                    ).observe(duration)
            # Advance the clock to the horizon even if the heap drained
            # early, so periodic measurements read a consistent end time.
            if not self._stopped and end_time > self._now:
                self._now = end_time
        finally:
            self._running = False

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Run until the heap is empty (bounded by ``max_events``)."""
        self.run_until(float("inf"), max_events=max_events)

    def __repr__(self) -> str:
        return (
            f"Engine(now={self._now:.1f}, pending={self.pending_events}, "
            f"executed={self._executed})"
        )
