"""Time units and helpers.

All simulation timestamps are floats measured in seconds from the campaign
start (t=0).  Durations use the same unit.  These helpers exist so that call
sites read like the paper ("a 60 minute checkpoint interval", "failures per
node-day") instead of bare magic numbers.
"""

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


def minutes(n: float) -> float:
    """Return ``n`` minutes expressed in seconds."""
    return n * MINUTE


def hours(n: float) -> float:
    """Return ``n`` hours expressed in seconds."""
    return n * HOUR


def days(n: float) -> float:
    """Return ``n`` days expressed in seconds."""
    return n * DAY


def format_duration(seconds: float) -> str:
    """Render a duration in the largest natural unit.

    >>> format_duration(90)
    '1.5m'
    >>> format_duration(7200)
    '2.0h'
    >>> format_duration(172800)
    '2.0d'
    """
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}m"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f}h"
    return f"{seconds / DAY:.1f}d"
