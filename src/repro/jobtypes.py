"""Shared job vocabulary: states, QoS tiers, intents, and the trace row.

This is a dependency-leaf module: both the workload layer (which *intends*
jobs) and the scheduler layer (which *runs* them) speak these types, and
the analysis layer consumes :class:`JobAttemptRecord` rows without needing
either.  Keeping them here breaks what would otherwise be a
workload <-> scheduler import cycle.
"""

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.timeunits import DAY

#: The clusters' hard per-job lifetime cap (Section II-A).
MAX_JOB_LIFETIME = 7 * DAY


class QosTier(enum.IntEnum):
    """Priority tiers; higher tiers may preempt lower ones."""

    LOW = 1
    NORMAL = 2
    HIGH = 3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


class IntendedOutcome(enum.Enum):
    """A job's fate absent any infrastructure interference."""

    COMPLETED = "completed"
    FAILED_USER = "failed_user"  # application bug -> non-zero exit
    CANCELLED = "cancelled"  # user scancel
    OOM = "oom"  # host out-of-memory kill
    TIMEOUT = "timeout"  # runs into its time limit

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class JobState(enum.Enum):
    """Slurm job states tracked in Fig. 3."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    NODE_FAIL = "NODE_FAIL"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"
    OUT_OF_MEMORY = "OUT_OF_MEMORY"
    PREEMPTED = "PREEMPTED"
    REQUEUED = "REQUEUED"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Terminal state of an attempt that resolves the job's own intent.
FINAL_OUTCOME_BY_INTENT = {
    IntendedOutcome.COMPLETED: JobState.COMPLETED,
    IntendedOutcome.FAILED_USER: JobState.FAILED,
    IntendedOutcome.CANCELLED: JobState.CANCELLED,
    IntendedOutcome.OOM: JobState.OUT_OF_MEMORY,
    IntendedOutcome.TIMEOUT: JobState.TIMEOUT,
}

#: Attempt-terminal states caused by infrastructure (auto-requeue eligible).
INTERRUPTION_STATES = frozenset(
    {JobState.NODE_FAIL, JobState.REQUEUED, JobState.PREEMPTED}
)


@dataclass(frozen=True)
class JobAttemptRecord:
    """One completed scheduling attempt — one accounting-log row.

    ``hw_component``/``hw_incident_id``/``hw_attributed`` are populated when
    the attempt was terminated by a hardware/system incident.
    ``instigator_job_id`` is set on PREEMPTED rows to the job whose
    (re)scheduling forced the preemption — the causal edge Fig. 8's
    second-order analysis reconstructs.
    """

    job_id: int
    attempt: int
    jobrun_id: int
    project: str
    qos: QosTier
    n_gpus: int
    n_nodes: int
    enqueue_time: float
    start_time: float
    end_time: float
    state: JobState
    node_ids: Tuple[int, ...]
    hw_component: Optional[str] = None
    hw_incident_id: Optional[int] = None
    hw_attributed: bool = False
    failing_node_id: Optional[int] = None
    instigator_job_id: Optional[int] = None

    def __post_init__(self):
        if self.end_time < self.start_time:
            raise ValueError(
                f"job {self.job_id} attempt {self.attempt}: "
                f"end {self.end_time} before start {self.start_time}"
            )
        if self.start_time < self.enqueue_time:
            raise ValueError(
                f"job {self.job_id} attempt {self.attempt}: "
                f"start {self.start_time} before enqueue {self.enqueue_time}"
            )

    @property
    def runtime(self) -> float:
        return self.end_time - self.start_time

    @property
    def queue_wait(self) -> float:
        return self.start_time - self.enqueue_time

    @property
    def gpu_seconds(self) -> float:
        return self.runtime * self.n_gpus

    @property
    def is_hw_interruption(self) -> bool:
        """Infrastructure-caused termination (NODE_FAIL or attributed)."""
        if self.state is JobState.NODE_FAIL:
            return True
        return self.hw_incident_id is not None
