"""Execute per-rank collective programs under NCCL matching semantics.

The simulator advances ranks through their programs.  Collective *i* (by
issue order) starts on a rank when that rank reaches it; it completes for
everyone only when every rank has started it and the issued operations
match.  Faults interrupt this:

* CRASH — the rank never issues its ``at_op``-th collective (and nothing
  after); peers that reach the matching op hang inside it.
* STUCK_OUTSIDE — same observable footprint as a crash (the rank never
  *starts* the op) but the process is alive; the flight recorder still
  shows it missing, which is exactly the paper's point about ambiguous
  timeouts.
* NETWORK_HANG — the rank *starts* the op but the collective never
  finishes; everyone shows started-not-completed.
* Mismatched programs — every rank starts its i-th op, the kinds differ,
  nothing completes: a deadlock with all ranks present.

The output is one :class:`RankFlightRecord` per rank, the input format of
:func:`repro.diagnostics.diagnosis.diagnose_timeout`.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diagnostics.collective_ops import CollectiveOp, RankProgram
from repro.diagnostics.scenarios import RankFault, RankFaultKind

#: Effective per-rank collective bandwidth used to turn payload into time.
COLLECTIVE_GBPS = 80.0


@dataclass(frozen=True)
class OpLog:
    """Flight-recorder entry: one collective as seen by one rank."""

    seq: int
    kind: str
    label: str
    started_at: Optional[float]
    completed_at: Optional[float]
    payload_mb: float = 0.0

    @property
    def signature(self) -> str:
        """What NCCL matching sees: operation kind + message size."""
        return f"{self.kind}/{self.payload_mb:g}MB"

    @property
    def started(self) -> bool:
        return self.started_at is not None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None


@dataclass
class RankFlightRecord:
    """All collective entries of one rank, in issue order."""

    rank: int
    entries: List[OpLog] = field(default_factory=list)

    def entry(self, seq: int) -> Optional[OpLog]:
        for e in self.entries:
            if e.seq == seq:
                return e
        return None

    def last_completed_seq(self) -> int:
        """Highest seq this rank completed (-1 if none)."""
        completed = [e.seq for e in self.entries if e.completed]
        return max(completed) if completed else -1


def _op_duration(op: CollectiveOp) -> float:
    return op.payload_mb * 8 / 1000.0 / COLLECTIVE_GBPS


def simulate_collectives(
    programs: Sequence[RankProgram],
    faults: Sequence[RankFault] = (),
    timeout: float = 600.0,
) -> List[RankFlightRecord]:
    """Run the programs to completion or to the first hang.

    Returns flight records for every rank.  ``timeout`` only positions the
    "gave up" timestamps; detection of *why* is the diagnoser's job.
    """
    if not programs:
        raise ValueError("need at least one rank program")
    ranks = [p.rank for p in programs]
    if len(set(ranks)) != len(ranks):
        raise ValueError("duplicate ranks in program set")
    fault_by_rank: Dict[int, RankFault] = {}
    for fault in faults:
        if fault.rank not in ranks:
            raise ValueError(f"fault names unknown rank {fault.rank}")
        if fault.rank in fault_by_rank:
            raise ValueError(f"multiple faults on rank {fault.rank}")
        fault_by_rank[fault.rank] = fault

    records = {p.rank: RankFlightRecord(rank=p.rank) for p in programs}
    clock = {p.rank: 0.0 for p in programs}
    n_ops = max(len(p) for p in programs)

    for seq in range(n_ops):
        # Phase 1: which ranks reach & start this collective?
        started: Dict[int, CollectiveOp] = {}
        for program in programs:
            rank = program.rank
            fault = fault_by_rank.get(rank)
            blocked_before = fault is not None and fault.kind in (
                RankFaultKind.CRASH,
                RankFaultKind.STUCK_OUTSIDE,
            ) and seq >= fault.at_op
            if seq >= len(program) or blocked_before:
                if seq < len(program):
                    records[rank].entries.append(
                        OpLog(
                            seq=seq,
                            kind=program.ops[seq].kind.value,
                            label=program.ops[seq].label,
                            started_at=None,
                            completed_at=None,
                            payload_mb=program.ops[seq].payload_mb,
                        )
                    )
                continue
            op = program.ops[seq]
            start_time = clock[rank] + program.compute_gap
            started[rank] = op
            records[rank].entries.append(
                OpLog(
                    seq=seq,
                    kind=op.kind.value,
                    label=op.label,
                    started_at=start_time,
                    completed_at=None,  # provisional; fixed below
                    payload_mb=op.payload_mb,
                )
            )
            clock[rank] = start_time

        participating = [p.rank for p in programs if seq < len(p)]
        all_started = len(started) == len(participating)
        reference = next(iter(started.values())) if started else None
        kinds_match = all(
            op.matches(reference) for op in started.values()
        ) if started else True
        network_hang = any(
            f.kind is RankFaultKind.NETWORK_HANG and f.at_op == seq
            for f in fault_by_rank.values()
        )
        if all_started and kinds_match and not network_hang and started:
            # Collective completes: synchronize all ranks' clocks.
            op = next(iter(started.values()))
            finish = max(clock[r] for r in started) + _op_duration(op)
            for rank in started:
                entry = records[rank].entries[-1]
                records[rank].entries[-1] = OpLog(
                    seq=entry.seq,
                    kind=entry.kind,
                    label=entry.label,
                    started_at=entry.started_at,
                    completed_at=finish,
                    payload_mb=entry.payload_mb,
                )
                clock[rank] = finish
            continue
        # Hang: every started rank waits until the timeout; nothing after
        # this collective executes on any rank.
        for rank, record in records.items():
            if rank in started:
                entry = record.entries[-1]
                record.entries[-1] = OpLog(
                    seq=entry.seq,
                    kind=entry.kind,
                    label=entry.label,
                    started_at=entry.started_at,
                    completed_at=None,
                    payload_mb=entry.payload_mb,
                )
        break
    return [records[p.rank] for p in programs]
