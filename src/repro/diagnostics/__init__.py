"""NCCL-timeout diagnosis tooling (Section V).

The paper's debugging-tools proposal, implemented: "by logging which
ranks started each collective, and the dependencies between collectives,
we can find the first collective where some ranks started the collective
but others did not, and further investigate the missing ranks.  If all
ranks entered but did not leave a collective, we can examine the network
traffic within the collective."

This package provides:

* a collective-execution model with per-rank programs and NCCL's
  match-by-issue-order semantics (:mod:`repro.diagnostics.execution`),
* fault injection covering the paper's hypothesis space — crashed ranks,
  ranks stuck outside the collective (e.g. in data loading), in-collective
  network hangs, and SPMD program bugs that issue collectives in
  mismatched order (:mod:`repro.diagnostics.scenarios`),
* the flight-recorder log format and the timeout diagnoser that works
  backward from logs to culprit ranks (:mod:`repro.diagnostics.diagnosis`),
* a static SPMD checker that raises on mismatched collective orders
  instead of letting the job deadlock (Section V's "Programming Models").
"""

from repro.diagnostics.collective_ops import (
    CollectiveKind,
    CollectiveOp,
    RankProgram,
    training_loop_program,
)
from repro.diagnostics.execution import (
    OpLog,
    RankFlightRecord,
    simulate_collectives,
)
from repro.diagnostics.scenarios import (
    FaultScenario,
    RankFault,
    RankFaultKind,
    mismatched_program_set,
    random_scenario,
)
from repro.diagnostics.diagnosis import (
    MismatchedCollectiveError,
    TimeoutDiagnosis,
    TimeoutVerdict,
    diagnose_timeout,
    static_spmd_check,
)

__all__ = [
    "CollectiveKind",
    "CollectiveOp",
    "RankProgram",
    "training_loop_program",
    "OpLog",
    "RankFlightRecord",
    "simulate_collectives",
    "FaultScenario",
    "RankFault",
    "RankFaultKind",
    "mismatched_program_set",
    "random_scenario",
    "MismatchedCollectiveError",
    "TimeoutDiagnosis",
    "TimeoutVerdict",
    "diagnose_timeout",
    "static_spmd_check",
]
