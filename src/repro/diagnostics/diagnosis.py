"""Timeout diagnosis: from flight records back to culprit ranks.

Implements Section V's recipe verbatim:

1. "Find the first collective where some ranks started the collective but
   others did not, and further investigate the missing ranks."
2. "If all ranks entered but did not leave a collective, examine the
   network traffic within the collective" — here: flag an in-collective
   hang and hand the remaining hypotheses to the Table I taxonomy.
3. Mismatched kinds at one seq = an SPMD program bug; the static checker
   raises it *before* the job runs, "raising exceptions rather than
   deadlocking".
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.taxonomy import FailureDomain, FailureSymptom, diagnose
from repro.diagnostics.collective_ops import RankProgram
from repro.diagnostics.execution import OpLog, RankFlightRecord


class TimeoutVerdict(enum.Enum):
    NO_FAULT = "no_fault"
    MISSING_RANKS = "missing_ranks"
    MISMATCHED_COLLECTIVES = "mismatched_collectives"
    IN_COLLECTIVE_HANG = "in_collective_hang"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MismatchedCollectiveError(RuntimeError):
    """Raised by the static checker on divergent SPMD programs."""

    def __init__(self, seq: int, kinds_by_rank: Dict[int, str]):
        self.seq = seq
        self.kinds_by_rank = dict(kinds_by_rank)
        super().__init__(
            f"collective #{seq} diverges across ranks: {self.kinds_by_rank}"
        )


@dataclass(frozen=True)
class TimeoutDiagnosis:
    """The diagnoser's answer for one hung job."""

    verdict: TimeoutVerdict
    collective_seq: Optional[int]
    culprit_ranks: Tuple[int, ...]
    kinds_seen: Tuple[str, ...]
    suspect_domains: Tuple[FailureDomain, ...]
    detail: str

    def render(self) -> str:
        lines = [f"verdict: {self.verdict.value}"]
        if self.collective_seq is not None:
            lines.append(f"first incomplete collective: #{self.collective_seq}")
        if self.culprit_ranks:
            lines.append(f"culprit ranks: {list(self.culprit_ranks)}")
        if self.kinds_seen:
            lines.append(f"kinds seen: {sorted(set(self.kinds_seen))}")
        lines.append(
            "suspect domains: "
            + ", ".join(d.value for d in self.suspect_domains)
        )
        lines.append(self.detail)
        return "\n".join(lines)


def diagnose_timeout(records: Sequence[RankFlightRecord]) -> TimeoutDiagnosis:
    """Work backward from flight records to the most likely story."""
    if not records:
        raise ValueError("need at least one flight record")
    by_rank = {r.rank: r for r in records}
    n_ops = max((len(r.entries) for r in records), default=0)

    for seq in range(n_ops):
        entries: Dict[int, Optional[OpLog]] = {
            rank: record.entry(seq) for rank, record in by_rank.items()
        }
        relevant = {r: e for r, e in entries.items() if e is not None}
        if not relevant:
            continue
        if all(e.completed for e in relevant.values()):
            continue
        # This is the first collective that did not complete everywhere.
        started = {r for r, e in relevant.items() if e.started}
        missing = tuple(sorted(set(relevant) - started))
        kinds = tuple(
            sorted({e.signature for r, e in relevant.items() if r in started})
        )
        if missing:
            detail = (
                f"ranks {list(missing)} never issued collective #{seq}; "
                "inspect their host state (crash vs stuck outside the "
                "collective, e.g. data loading)"
            )
            domains = tuple(
                diagnose(
                    FailureSymptom.NCCL_TIMEOUT,
                    ruled_out=[FailureDomain.HARDWARE_INFRA],
                )
            )
            return TimeoutDiagnosis(
                verdict=TimeoutVerdict.MISSING_RANKS,
                collective_seq=seq,
                culprit_ranks=missing,
                kinds_seen=kinds,
                suspect_domains=domains,
                detail=detail,
            )
        if len(kinds) > 1:
            # Everyone arrived, but they disagree on what the collective is
            # (kind or message size — NCCL matches both).
            majority = max(
                kinds,
                key=lambda k: sum(
                    1 for e in relevant.values() if e.signature == k
                ),
            )
            culprits = tuple(
                sorted(
                    r for r, e in relevant.items() if e.signature != majority
                )
            )
            return TimeoutDiagnosis(
                verdict=TimeoutVerdict.MISMATCHED_COLLECTIVES,
                collective_seq=seq,
                culprit_ranks=culprits,
                kinds_seen=kinds,
                suspect_domains=(FailureDomain.USER_PROGRAM,),
                detail=(
                    f"ranks disagree on collective #{seq} "
                    f"({dict((r, e.signature) for r, e in relevant.items())}); "
                    "SPMD ordering bug"
                ),
            )
        # All ranks entered the same collective and none left.
        domains = tuple(
            diagnose(
                FailureSymptom.NCCL_TIMEOUT,
                ruled_out=[FailureDomain.USER_PROGRAM],
            )
        )
        return TimeoutDiagnosis(
            verdict=TimeoutVerdict.IN_COLLECTIVE_HANG,
            collective_seq=seq,
            culprit_ranks=(),
            kinds_seen=kinds,
            suspect_domains=domains,
            detail=(
                f"all ranks entered collective #{seq} but none completed; "
                "examine network traffic / link health within the "
                "collective"
            ),
        )
    return TimeoutDiagnosis(
        verdict=TimeoutVerdict.NO_FAULT,
        collective_seq=None,
        culprit_ranks=(),
        kinds_seen=(),
        suspect_domains=(),
        detail="every collective completed on every rank",
    )


def static_spmd_check(programs: Sequence[RankProgram]) -> None:
    """Raise :class:`MismatchedCollectiveError` on divergent programs.

    Section V: "Dynamically detecting incorrect programs and raising
    exceptions rather than deadlocking would improve stability."  Run
    this before launching; it catches any order/kind divergence that the
    execution semantics would turn into a silent hang.
    """
    if not programs:
        raise ValueError("need at least one rank program")
    n_ops = max(len(p) for p in programs)
    if any(len(p) != n_ops for p in programs):
        lengths = {p.rank: len(p) for p in programs}
        raise MismatchedCollectiveError(
            seq=min(lengths.values()),
            kinds_by_rank={r: f"<{n} ops>" for r, n in lengths.items()},
        )
    for seq in range(n_ops):
        kinds = {p.rank: p.ops[seq].kind.value for p in programs}
        reference = programs[0].ops[seq]
        if any(not p.ops[seq].matches(reference) for p in programs[1:]):
            raise MismatchedCollectiveError(seq=seq, kinds_by_rank=kinds)
