"""Fault injection for collective runs: the timeout hypothesis space.

Section II-E / V enumerate what a NCCL timeout can hide: a crashed rank, a
rank stuck outside the collective (data loading, deadlocked host code), an
in-collective network/hardware hang, or an SPMD bug where ranks issue
collectives in different orders.  Each gets an injectable fault here, plus
a generator of labelled random scenarios for accuracy evaluation.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diagnostics.collective_ops import (
    CollectiveKind,
    CollectiveOp,
    RankProgram,
    spmd_program_set,
)


class RankFaultKind(enum.Enum):
    """What actually went wrong (ground truth for evaluating diagnosis)."""

    NONE = "none"
    CRASH = "crash"  # rank process died before issuing an op
    STUCK_OUTSIDE = "stuck_outside"  # e.g. blocked on the dataloader
    NETWORK_HANG = "network_hang"  # entered the collective, traffic stalls

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RankFault:
    """A fault pinned to one rank at one op index."""

    rank: int
    kind: RankFaultKind
    at_op: int
    detail: str = ""

    def __post_init__(self):
        if self.rank < 0 or self.at_op < 0:
            raise ValueError("rank and at_op must be non-negative")
        if self.kind is RankFaultKind.NONE:
            raise ValueError("use an empty fault list for the no-fault case")


@dataclass(frozen=True)
class FaultScenario:
    """Programs + injected faults + the ground-truth answer."""

    name: str
    programs: Tuple[RankProgram, ...]
    faults: Tuple[RankFault, ...]
    #: ground truth: the verdict a perfect diagnoser should return
    truth_verdict: str
    truth_culprits: Tuple[int, ...]

    @property
    def n_ranks(self) -> int:
        return len(self.programs)


def mismatched_program_set(
    n_ranks: int,
    buggy_rank: int,
    swap_at: int = 1,
    n_steps: int = 2,
) -> List[RankProgram]:
    """An SPMD bug: one rank issues two collectives in swapped order.

    This is Section V's canonical deadlock — e.g. a conditional that
    reorders a gradient all-reduce against a barrier on one rank only.
    """
    programs = spmd_program_set(n_ranks, n_steps=n_steps)
    if not 0 <= buggy_rank < n_ranks:
        raise ValueError("buggy_rank out of range")
    ops = list(programs[buggy_rank].ops)
    if not 0 <= swap_at < len(ops) - 1:
        raise ValueError("swap_at out of range")
    while swap_at < len(ops) - 1 and ops[swap_at].matches(ops[swap_at + 1]):
        # Swapping identical ops would be an invisible no-op "bug";
        # advance to the next visibly-divergent pair.
        swap_at += 1
    if swap_at >= len(ops) - 1:
        raise ValueError("program has no adjacent distinguishable ops to swap")
    ops[swap_at], ops[swap_at + 1] = ops[swap_at + 1], ops[swap_at]
    programs[buggy_rank] = RankProgram(
        rank=buggy_rank, ops=ops, compute_gap=programs[buggy_rank].compute_gap
    )
    return programs


def random_scenario(
    rng: np.random.Generator,
    n_ranks: int = 8,
    n_steps: int = 2,
) -> FaultScenario:
    """Sample a labelled scenario uniformly over the four fault families."""
    family = rng.choice(
        ["none", "crash", "stuck_outside", "network_hang", "mismatch"]
    )
    programs = spmd_program_set(n_ranks, n_steps=n_steps)
    n_ops = len(programs[0])
    if family == "none":
        return FaultScenario(
            name="healthy",
            programs=tuple(programs),
            faults=(),
            truth_verdict="no_fault",
            truth_culprits=(),
        )
    culprit = int(rng.integers(0, n_ranks))
    at_op = int(rng.integers(1, n_ops))
    if family == "mismatch":
        swap_at = int(rng.integers(0, n_ops - 2))
        programs = mismatched_program_set(
            n_ranks, buggy_rank=culprit, swap_at=swap_at, n_steps=n_steps
        )
        return FaultScenario(
            name=f"mismatch@rank{culprit}",
            programs=tuple(programs),
            faults=(),
            truth_verdict="mismatched_collectives",
            truth_culprits=(culprit,),
        )
    kind = {
        "crash": RankFaultKind.CRASH,
        "stuck_outside": RankFaultKind.STUCK_OUTSIDE,
        "network_hang": RankFaultKind.NETWORK_HANG,
    }[family]
    verdict = (
        "in_collective_hang"
        if kind is RankFaultKind.NETWORK_HANG
        else "missing_ranks"
    )
    detail = {
        RankFaultKind.CRASH: "segfault in optimizer step",
        RankFaultKind.STUCK_OUTSIDE: "blocked reading the next batch",
        RankFaultKind.NETWORK_HANG: "switch egress port stalled",
    }[kind]
    return FaultScenario(
        name=f"{family}@rank{culprit}/op{at_op}",
        programs=tuple(programs),
        faults=(RankFault(rank=culprit, kind=kind, at_op=at_op, detail=detail),),
        truth_verdict=verdict,
        truth_culprits=(culprit,),
    )
