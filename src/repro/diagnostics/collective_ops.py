"""Per-rank collective programs.

NCCL matches collectives by *issue order on the communicator*, not by any
tag: the i-th collective issued by rank 0 pairs with the i-th issued by
every other rank.  A program that issues them in different orders on
different ranks deadlocks — the SPMD pitfall Section V describes.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class CollectiveKind(enum.Enum):
    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    BROADCAST = "broadcast"
    BARRIER = "barrier"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CollectiveOp:
    """One collective as issued by one rank.

    ``payload_mb`` sizes the operation (drives its duration in the
    execution model); ``label`` is a human-readable hint (e.g. which
    gradient bucket), carried through to diagnosis output.
    """

    kind: CollectiveKind
    payload_mb: float = 64.0
    label: str = ""

    def __post_init__(self):
        if self.payload_mb <= 0:
            raise ValueError("payload_mb must be positive")

    def matches(self, other: "CollectiveOp") -> bool:
        """Would NCCL consider these the same collective?

        Kind and payload must agree; labels are documentation only.
        """
        return self.kind is other.kind and self.payload_mb == other.payload_mb


@dataclass
class RankProgram:
    """The ordered collectives one rank will issue."""

    rank: int
    ops: List[CollectiveOp]
    #: Host-side compute seconds between consecutive collectives.
    compute_gap: float = 0.05

    def __post_init__(self):
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        if self.compute_gap < 0:
            raise ValueError("compute_gap must be non-negative")

    def __len__(self) -> int:
        return len(self.ops)


def training_step_ops(
    n_gradient_buckets: int = 4, bucket_mb: float = 128.0
) -> List[CollectiveOp]:
    """One data-parallel training step: gradient all-reduces + a barrier.

    Bucket sizes differ (layer groups rarely tie exactly), which also
    makes any reordering observable to NCCL's matching — a swap of two
    byte-identical collectives would be a semantic bug with no hang.
    """
    ops = [
        CollectiveOp(
            CollectiveKind.ALL_REDUCE,
            payload_mb=bucket_mb * (1.0 + 0.25 * i),
            label=f"grad_bucket_{i}",
        )
        for i in range(n_gradient_buckets)
    ]
    ops.append(CollectiveOp(CollectiveKind.BARRIER, payload_mb=1.0, label="step_sync"))
    return ops


def training_loop_program(
    rank: int,
    n_steps: int = 3,
    n_gradient_buckets: int = 4,
    bucket_mb: float = 128.0,
    compute_gap: float = 0.05,
) -> RankProgram:
    """A canonical SPMD training loop for one rank."""
    if n_steps <= 0:
        raise ValueError("n_steps must be positive")
    ops: List[CollectiveOp] = []
    for _step in range(n_steps):
        ops.extend(training_step_ops(n_gradient_buckets, bucket_mb))
    return RankProgram(rank=rank, ops=ops, compute_gap=compute_gap)


def spmd_program_set(
    n_ranks: int, n_steps: int = 3, n_gradient_buckets: int = 4
) -> List[RankProgram]:
    """Identical programs across ranks — the correct SPMD case."""
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    return [
        training_loop_program(rank, n_steps, n_gradient_buckets)
        for rank in range(n_ranks)
    ]
