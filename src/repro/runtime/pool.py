"""Parallel campaign execution: fan configs across an execution backend.

``CampaignPool`` is the sweep engine behind every multi-campaign workload
in the repository — multi-seed validation sweeps, ablation pairs, and
checkpoint/size grids.  Semantics:

* **Deterministic ordering** — results come back in input order no matter
  how workers interleave, so a pooled sweep is a drop-in replacement for
  a serial list comprehension.
* **Cache first** — each config is looked up in the content-addressed
  :class:`~repro.runtime.cache.TraceCache` before any work is dispatched;
  only misses are simulated, and fresh results are written back.
* **Pluggable mechanism, fixed policy** — the pool owns dispatch policy
  (waves, retry budgets, the circuit breaker, checkpoint resume) and
  delegates *where* attempts run to an
  :class:`~repro.backends.ExecutionBackend`:
  ``inline`` (serial, in-process), ``local-pool`` (this machine's
  cores — the default), or ``work-queue`` (a filesystem queue drained
  by workers on any host).  The backend never affects simulated
  content: the same configs produce bit-identical traces on every
  backend, chaos included.
* **Failure is the steady state** — the pool treats its workers the way
  the paper's clusters treat nodes.  Every config carries a retry budget
  with exponential, seeded-jitter backoff; a worker that dies mid-seed
  (OOM-kill, segfault, chaos injection) surfaces as a ``"lost"`` outcome,
  the backend is hard-killed and respawned, and the lost attempts are
  re-dispatched; a per-wave timeout reclaims hung workers; and a circuit
  breaker degrades to inline execution after repeated backend-level
  failures rather than fighting a broken environment.  All recovery
  actions are accounted in ``resilience_*`` metrics, and every dispatch
  wave is measured (``backend.wave`` spans,
  ``backend_dispatch_total{backend=...}`` counters).
* **Crash-safe sweeps** — pass a
  :class:`~repro.resilience.checkpoint.CampaignCheckpoint` (or
  ``RunOptions(checkpoint_dir=...)``) and every completed config is
  persisted (manifest + partial results, both atomic); re-running the
  interrupted sweep resumes bit-identically — on the *same* backend or
  a different one.
* **Graceful degradation** — with one usable core, a single miss, or a
  broken ``multiprocessing`` environment, the pool runs in-process with
  identical results (campaign determinism is seeded, not scheduling-
  dependent).

Each returned trace carries a ``metadata["runtime"]`` block (wall time,
events executed, events/sec, source, executor) and ``pool.last_stats``
aggregates the sweep (hits, misses, retries, workers, events/sec) so
speedups and recoveries are measurable, not anecdotal.
"""

import os
import warnings
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.backends import (
    BackendUnavailable,
    DEFAULT_BACKEND,
    ExecutionBackend,
    TaskSpec,
    create_backend,
    execute_task,
)
from repro.campaign import CampaignConfig, run_campaign
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import maybe_span
from repro.options import RunOptions, UNSET, resolve_options
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.config import DEFAULT_RESILIENCE, ResilienceConfig
from repro.resilience.retry import CircuitBreaker
from repro.runtime.cache import TraceCache
from repro.runtime.hashing import config_digest
from repro.workload.trace import Trace

#: Registry counters the pool maintains; ``last_stats`` is rebuilt from
#: the per-run deltas of exactly these.
_POOL_COUNTERS = (
    "pool_campaigns_total",
    "pool_cache_hits_total",
    "pool_simulated_total",
    "pool_events_executed_total",
    "pool_resumed_total",
    "resilience_retries_total",
    "resilience_worker_respawns_total",
)


@dataclass(frozen=True)
class _SimTask:
    """Back-compat alias shape for one dispatchable attempt.

    The canonical spec is :class:`repro.backends.TaskSpec`; this wrapper
    keeps the pre-backends field set (``subprocess``) for the in-process
    fallback path.
    """

    config: CampaignConfig
    digest: str
    attempt: int
    chaos: Optional[object] = None
    subprocess: bool = True


def _simulate_task(task: _SimTask, telemetry=None) -> Trace:
    """Back-compat worker body: delegates to the shared backend body."""
    return execute_task(
        TaskSpec(
            config=task.config,
            digest=task.digest,
            attempt=task.attempt,
            chaos=task.chaos,
        ),
        telemetry=telemetry,
        in_process=not task.subprocess,
    )


def _simulate(config: CampaignConfig) -> Trace:
    """Back-compat worker body: one plain attempt, no chaos."""
    return run_campaign(config)


@dataclass(frozen=True)
class SweepStats:
    """Aggregate accounting of one ``CampaignPool.run`` call."""

    campaigns: int
    cache_hits: int
    simulated: int
    workers: int
    wall_time_s: float
    events_executed: int
    resumed: int = 0
    retries: int = 0
    respawns: int = 0
    backend: str = DEFAULT_BACKEND

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_executed / self.wall_time_s

    def render(self) -> str:
        recovered = ""
        if self.retries or self.respawns or self.resumed:
            recovered = (
                f", recovered: {self.retries} retries / "
                f"{self.respawns} respawns / {self.resumed} resumed"
            )
        via = f" via {self.backend}" if self.backend != DEFAULT_BACKEND else ""
        return (
            f"{self.campaigns} campaigns in {self.wall_time_s:.2f}s "
            f"({self.cache_hits} cache hits, {self.simulated} simulated "
            f"on {self.workers} worker{'s' if self.workers != 1 else ''}"
            f"{via}, {self.events_per_sec:,.0f} events/s{recovered})"
        )


class CampaignPool:
    """Runs batches of campaigns through the cache and a backend."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Union[TraceCache, bool, None] = UNSET,
        mp_context: Optional[str] = None,
        telemetry=None,
        resilience: Optional[ResilienceConfig] = None,
        options: Optional[RunOptions] = None,
    ):
        """
        Args:
            max_workers: Upper bound on worker processes.  Defaults to the
                machine's CPU count; ``1`` forces in-process execution.
            cache: A :class:`TraceCache`, ``None`` for the default cache
                (honors ``REPRO_TRACE_CACHE``), or ``False`` to disable
                caching for this pool.
            mp_context: multiprocessing start method (``"fork"``/
                ``"spawn"``); ``None`` uses the platform default.
            telemetry: Optional :class:`repro.obs.Telemetry`; the pool
                accounts into its registry (and emits dispatch events when
                the tracer is enabled).  Without one, the pool still owns
                a private :class:`MetricsRegistry` — ``last_stats`` is
                always derived from registry counters.
            resilience: Recovery posture (retry budget, chaos injection,
                circuit breaker); ``None`` uses the default policy.
            options: A :class:`repro.RunOptions`; fills any of the above
                that were not passed explicitly (workers, cache +
                cache_dir, telemetry, resilience, checkpoint_dir), and
                selects the execution backend (``backend`` +
                ``backend_options``).
        """
        opts = options if options is not None else RunOptions()
        if max_workers is None:
            max_workers = opts.workers
        if cache is UNSET:
            cache = opts.cache
        if telemetry is None:
            telemetry = opts.telemetry
        if resilience is None:
            resilience = opts.resilience or DEFAULT_RESILIENCE
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.backend = opts.backend or DEFAULT_BACKEND
        self.backend_options = dict(opts.backend_options or {})
        if self.backend == "inline" and max_workers not in (None, 1):
            warnings.warn(
                f"CampaignPool: max_workers={max_workers} conflicts with "
                "backend='inline' (serial); forcing workers=1 — pass "
                "repro.RunOptions(backend=..., workers=...) consistently "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
            max_workers = 1
        self.max_workers = max_workers
        self.resilience = resilience
        if cache is False:
            self.cache: Optional[TraceCache] = None
        elif cache is None or cache is True:
            self.cache = TraceCache(
                root=opts.cache_dir,
                verify=resilience.verify_cache_integrity,
            )
        else:
            self.cache = cache
        self.mp_context = mp_context
        self.telemetry = telemetry
        self.metrics: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else MetricsRegistry()
        )
        self.checkpoint_dir = opts.checkpoint_dir
        #: One breaker per pool: once open, this pool never goes back to
        #: backend execution (a broken mp environment does not heal).
        self.breaker = CircuitBreaker(threshold=resilience.circuit_threshold)
        self.last_stats: Optional[SweepStats] = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_count(self, n_misses: int) -> int:
        limit = self.max_workers
        if limit is None:
            limit = os.cpu_count() or 1
        return max(1, min(limit, n_misses))

    def run(
        self,
        configs: Sequence[CampaignConfig],
        checkpoint: Optional[CampaignCheckpoint] = None,
    ) -> List[Trace]:
        """Simulate (or load) every config; results in input order.

        All accounting flows through the metrics registry (counters are
        cumulative across ``run`` calls); ``last_stats`` is rebuilt from
        this run's counter deltas, so the registry is the single source
        of truth for sweep statistics.

        ``checkpoint`` (or a pool built with ``options.checkpoint_dir``)
        makes the sweep crash-safe: completed configs are persisted as
        they finish and an interrupted sweep, re-run with the same
        checkpoint — on *any* backend — resumes bit-identically.
        """
        metrics = self.metrics
        baseline = {
            name: metrics.counter(name).value for name in _POOL_COUNTERS
        }
        configs = list(configs)
        if checkpoint is None and self.checkpoint_dir is not None:
            checkpoint = CampaignCheckpoint(self.checkpoint_dir)
        if checkpoint is not None:
            checkpoint.begin(configs)
            if getattr(checkpoint, "telemetry", None) is None:
                # Checkpoint writes profile into this sweep's spans.
                checkpoint.telemetry = self.telemetry
        chaos = self.resilience.chaos
        results: List[Optional[Trace]] = [None] * len(configs)
        miss_indices: List[int] = []
        with maybe_span(
            self.telemetry, "sweep", campaigns=len(configs)
        ), metrics.timer("pool_sweep_wall_seconds") as sweep_timer:
            for i, config in enumerate(configs):
                restored = (
                    checkpoint.load(config) if checkpoint is not None else None
                )
                if restored is not None:
                    results[i] = restored
                    metrics.counter("pool_resumed_total").inc()
                    continue
                if self.cache is not None and chaos is not None:
                    # Chaos models a torn write / bit rot landing between
                    # the entry's write and this read.
                    chaos.corrupt_before_read(self.cache, config)
                cached = (
                    self.cache.get(config) if self.cache is not None else None
                )
                if cached is not None:
                    results[i] = cached
                    metrics.counter("pool_cache_hits_total").inc()
                    if checkpoint is not None:
                        checkpoint.record(config, cached)
                else:
                    miss_indices.append(i)

            workers = self._worker_count(len(miss_indices))
            if miss_indices:
                miss_configs = [configs[i] for i in miss_indices]
                executed, workers = self._execute(miss_configs, workers)
                recorded = 0
                for i, (trace, executor) in zip(miss_indices, executed):
                    runtime = dict(trace.metadata.get("runtime", {}))
                    runtime["executor"] = executor
                    trace.metadata["runtime"] = runtime
                    if self.cache is not None:
                        self.cache.put(configs[i], trace)
                    if checkpoint is not None:
                        recorded += 1
                        checkpoint.record(
                            configs[i],
                            trace,
                            flush=(
                                recorded % self.resilience.checkpoint_every
                                == 0
                            ),
                        )
                    results[i] = trace
                    metrics.counter("pool_simulated_total").inc()
                    metrics.histogram("campaign_wall_seconds").observe(
                        float(runtime.get("wall_time_s", 0.0))
                    )
                if checkpoint is not None:
                    checkpoint.flush()
            metrics.counter("pool_campaigns_total").inc(len(configs))
            metrics.counter("pool_events_executed_total").inc(
                sum(
                    int(t.metadata.get("runtime", {}).get("events_executed", 0))
                    for t in results
                    if t is not None
                )
            )
            metrics.gauge("pool_workers").set(workers if miss_indices else 0)

        def delta(name: str) -> int:
            return int(metrics.counter(name).value - baseline[name])

        self.last_stats = SweepStats(
            campaigns=delta("pool_campaigns_total"),
            cache_hits=delta("pool_cache_hits_total"),
            simulated=delta("pool_simulated_total"),
            workers=int(metrics.gauge("pool_workers").value),
            wall_time_s=sweep_timer.elapsed,
            events_executed=delta("pool_events_executed_total"),
            resumed=delta("pool_resumed_total"),
            retries=delta("resilience_retries_total"),
            respawns=delta("resilience_worker_respawns_total"),
            backend=self.backend,
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "pool.sweep",
                f"{len(configs)}-campaigns",
                0.0,
                campaigns=self.last_stats.campaigns,
                cache_hits=self.last_stats.cache_hits,
                simulated=self.last_stats.simulated,
                workers=self.last_stats.workers,
                wall_time_s=self.last_stats.wall_time_s,
                retries=self.last_stats.retries,
                respawns=self.last_stats.respawns,
                resumed=self.last_stats.resumed,
                backend=self.backend,
            )
        return [t for t in results if t is not None]

    # ------------------------------------------------------------------
    # resilient dispatch
    # ------------------------------------------------------------------
    def _note_retry(self, digest: str, attempt: int, reason: str) -> None:
        self.metrics.counter("resilience_retries_total").inc()
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "resilience.retry",
                digest[:12],
                0.0,
                attempt=attempt,
                reason=reason,
            )

    def _select_backend(
        self, n_configs: int, workers: int
    ) -> Optional[ExecutionBackend]:
        """Instantiate the backend for this dispatch, or None for the
        guaranteed in-process path.

        The default backend keeps its historical fast path: one worker
        or one config means no pool is worth spinning up.  An explicit
        non-default backend always dispatches (a distributed queue may
        be drained remotely even for a single config; an explicit
        ``inline`` request should exercise the backend loop it asked
        for).  An open breaker never dispatches — a broken environment
        does not heal.
        """
        if self.breaker.open:
            return None
        if self.backend == DEFAULT_BACKEND and (
            workers <= 1 or n_configs <= 1
        ):
            return None
        return create_backend(
            self.backend,
            workers=workers,
            telemetry=self.telemetry,
            mp_context=self.mp_context,
            options=self.backend_options,
        )

    def _execute(
        self, configs: List[CampaignConfig], workers: int
    ) -> "Tuple[List[Tuple[Trace, str]], int]":
        """Run the given configs through the backend, falling back inline.

        Returns ``([(trace, executor_label), ...], workers_used)`` in
        input order.
        """
        digests = [config_digest(c) for c in configs]
        results: List[Optional[Tuple[Trace, str]]] = [None] * len(configs)
        dispatched = 0
        serial_backend = False
        backend = self._select_backend(len(configs), workers)
        if backend is not None:
            serial_backend = backend.capabilities.serial
            try:
                self._execute_waves(backend, configs, digests, results)
            finally:
                backend.close()
            dispatched = sum(1 for r in results if r is not None)
        for i, config in enumerate(configs):
            if results[i] is None:
                results[i] = (
                    self._simulate_inline(config, digests[i]),
                    "inline",
                )
        if not dispatched or serial_backend:
            return list(results), 1
        return list(results), workers

    def _simulate_inline(self, config: CampaignConfig, digest: str) -> Trace:
        """In-process attempt loop: retry with backoff, then re-raise.

        The guaranteed-completion path: runs when no backend was
        selected, after the circuit opened, or for attempts whose
        backend retry budget ran dry — re-raising the genuine error if
        it persists, so real failures still surface with their real
        exception.
        """
        retry = self.resilience.retry
        chaos = self.resilience.chaos
        for attempt in range(retry.max_attempts):
            try:
                return _simulate_task(
                    _SimTask(
                        config=config,
                        digest=digest,
                        attempt=attempt,
                        chaos=chaos,
                        subprocess=False,
                    ),
                    telemetry=self.telemetry,
                )
            except Exception as err:
                if not retry.retryable(attempt):
                    raise
                self._note_retry(digest, attempt, type(err).__name__)
                retry.backoff.sleep(digest, attempt)
        raise AssertionError("unreachable: retry loop exited")  # pragma: no cover

    def _execute_waves(
        self,
        backend: ExecutionBackend,
        configs: List[CampaignConfig],
        digests: List[str],
        results: List[Optional[Tuple[Trace, str]]],
    ) -> None:
        """Dispatch waves of attempts until done, dead, or circuit-open.

        Backend-agnostic policy loop.  Fills ``results`` in place;
        indices still ``None`` on return are the inline fallback's
        responsibility (budget exhausted or breaker open), so the sweep
        always completes and real errors still surface — from the
        inline path, with the genuine exception.

        Outcome kinds map to recovery actions: ``"error"`` retries in
        place (the worker survived); ``"lost"`` and ``"timeout"`` mark
        the backend broken — it is hard-killed, the breaker records a
        failure, and a seeded backoff precedes the respawn.
        """
        retry = self.resilience.retry
        chaos = self.resilience.chaos
        metrics = self.metrics
        label = backend.executor_label
        attempts = [0] * len(configs)
        pending = list(range(len(configs)))
        wave = 0
        respawn_needed = False
        while pending and not self.breaker.open:
            if respawn_needed:
                metrics.counter("resilience_worker_respawns_total").inc()
                respawn_needed = False
            tasks = [
                TaskSpec(
                    config=configs[i],
                    digest=digests[i],
                    attempt=attempts[i],
                    chaos=chaos,
                )
                for i in pending
            ]
            with maybe_span(
                self.telemetry,
                "backend.wave",
                backend=backend.name,
                wave=wave,
                tasks=len(tasks),
            ):
                try:
                    handle = backend.submit_wave(tasks)
                except BackendUnavailable:
                    if wave == 0:
                        # Backend never came up (e.g. a sandbox without
                        # /dev/shm): degrade silently to the inline
                        # fallback without tripping the breaker.
                        return
                    opened = self.breaker.record_failure()
                    if opened:
                        metrics.counter(
                            "resilience_circuit_open_total"
                        ).inc()
                    backend.kill()
                    retry.backoff.sleep("pool-respawn", wave)
                    respawn_needed = True
                    wave += 1
                    continue
                metrics.counter(
                    "backend_dispatch_total", backend=backend.name
                ).inc(len(tasks))
                timeout_s = (
                    retry.timeout_s
                    if backend.capabilities.supports_timeout
                    else None
                )
                outcomes = backend.poll(handle, timeout_s=timeout_s)
            failed: List[int] = []
            broken = False
            for outcome in outcomes:
                i = pending[outcome.index]
                if outcome.kind == "ok":
                    results[i] = (outcome.trace, label)
                    continue
                failed.append(i)
                if outcome.kind == "timeout":
                    metrics.counter("resilience_timeouts_total").inc()
                    broken = True  # hung worker: backend must die
                elif outcome.kind == "lost":
                    broken = True  # dead worker took the backend down
                # "error": attempt raised; the worker survives.
            pending = []
            for i in failed:
                if retry.retryable(attempts[i]):
                    self._note_retry(
                        digests[i], attempts[i], "pool-attempt-failed"
                    )
                    attempts[i] += 1
                    pending.append(i)
                # else: leave results[i] None for the inline fallback,
                # which re-raises the genuine error if it persists.
            if broken:
                opened = self.breaker.record_failure()
                if opened:
                    metrics.counter("resilience_circuit_open_total").inc()
                backend.kill()
                retry.backoff.sleep("pool-respawn", wave)
                respawn_needed = True
            else:
                self.breaker.record_success()
            wave += 1


def run_campaigns(
    configs: Sequence[CampaignConfig],
    options: Optional[RunOptions] = None,
    *,
    max_workers: Optional[int] = UNSET,
    cache: Union[TraceCache, bool, None] = UNSET,
    checkpoint: Optional[CampaignCheckpoint] = None,
) -> List[Trace]:
    """One-call sweep: pool + cache with defaults; results in input order.

    ``options`` is the supported configuration surface
    (:class:`repro.RunOptions`), including backend selection
    (``RunOptions(backend="work-queue", backend_options={...})``); the
    ``max_workers=``/``cache=`` keywords are the deprecated
    pre-``RunOptions`` spelling and emit a :class:`DeprecationWarning`.
    ``checkpoint`` (or ``options.checkpoint_dir``) makes the sweep
    crash-safe and resumable on any backend.
    """
    opts = resolve_options(
        options,
        "run_campaigns",
        renames={"max_workers": "workers"},
        max_workers=max_workers,
        cache=cache,
    )
    return CampaignPool(options=opts).run(configs, checkpoint=checkpoint)


def seed_sweep_configs(
    base: CampaignConfig, seeds: Sequence[int]
) -> List[CampaignConfig]:
    """Derive one config per seed from a base config (the common sweep)."""
    return [replace(base, seed=int(seed)) for seed in seeds]
