"""Parallel campaign execution: fan configs across worker processes.

``CampaignPool`` is the sweep engine behind every multi-campaign workload
in the repository — multi-seed validation sweeps, ablation pairs, and
checkpoint/size grids.  Semantics:

* **Deterministic ordering** — results come back in input order no matter
  how workers interleave, so a pooled sweep is a drop-in replacement for
  a serial list comprehension.
* **Cache first** — each config is looked up in the content-addressed
  :class:`~repro.runtime.cache.TraceCache` before any work is dispatched;
  only misses are simulated, and fresh results are written back.
* **Graceful degradation** — with one usable core, a single miss, or a
  broken ``multiprocessing`` environment, the pool runs in-process with
  identical results (campaign determinism is seeded, not scheduling-
  dependent).

Each returned trace carries a ``metadata["runtime"]`` block (wall time,
events executed, events/sec, source, executor) and ``pool.last_stats``
aggregates the sweep (hits, misses, workers, events/sec) so speedups are
measurable, not anecdotal.
"""

import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

from repro.campaign import CampaignConfig, run_campaign
from repro.runtime.cache import TraceCache
from repro.workload.trace import Trace


def _simulate(config: CampaignConfig) -> Trace:
    """Module-level worker body (must be picklable for multiprocessing)."""
    return run_campaign(config)


@dataclass(frozen=True)
class SweepStats:
    """Aggregate accounting of one ``CampaignPool.run`` call."""

    campaigns: int
    cache_hits: int
    simulated: int
    workers: int
    wall_time_s: float
    events_executed: int

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_executed / self.wall_time_s

    def render(self) -> str:
        return (
            f"{self.campaigns} campaigns in {self.wall_time_s:.2f}s "
            f"({self.cache_hits} cache hits, {self.simulated} simulated "
            f"on {self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.events_per_sec:,.0f} events/s)"
        )


class CampaignPool:
    """Runs batches of campaigns across processes, through the cache."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Union[TraceCache, bool, None] = None,
        mp_context: Optional[str] = None,
    ):
        """
        Args:
            max_workers: Upper bound on worker processes.  Defaults to the
                machine's CPU count; ``1`` forces in-process execution.
            cache: A :class:`TraceCache`, ``None`` for the default cache
                (honors ``REPRO_TRACE_CACHE``), or ``False`` to disable
                caching for this pool.
            mp_context: multiprocessing start method (``"fork"``/
                ``"spawn"``); ``None`` uses the platform default.
        """
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        if cache is False:
            self.cache: Optional[TraceCache] = None
        elif cache is None or cache is True:
            self.cache = TraceCache()
        else:
            self.cache = cache
        self.mp_context = mp_context
        self.last_stats: Optional[SweepStats] = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_count(self, n_misses: int) -> int:
        limit = self.max_workers
        if limit is None:
            limit = os.cpu_count() or 1
        return max(1, min(limit, n_misses))

    def run(self, configs: Sequence[CampaignConfig]) -> List[Trace]:
        """Simulate (or load) every config; results in input order."""
        t0 = time.perf_counter()
        configs = list(configs)
        results: List[Optional[Trace]] = [None] * len(configs)
        miss_indices: List[int] = []
        hits = 0
        for i, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                hits += 1
            else:
                miss_indices.append(i)

        workers = self._worker_count(len(miss_indices))
        if miss_indices:
            miss_configs = [configs[i] for i in miss_indices]
            traces, workers = self._execute(miss_configs, workers)
            for i, trace in zip(miss_indices, traces):
                runtime = dict(trace.metadata.get("runtime", {}))
                runtime["executor"] = "process" if workers > 1 else "inline"
                trace.metadata["runtime"] = runtime
                if self.cache is not None:
                    self.cache.put(configs[i], trace)
                results[i] = trace

        wall = time.perf_counter() - t0
        events = sum(
            int(t.metadata.get("runtime", {}).get("events_executed", 0))
            for t in results
            if t is not None
        )
        self.last_stats = SweepStats(
            campaigns=len(configs),
            cache_hits=hits,
            simulated=len(miss_indices),
            workers=workers if miss_indices else 0,
            wall_time_s=wall,
            events_executed=events,
        )
        return [t for t in results if t is not None]

    def _execute(
        self, configs: List[CampaignConfig], workers: int
    ) -> "tuple[List[Trace], int]":
        """Run the given configs, preferring processes, falling back inline."""
        if workers > 1 and len(configs) > 1:
            try:
                ctx = (
                    multiprocessing.get_context(self.mp_context)
                    if self.mp_context
                    else multiprocessing.get_context()
                )
                with ctx.Pool(processes=workers) as pool:
                    # map() preserves input order, which is what makes the
                    # pooled sweep bit-compatible with a serial loop.
                    return list(pool.map(_simulate, configs)), workers
            except (OSError, ValueError, RuntimeError):
                pass  # e.g. sandboxed environments without /dev/shm
        return [_simulate(c) for c in configs], 1


def run_campaigns(
    configs: Sequence[CampaignConfig],
    max_workers: Optional[int] = None,
    cache: Union[TraceCache, bool, None] = None,
) -> List[Trace]:
    """One-call sweep: pool + cache with defaults; results in input order."""
    return CampaignPool(max_workers=max_workers, cache=cache).run(configs)


def seed_sweep_configs(
    base: CampaignConfig, seeds: Sequence[int]
) -> List[CampaignConfig]:
    """Derive one config per seed from a base config (the common sweep)."""
    return [replace(base, seed=int(seed)) for seed in seeds]
