"""Parallel campaign execution: fan configs across worker processes.

``CampaignPool`` is the sweep engine behind every multi-campaign workload
in the repository — multi-seed validation sweeps, ablation pairs, and
checkpoint/size grids.  Semantics:

* **Deterministic ordering** — results come back in input order no matter
  how workers interleave, so a pooled sweep is a drop-in replacement for
  a serial list comprehension.
* **Cache first** — each config is looked up in the content-addressed
  :class:`~repro.runtime.cache.TraceCache` before any work is dispatched;
  only misses are simulated, and fresh results are written back.
* **Graceful degradation** — with one usable core, a single miss, or a
  broken ``multiprocessing`` environment, the pool runs in-process with
  identical results (campaign determinism is seeded, not scheduling-
  dependent).

Each returned trace carries a ``metadata["runtime"]`` block (wall time,
events executed, events/sec, source, executor) and ``pool.last_stats``
aggregates the sweep (hits, misses, workers, events/sec) so speedups are
measurable, not anecdotal.
"""

import multiprocessing
import os
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

from repro.campaign import CampaignConfig, run_campaign
from repro.obs.metrics import MetricsRegistry
from repro.runtime.cache import TraceCache
from repro.workload.trace import Trace

#: Registry counters the pool maintains; ``last_stats`` is rebuilt from
#: the per-run deltas of exactly these.
_POOL_COUNTERS = (
    "pool_campaigns_total",
    "pool_cache_hits_total",
    "pool_simulated_total",
    "pool_events_executed_total",
)


def _simulate(config: CampaignConfig) -> Trace:
    """Module-level worker body (must be picklable for multiprocessing)."""
    return run_campaign(config)


@dataclass(frozen=True)
class SweepStats:
    """Aggregate accounting of one ``CampaignPool.run`` call."""

    campaigns: int
    cache_hits: int
    simulated: int
    workers: int
    wall_time_s: float
    events_executed: int

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_executed / self.wall_time_s

    def render(self) -> str:
        return (
            f"{self.campaigns} campaigns in {self.wall_time_s:.2f}s "
            f"({self.cache_hits} cache hits, {self.simulated} simulated "
            f"on {self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.events_per_sec:,.0f} events/s)"
        )


class CampaignPool:
    """Runs batches of campaigns across processes, through the cache."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Union[TraceCache, bool, None] = None,
        mp_context: Optional[str] = None,
        telemetry=None,
    ):
        """
        Args:
            max_workers: Upper bound on worker processes.  Defaults to the
                machine's CPU count; ``1`` forces in-process execution.
            cache: A :class:`TraceCache`, ``None`` for the default cache
                (honors ``REPRO_TRACE_CACHE``), or ``False`` to disable
                caching for this pool.
            mp_context: multiprocessing start method (``"fork"``/
                ``"spawn"``); ``None`` uses the platform default.
            telemetry: Optional :class:`repro.obs.Telemetry`; the pool
                accounts into its registry (and emits dispatch events when
                the tracer is enabled).  Without one, the pool still owns
                a private :class:`MetricsRegistry` — ``last_stats`` is
                always derived from registry counters.
        """
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        if cache is False:
            self.cache: Optional[TraceCache] = None
        elif cache is None or cache is True:
            self.cache = TraceCache()
        else:
            self.cache = cache
        self.mp_context = mp_context
        self.telemetry = telemetry
        self.metrics: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else MetricsRegistry()
        )
        self.last_stats: Optional[SweepStats] = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_count(self, n_misses: int) -> int:
        limit = self.max_workers
        if limit is None:
            limit = os.cpu_count() or 1
        return max(1, min(limit, n_misses))

    def run(self, configs: Sequence[CampaignConfig]) -> List[Trace]:
        """Simulate (or load) every config; results in input order.

        All accounting flows through the metrics registry (counters are
        cumulative across ``run`` calls); ``last_stats`` is rebuilt from
        this run's counter deltas, so the registry is the single source
        of truth for sweep statistics.
        """
        metrics = self.metrics
        baseline = {
            name: metrics.counter(name).value for name in _POOL_COUNTERS
        }
        configs = list(configs)
        results: List[Optional[Trace]] = [None] * len(configs)
        miss_indices: List[int] = []
        with metrics.timer("pool_sweep_wall_seconds") as sweep_timer:
            for i, config in enumerate(configs):
                cached = (
                    self.cache.get(config) if self.cache is not None else None
                )
                if cached is not None:
                    results[i] = cached
                    metrics.counter("pool_cache_hits_total").inc()
                else:
                    miss_indices.append(i)

            workers = self._worker_count(len(miss_indices))
            if miss_indices:
                miss_configs = [configs[i] for i in miss_indices]
                traces, workers = self._execute(miss_configs, workers)
                for i, trace in zip(miss_indices, traces):
                    runtime = dict(trace.metadata.get("runtime", {}))
                    runtime["executor"] = "process" if workers > 1 else "inline"
                    trace.metadata["runtime"] = runtime
                    if self.cache is not None:
                        self.cache.put(configs[i], trace)
                    results[i] = trace
                    metrics.counter("pool_simulated_total").inc()
                    metrics.histogram("campaign_wall_seconds").observe(
                        float(runtime.get("wall_time_s", 0.0))
                    )
            metrics.counter("pool_campaigns_total").inc(len(configs))
            metrics.counter("pool_events_executed_total").inc(
                sum(
                    int(t.metadata.get("runtime", {}).get("events_executed", 0))
                    for t in results
                    if t is not None
                )
            )
            metrics.gauge("pool_workers").set(workers if miss_indices else 0)

        def delta(name: str) -> int:
            return int(metrics.counter(name).value - baseline[name])

        self.last_stats = SweepStats(
            campaigns=delta("pool_campaigns_total"),
            cache_hits=delta("pool_cache_hits_total"),
            simulated=delta("pool_simulated_total"),
            workers=int(metrics.gauge("pool_workers").value),
            wall_time_s=sweep_timer.elapsed,
            events_executed=delta("pool_events_executed_total"),
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "pool.sweep",
                f"{len(configs)}-campaigns",
                0.0,
                campaigns=self.last_stats.campaigns,
                cache_hits=self.last_stats.cache_hits,
                simulated=self.last_stats.simulated,
                workers=self.last_stats.workers,
                wall_time_s=self.last_stats.wall_time_s,
            )
        return [t for t in results if t is not None]

    def _execute(
        self, configs: List[CampaignConfig], workers: int
    ) -> "tuple[List[Trace], int]":
        """Run the given configs, preferring processes, falling back inline."""
        if workers > 1 and len(configs) > 1:
            try:
                ctx = (
                    multiprocessing.get_context(self.mp_context)
                    if self.mp_context
                    else multiprocessing.get_context()
                )
                with ctx.Pool(processes=workers) as pool:
                    # map() preserves input order, which is what makes the
                    # pooled sweep bit-compatible with a serial loop.
                    return list(pool.map(_simulate, configs)), workers
            except (OSError, ValueError, RuntimeError):
                pass  # e.g. sandboxed environments without /dev/shm
        return [_simulate(c) for c in configs], 1


def run_campaigns(
    configs: Sequence[CampaignConfig],
    max_workers: Optional[int] = None,
    cache: Union[TraceCache, bool, None] = None,
) -> List[Trace]:
    """One-call sweep: pool + cache with defaults; results in input order."""
    return CampaignPool(max_workers=max_workers, cache=cache).run(configs)


def seed_sweep_configs(
    base: CampaignConfig, seeds: Sequence[int]
) -> List[CampaignConfig]:
    """Derive one config per seed from a base config (the common sweep)."""
    return [replace(base, seed=int(seed)) for seed in seeds]
