"""Parallel campaign execution: fan configs across worker processes.

``CampaignPool`` is the sweep engine behind every multi-campaign workload
in the repository — multi-seed validation sweeps, ablation pairs, and
checkpoint/size grids.  Semantics:

* **Deterministic ordering** — results come back in input order no matter
  how workers interleave, so a pooled sweep is a drop-in replacement for
  a serial list comprehension.
* **Cache first** — each config is looked up in the content-addressed
  :class:`~repro.runtime.cache.TraceCache` before any work is dispatched;
  only misses are simulated, and fresh results are written back.
* **Failure is the steady state** — the pool treats its own workers the
  way the paper's clusters treat nodes.  Every config carries a retry
  budget with exponential, seeded-jitter backoff; a worker that dies
  mid-seed (OOM-kill, segfault, chaos injection) is detected through the
  broken executor, the executor is respawned, and the lost attempts are
  re-dispatched; a per-attempt timeout reclaims hung workers; and a
  circuit breaker degrades to inline execution after repeated pool-level
  failures rather than fighting a broken ``multiprocessing`` environment.
  All recovery actions are accounted in ``resilience_*`` metrics.
* **Crash-safe sweeps** — pass a
  :class:`~repro.resilience.checkpoint.CampaignCheckpoint` (or
  ``RunOptions(checkpoint_dir=...)``) and every completed config is
  persisted (manifest + partial results, both atomic); re-running the
  interrupted sweep resumes bit-identically.
* **Graceful degradation** — with one usable core, a single miss, or a
  broken ``multiprocessing`` environment, the pool runs in-process with
  identical results (campaign determinism is seeded, not scheduling-
  dependent).

Each returned trace carries a ``metadata["runtime"]`` block (wall time,
events executed, events/sec, source, executor) and ``pool.last_stats``
aggregates the sweep (hits, misses, retries, workers, events/sec) so
speedups and recoveries are measurable, not anecdotal.
"""

import concurrent.futures
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.campaign import CampaignConfig, run_campaign
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import maybe_span
from repro.options import RunOptions, UNSET, resolve_options
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.config import DEFAULT_RESILIENCE, ResilienceConfig
from repro.resilience.retry import CircuitBreaker
from repro.runtime.cache import TraceCache
from repro.runtime.hashing import config_digest
from repro.workload.trace import Trace

#: Registry counters the pool maintains; ``last_stats`` is rebuilt from
#: the per-run deltas of exactly these.
_POOL_COUNTERS = (
    "pool_campaigns_total",
    "pool_cache_hits_total",
    "pool_simulated_total",
    "pool_events_executed_total",
    "pool_resumed_total",
    "resilience_retries_total",
    "resilience_worker_respawns_total",
)


@dataclass(frozen=True)
class _SimTask:
    """One dispatchable simulation attempt (picklable for workers)."""

    config: CampaignConfig
    digest: str
    attempt: int
    chaos: Optional[object] = None
    subprocess: bool = True


def _simulate_task(task: _SimTask, telemetry=None) -> Trace:
    """Module-level worker body (must be picklable for multiprocessing).

    Chaos worker-death injection happens here — inside the attempt, the
    way a real OOM-kill lands — so the parent only ever observes the
    broken executor (subprocess) or :class:`WorkerKilled` (inline).

    ``telemetry`` is only ever passed on the inline path: worker
    processes cannot stream telemetry back (and a live bundle does not
    pickle), but in-process attempts observe into the pool's bundle, so
    an instrumented ``max_workers=1`` sweep profiles as the full
    sweep → campaign → phase span tree.
    """
    if task.chaos is not None:
        task.chaos.kill_worker(task.digest, task.attempt, task.subprocess)
    if telemetry is not None:
        return run_campaign(task.config, options=RunOptions(telemetry=telemetry))
    return run_campaign(task.config)


def _simulate(config: CampaignConfig) -> Trace:
    """Back-compat worker body: one plain attempt, no chaos."""
    return run_campaign(config)


@dataclass(frozen=True)
class SweepStats:
    """Aggregate accounting of one ``CampaignPool.run`` call."""

    campaigns: int
    cache_hits: int
    simulated: int
    workers: int
    wall_time_s: float
    events_executed: int
    resumed: int = 0
    retries: int = 0
    respawns: int = 0

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_executed / self.wall_time_s

    def render(self) -> str:
        recovered = ""
        if self.retries or self.respawns or self.resumed:
            recovered = (
                f", recovered: {self.retries} retries / "
                f"{self.respawns} respawns / {self.resumed} resumed"
            )
        return (
            f"{self.campaigns} campaigns in {self.wall_time_s:.2f}s "
            f"({self.cache_hits} cache hits, {self.simulated} simulated "
            f"on {self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.events_per_sec:,.0f} events/s{recovered})"
        )


class CampaignPool:
    """Runs batches of campaigns across processes, through the cache."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Union[TraceCache, bool, None] = UNSET,
        mp_context: Optional[str] = None,
        telemetry=None,
        resilience: Optional[ResilienceConfig] = None,
        options: Optional[RunOptions] = None,
    ):
        """
        Args:
            max_workers: Upper bound on worker processes.  Defaults to the
                machine's CPU count; ``1`` forces in-process execution.
            cache: A :class:`TraceCache`, ``None`` for the default cache
                (honors ``REPRO_TRACE_CACHE``), or ``False`` to disable
                caching for this pool.
            mp_context: multiprocessing start method (``"fork"``/
                ``"spawn"``); ``None`` uses the platform default.
            telemetry: Optional :class:`repro.obs.Telemetry`; the pool
                accounts into its registry (and emits dispatch events when
                the tracer is enabled).  Without one, the pool still owns
                a private :class:`MetricsRegistry` — ``last_stats`` is
                always derived from registry counters.
            resilience: Recovery posture (retry budget, chaos injection,
                circuit breaker); ``None`` uses the default policy.
            options: A :class:`repro.RunOptions`; fills any of the above
                that were not passed explicitly (workers, cache +
                cache_dir, telemetry, resilience, checkpoint_dir).
        """
        opts = options if options is not None else RunOptions()
        if max_workers is None:
            max_workers = opts.workers
        if cache is UNSET:
            cache = opts.cache
        if telemetry is None:
            telemetry = opts.telemetry
        if resilience is None:
            resilience = opts.resilience or DEFAULT_RESILIENCE
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.resilience = resilience
        if cache is False:
            self.cache: Optional[TraceCache] = None
        elif cache is None or cache is True:
            self.cache = TraceCache(
                root=opts.cache_dir,
                verify=resilience.verify_cache_integrity,
            )
        else:
            self.cache = cache
        self.mp_context = mp_context
        self.telemetry = telemetry
        self.metrics: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else MetricsRegistry()
        )
        self.checkpoint_dir = opts.checkpoint_dir
        #: One breaker per pool: once open, this pool never goes back to
        #: pooled execution (a broken mp environment does not heal).
        self.breaker = CircuitBreaker(threshold=resilience.circuit_threshold)
        self.last_stats: Optional[SweepStats] = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_count(self, n_misses: int) -> int:
        limit = self.max_workers
        if limit is None:
            limit = os.cpu_count() or 1
        return max(1, min(limit, n_misses))

    def run(
        self,
        configs: Sequence[CampaignConfig],
        checkpoint: Optional[CampaignCheckpoint] = None,
    ) -> List[Trace]:
        """Simulate (or load) every config; results in input order.

        All accounting flows through the metrics registry (counters are
        cumulative across ``run`` calls); ``last_stats`` is rebuilt from
        this run's counter deltas, so the registry is the single source
        of truth for sweep statistics.

        ``checkpoint`` (or a pool built with ``options.checkpoint_dir``)
        makes the sweep crash-safe: completed configs are persisted as
        they finish and an interrupted sweep, re-run with the same
        checkpoint, resumes bit-identically.
        """
        metrics = self.metrics
        baseline = {
            name: metrics.counter(name).value for name in _POOL_COUNTERS
        }
        configs = list(configs)
        if checkpoint is None and self.checkpoint_dir is not None:
            checkpoint = CampaignCheckpoint(self.checkpoint_dir)
        if checkpoint is not None:
            checkpoint.begin(configs)
            if getattr(checkpoint, "telemetry", None) is None:
                # Checkpoint writes profile into this sweep's spans.
                checkpoint.telemetry = self.telemetry
        chaos = self.resilience.chaos
        results: List[Optional[Trace]] = [None] * len(configs)
        miss_indices: List[int] = []
        with maybe_span(
            self.telemetry, "sweep", campaigns=len(configs)
        ), metrics.timer("pool_sweep_wall_seconds") as sweep_timer:
            for i, config in enumerate(configs):
                restored = (
                    checkpoint.load(config) if checkpoint is not None else None
                )
                if restored is not None:
                    results[i] = restored
                    metrics.counter("pool_resumed_total").inc()
                    continue
                if self.cache is not None and chaos is not None:
                    # Chaos models a torn write / bit rot landing between
                    # the entry's write and this read.
                    chaos.corrupt_before_read(self.cache, config)
                cached = (
                    self.cache.get(config) if self.cache is not None else None
                )
                if cached is not None:
                    results[i] = cached
                    metrics.counter("pool_cache_hits_total").inc()
                    if checkpoint is not None:
                        checkpoint.record(config, cached)
                else:
                    miss_indices.append(i)

            workers = self._worker_count(len(miss_indices))
            if miss_indices:
                miss_configs = [configs[i] for i in miss_indices]
                executed, workers = self._execute(miss_configs, workers)
                recorded = 0
                for i, (trace, executor) in zip(miss_indices, executed):
                    runtime = dict(trace.metadata.get("runtime", {}))
                    runtime["executor"] = executor
                    trace.metadata["runtime"] = runtime
                    if self.cache is not None:
                        self.cache.put(configs[i], trace)
                    if checkpoint is not None:
                        recorded += 1
                        checkpoint.record(
                            configs[i],
                            trace,
                            flush=(
                                recorded % self.resilience.checkpoint_every
                                == 0
                            ),
                        )
                    results[i] = trace
                    metrics.counter("pool_simulated_total").inc()
                    metrics.histogram("campaign_wall_seconds").observe(
                        float(runtime.get("wall_time_s", 0.0))
                    )
                if checkpoint is not None:
                    checkpoint.flush()
            metrics.counter("pool_campaigns_total").inc(len(configs))
            metrics.counter("pool_events_executed_total").inc(
                sum(
                    int(t.metadata.get("runtime", {}).get("events_executed", 0))
                    for t in results
                    if t is not None
                )
            )
            metrics.gauge("pool_workers").set(workers if miss_indices else 0)

        def delta(name: str) -> int:
            return int(metrics.counter(name).value - baseline[name])

        self.last_stats = SweepStats(
            campaigns=delta("pool_campaigns_total"),
            cache_hits=delta("pool_cache_hits_total"),
            simulated=delta("pool_simulated_total"),
            workers=int(metrics.gauge("pool_workers").value),
            wall_time_s=sweep_timer.elapsed,
            events_executed=delta("pool_events_executed_total"),
            resumed=delta("pool_resumed_total"),
            retries=delta("resilience_retries_total"),
            respawns=delta("resilience_worker_respawns_total"),
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "pool.sweep",
                f"{len(configs)}-campaigns",
                0.0,
                campaigns=self.last_stats.campaigns,
                cache_hits=self.last_stats.cache_hits,
                simulated=self.last_stats.simulated,
                workers=self.last_stats.workers,
                wall_time_s=self.last_stats.wall_time_s,
                retries=self.last_stats.retries,
                respawns=self.last_stats.respawns,
                resumed=self.last_stats.resumed,
            )
        return [t for t in results if t is not None]

    # ------------------------------------------------------------------
    # resilient dispatch
    # ------------------------------------------------------------------
    def _note_retry(self, digest: str, attempt: int, reason: str) -> None:
        self.metrics.counter("resilience_retries_total").inc()
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "resilience.retry",
                digest[:12],
                0.0,
                attempt=attempt,
                reason=reason,
            )

    def _execute(
        self, configs: List[CampaignConfig], workers: int
    ) -> "Tuple[List[Tuple[Trace, str]], int]":
        """Run the given configs, preferring processes, falling back inline.

        Returns ``([(trace, executor_label), ...], workers_used)`` in
        input order.
        """
        digests = [config_digest(c) for c in configs]
        results: List[Optional[Tuple[Trace, str]]] = [None] * len(configs)
        if workers > 1 and len(configs) > 1 and not self.breaker.open:
            self._execute_pooled(configs, digests, results, workers)
        pooled = sum(1 for r in results if r is not None)
        for i, config in enumerate(configs):
            if results[i] is None:
                results[i] = (
                    self._simulate_inline(config, digests[i]),
                    "inline",
                )
        return list(results), workers if pooled else 1

    def _simulate_inline(self, config: CampaignConfig, digest: str) -> Trace:
        """In-process attempt loop: retry with backoff, then re-raise."""
        retry = self.resilience.retry
        chaos = self.resilience.chaos
        for attempt in range(retry.max_attempts):
            try:
                return _simulate_task(
                    _SimTask(
                        config=config,
                        digest=digest,
                        attempt=attempt,
                        chaos=chaos,
                        subprocess=False,
                    ),
                    telemetry=self.telemetry,
                )
            except Exception as err:
                if not retry.retryable(attempt):
                    raise
                self._note_retry(digest, attempt, type(err).__name__)
                retry.backoff.sleep(digest, attempt)
        raise AssertionError("unreachable: retry loop exited")  # pragma: no cover

    def _new_executor(self, workers: int):
        ctx = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else multiprocessing.get_context()
        )
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx
        )

    @staticmethod
    def _kill_executor(executor) -> None:
        """Tear an executor down hard, terminating hung workers."""
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError):  # pragma: no cover - best effort
                pass

    def _execute_pooled(
        self,
        configs: List[CampaignConfig],
        digests: List[str],
        results: List[Optional[Tuple[Trace, str]]],
        workers: int,
    ) -> None:
        """Dispatch waves of attempts until done, dead, or circuit-open.

        Fills ``results`` in place; indices still ``None`` on return are
        the inline fallback's responsibility (budget exhausted or breaker
        open), so the sweep always completes and real errors still
        surface — from the inline path, with the genuine exception.
        """
        retry = self.resilience.retry
        chaos = self.resilience.chaos
        metrics = self.metrics
        attempts = [0] * len(configs)
        pending = [i for i in range(len(configs))]
        executor = None
        wave = 0
        try:
            executor = self._new_executor(workers)
        except (OSError, ValueError, RuntimeError):
            return  # e.g. sandboxed environments without /dev/shm
        try:
            while pending and not self.breaker.open:
                futures = {}
                try:
                    if executor is None:
                        executor = self._new_executor(workers)
                        metrics.counter(
                            "resilience_worker_respawns_total"
                        ).inc()
                    for i in pending:
                        futures[i] = executor.submit(
                            _simulate_task,
                            _SimTask(
                                config=configs[i],
                                digest=digests[i],
                                attempt=attempts[i],
                                chaos=chaos,
                                subprocess=True,
                            ),
                        )
                except (OSError, ValueError, RuntimeError):
                    self.breaker.record_failure()
                    if executor is not None:
                        self._kill_executor(executor)
                        executor = None
                    continue
                wave_deadline = (
                    time.monotonic() + retry.timeout_s
                    if retry.timeout_s is not None
                    else None
                )
                failed: List[int] = []
                broken = False
                for i in pending:
                    remaining = None
                    if wave_deadline is not None:
                        remaining = max(0.0, wave_deadline - time.monotonic())
                    try:
                        trace = futures[i].result(timeout=remaining)
                        results[i] = (trace, "process")
                    except concurrent.futures.TimeoutError:
                        metrics.counter("resilience_timeouts_total").inc()
                        failed.append(i)
                        broken = True  # hung worker: executor must die
                    except concurrent.futures.BrokenExecutor:
                        failed.append(i)
                        broken = True  # dead worker took the executor down
                    except Exception:
                        failed.append(i)  # attempt raised; worker survives
                pending = []
                for i in failed:
                    if retry.retryable(attempts[i]):
                        self._note_retry(
                            digests[i], attempts[i], "pool-attempt-failed"
                        )
                        attempts[i] += 1
                        pending.append(i)
                    # else: leave results[i] None for the inline fallback,
                    # which re-raises the genuine error if it persists.
                if broken:
                    opened = self.breaker.record_failure()
                    if opened:
                        metrics.counter("resilience_circuit_open_total").inc()
                    self._kill_executor(executor)
                    executor = None
                    retry.backoff.sleep("pool-respawn", wave)
                else:
                    self.breaker.record_success()
                wave += 1
        finally:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)


def run_campaigns(
    configs: Sequence[CampaignConfig],
    options: Optional[RunOptions] = None,
    *,
    max_workers: Optional[int] = UNSET,
    cache: Union[TraceCache, bool, None] = UNSET,
    checkpoint: Optional[CampaignCheckpoint] = None,
) -> List[Trace]:
    """One-call sweep: pool + cache with defaults; results in input order.

    ``options`` is the supported configuration surface
    (:class:`repro.RunOptions`); the ``max_workers=``/``cache=`` keywords
    are the deprecated pre-``RunOptions`` spelling and emit a
    :class:`DeprecationWarning`.  ``checkpoint`` (or
    ``options.checkpoint_dir``) makes the sweep crash-safe and
    resumable.
    """
    opts = resolve_options(
        options,
        "run_campaigns",
        renames={"max_workers": "workers"},
        max_workers=max_workers,
        cache=cache,
    )
    return CampaignPool(options=opts).run(configs, checkpoint=checkpoint)


def seed_sweep_configs(
    base: CampaignConfig, seeds: Sequence[int]
) -> List[CampaignConfig]:
    """Derive one config per seed from a base config (the common sweep)."""
    return [replace(base, seed=int(seed)) for seed in seeds]
