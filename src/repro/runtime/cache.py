"""Content-addressed on-disk trace cache.

Simulating a campaign is expensive; loading one is not.  The cache maps
``config_digest(config)`` — a stable hash of the fully-resolved campaign
config — to a serialized :class:`~repro.workload.trace.Trace`, so *any*
call site (benchmarks, examples, tests, the CLI) that asks for a
previously simulated configuration loads it instead of re-simulating.

Layout: ``<root>/v<CACHE_FORMAT_VERSION>/<digest[:2]>/<digest>.npz``
(entry format v2: compressed columnar blocks, no pickle) with transparent
fallback to the legacy ``<digest>.pkl`` pickle entries written by entry
format v1 — old cache directories keep serving hits, and the cache key
(``config_digest``) is unchanged.  Each entry stores the format/schema
stamps; a stamp mismatch or unreadable file is treated as a miss (and the
entry discarded), never as an error.

Integrity: every entry carries the trace's content digest
(``trace_digest``) in its stamps; reads recompute and compare, so silent
payload corruption (bit rot, a torn write that still parses) can never
serve a wrong trace.  A failed entry — unparseable, mis-stamped, or
digest-mismatched — is *quarantined* (moved under ``<root>/quarantine/``
and counted), treated as a miss, and rebuilt by the next ``put``; the
returned traces of the surrounding sweep are unaffected, which
``tests/resilience`` asserts under chaos-driven corruption.

Control knobs:

* ``REPRO_TRACE_CACHE=off`` (or ``0``/``no``/``false``/``disabled``)
  disables the cache process-wide.
* ``REPRO_TRACE_CACHE=/some/dir`` relocates it.
* ``TraceCache(enabled=False)`` / ``CampaignPool(cache=False)`` disable it
  per call site.
* ``TraceCache(verify=False)`` skips the digest re-check on read (the
  npz CRC still catches most corruption).
"""

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.core.columns import ColumnarTrace
from repro.runtime.hashing import (
    CACHE_FORMAT_VERSION,
    config_digest,
    trace_digest,
)
from repro.workload.trace import TRACE_SCHEMA_VERSION, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign import CampaignConfig

#: On-disk *entry* format (how a single cache file is encoded): 1 = pickle
#: of the ``to_dict()`` payload, 2 = pickle-free columnar npz.  Deliberately
#: separate from ``CACHE_FORMAT_VERSION`` (part of the cache *key*): bumping
#: the entry encoding must not invalidate digests or old directories —
#: v2 readers still load v1 entries.
CACHE_ENTRY_VERSION = 2

ENV_VAR = "REPRO_TRACE_CACHE"
_DISABLE_VALUES = frozenset({"off", "0", "no", "none", "false", "disabled"})


def cache_enabled_by_env() -> bool:
    """Whether the environment permits caching at all."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _DISABLE_VALUES


def default_cache_root() -> Path:
    """Resolve the cache directory from the environment.

    ``REPRO_TRACE_CACHE`` (when set to a path) wins; otherwise
    ``$XDG_CACHE_HOME/repro/traces`` or ``~/.cache/repro/traces``.
    """
    env = os.environ.get(ENV_VAR, "").strip()
    if env and env.lower() not in _DISABLE_VALUES:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


class TraceCache:
    """Content-addressed trace store with hit/miss accounting."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        enabled: Optional[bool] = None,
        telemetry=None,
        verify: bool = True,
        source_label: Optional[str] = "cache",
    ):
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = cache_enabled_by_env() if enabled is None else enabled
        #: Recompute the stored trace digest on every read and reject
        #: mismatches (quarantining the entry).  Legacy entries without a
        #: digest stamp are served unverified either way.
        self.verify = verify
        #: Stamped into ``metadata["runtime"]["source"]`` on every hit;
        #: ``None`` preserves whatever provenance the stored trace
        #: carried (the :class:`~repro.backends.artifacts.ArtifactStore`
        #: posture — a shard a remote worker simulated stays
        #: ``"simulated"``).
        self.source_label = source_label
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        #: obs.Telemetry bundle; hit/miss/write traffic is mirrored into
        #: its tracer + registry when enabled.  Reassignable per call site
        #: (the CLI routes each seed's cache traffic to that seed's stream).
        self.telemetry = telemetry

    def _observe(self, outcome: str, digest: str) -> None:
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            # sim_time 0.0: cache traffic happens outside simulation time.
            telemetry.tracer.emit(
                f"cache.{outcome}", digest[:12], 0.0, digest=digest
            )
            if outcome == "quarantine":
                telemetry.metrics.counter(
                    "resilience_cache_quarantined_total"
                ).inc()
                return
            plural = {"hit": "hits", "miss": "misses", "write": "writes"}
            telemetry.metrics.counter(
                f"trace_cache_{plural[outcome]}_total"
            ).inc()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, config: "CampaignConfig") -> Path:
        digest = config_digest(config)
        return self._entry_path(digest)

    def _entry_path(self, digest: str) -> Path:
        """Path of the primary (entry-format v2, npz) cache file."""
        return (
            self.root
            / f"v{CACHE_FORMAT_VERSION}"
            / digest[:2]
            / f"{digest}.npz"
        )

    def _legacy_path(self, digest: str) -> Path:
        """Path of an entry-format v1 pickle written by older builds."""
        return self._entry_path(digest).with_suffix(".pkl")

    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _quarantine(self, path: Path, digest: str) -> None:
        """Move a failed entry aside (never served again, kept for
        inspection) and account for it; falls back to unlink when the
        move itself fails."""
        target = self.quarantine_dir() / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return
        self.quarantined += 1
        self._observe("quarantine", digest)

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def _load_npz_entry(self, path: Path, digest: str) -> Trace:
        stamps = ColumnarTrace.read_extra(path) or {}
        if (
            stamps.get("cache_format") != CACHE_FORMAT_VERSION
            or stamps.get("trace_schema") != TRACE_SCHEMA_VERSION
            or stamps.get("digest") != digest
        ):
            raise ValueError("stale or mismatched cache entry")
        trace = ColumnarTrace.load_npz(path).to_trace()
        stored_sha = stamps.get("trace_sha")
        if self.verify and stored_sha is not None:
            actual = trace_digest(trace)
            if actual != stored_sha:
                raise ValueError(
                    f"cache entry integrity failure: stored trace digest "
                    f"{stored_sha[:12]} != recomputed {actual[:12]}"
                )
        return trace

    @staticmethod
    def _load_legacy_entry(path: Path, digest: str) -> Trace:
        with path.open("rb") as fh:
            entry = pickle.load(fh)
        if (
            entry.get("cache_format") != CACHE_FORMAT_VERSION
            or entry.get("trace_schema") != TRACE_SCHEMA_VERSION
            or entry.get("digest") != digest
        ):
            raise ValueError("stale or mismatched cache entry")
        return Trace.from_dict(entry["trace"])

    def get(self, config: "CampaignConfig") -> Optional[Trace]:
        """Return the cached trace for ``config``, or None on a miss.

        Entry-format v2 (npz) entries are preferred; a legacy v1 pickle
        under the same digest still serves a hit, so cache directories
        written by older builds remain valid.
        """
        if not self.enabled:
            return None
        return self.get_by_digest(config_digest(config))

    def get_by_digest(self, digest: str) -> Optional[Trace]:
        """Digest-keyed read: the entry machinery without config hashing.

        This is the surface :class:`~repro.backends.artifacts.ArtifactStore`
        shares across hosts — a caller holding only a content address
        (e.g. a work-queue dispatcher) loads the entry, with the same
        stamp checks, integrity verification, and quarantine treatment
        as a config-keyed read.
        """
        if not self.enabled:
            return None
        trace: Optional[Trace] = None
        for path, loader in (
            (self._entry_path(digest), self._load_npz_entry),
            (self._legacy_path(digest), self._load_legacy_entry),
        ):
            try:
                trace = loader(path, digest)
                break
            except FileNotFoundError:
                continue
            except Exception:
                # Corrupt, stale, or integrity-failed entry: quarantine
                # it (a miss, never an error) and keep looking.
                self._quarantine(path, digest)
        if trace is None:
            self.misses += 1
            self._observe("miss", digest)
            return None
        self.hits += 1
        self._observe("hit", digest)
        if self.source_label is not None:
            runtime = dict(trace.metadata.get("runtime", {}))
            runtime["source"] = self.source_label
            trace.metadata["runtime"] = runtime
        return trace

    def put(self, config: "CampaignConfig", trace: Trace) -> Optional[Path]:
        """Store ``trace`` under ``config``'s digest (atomic replace).

        Writes an entry-format v2 npz: the trace's columnar blocks plus
        the format/schema stamps, compressed, with no pickle anywhere.
        """
        if not self.enabled:
            return None
        return self.put_by_digest(config_digest(config), trace)

    def put_by_digest(self, digest: str, trace: Trace) -> Optional[Path]:
        """Digest-keyed write (see :meth:`get_by_digest`)."""
        if not self.enabled:
            return None
        path = self._entry_path(digest)
        stamps: Dict[str, Any] = {
            "cache_entry": CACHE_ENTRY_VERSION,
            "cache_format": CACHE_FORMAT_VERSION,
            "trace_schema": TRACE_SCHEMA_VERSION,
            "digest": digest,
            # Content digest of the stored trace: the read path recomputes
            # and compares, so a corrupted payload can never serve a hit.
            "trace_sha": trace_digest(trace),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                trace.columns.save_npz(fh, extra=stamps)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        self._observe("write", digest)
        return path

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"TraceCache({self.root}, {state}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def cached_run_campaign(
    config: "CampaignConfig", cache: Optional[TraceCache] = None
) -> Trace:
    """Drop-in for :func:`repro.run_campaign` that consults the cache.

    With the default cache (honoring ``REPRO_TRACE_CACHE``), the first
    call for a given fully-resolved config simulates and stores; every
    later call — from any process — loads.
    """
    from repro.campaign import run_campaign

    if cache is None:
        cache = TraceCache()
    trace = cache.get(config)
    if trace is not None:
        return trace
    trace = run_campaign(config)
    cache.put(config, trace)
    return trace
