"""BENCH_runtime.json — the repository's machine-readable perf trajectory.

Benchmarks that make a quantitative performance claim (cache-hit speedup,
columnar pipeline speedup, events/sec) append one record here so the
numbers accumulate across sessions instead of scrolling away in pytest
output.  The file lives at the repository root and is a single JSON
document::

    {
      "format_version": 1,
      "records": [
        {
          "bench": "columnar_trace",        # stable benchmark name
          "unix_time": 1754000000.0,        # time.time() at record
          "timestamp": "2026-08-05T12:00:00+00:00",  # same, ISO-8601 UTC
          "metrics": {...}                  # benchmark-specific scalars
        },
        ...
      ]
    }

``metrics`` is flat JSON (numbers, strings, booleans); each benchmark
documents its own keys.  Appends are atomic (temp file + ``os.replace``)
and tolerant: a missing or unparsable file restarts the trajectory rather
than failing the benchmark that tried to record into it.
"""

import json
import os
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional, Union

TRAJECTORY_FORMAT_VERSION = 1
BENCH_RUNTIME_FILENAME = "BENCH_runtime.json"

#: Repository root: src/repro/runtime/trajectory.py -> three parents up
#: from the package directory.
_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_trajectory_path() -> Path:
    """``BENCH_runtime.json`` at the repository root."""
    return _REPO_ROOT / BENCH_RUNTIME_FILENAME


def load_trajectory(path: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
    """Read the trajectory document; an empty one if absent or corrupt."""
    target = Path(path) if path is not None else default_trajectory_path()
    try:
        with open(target, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return {"format_version": TRAJECTORY_FORMAT_VERSION, "records": []}
    if not isinstance(doc, dict) or not isinstance(doc.get("records"), list):
        return {"format_version": TRAJECTORY_FORMAT_VERSION, "records": []}
    return doc


def record_benchmark(
    bench: str,
    metrics: Dict[str, Any],
    path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Append one benchmark record and return it.

    ``metrics`` must be JSON-serializable; numpy scalars are coerced via
    ``float``/``int`` by json's default handling being bypassed — pass
    plain Python numbers.  The write is atomic so concurrent benchmark
    processes cannot interleave partial JSON.
    """
    if not bench:
        raise ValueError("bench name must be non-empty")
    target = Path(path) if path is not None else default_trajectory_path()
    doc = load_trajectory(target)
    now = time.time()
    record = {
        "bench": bench,
        "unix_time": now,
        "timestamp": datetime.fromtimestamp(now, tz=timezone.utc).isoformat(
            timespec="seconds"
        ),
        "metrics": dict(metrics),
    }
    doc["format_version"] = TRAJECTORY_FORMAT_VERSION
    doc["records"].append(record)
    payload = json.dumps(doc, indent=2, sort_keys=False) + "\n"
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=".bench-runtime-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return record


def latest_record(
    bench: str, path: Optional[Union[str, Path]] = None
) -> Optional[Dict[str, Any]]:
    """The most recent record for ``bench``, or None."""
    doc = load_trajectory(path)
    for record in reversed(doc["records"]):
        if isinstance(record, dict) and record.get("bench") == bench:
            return record
    return None
