"""BENCH_runtime.json — the repository's machine-readable perf trajectory.

Benchmarks that make a quantitative performance claim (cache-hit speedup,
columnar pipeline speedup, events/sec) append one record here so the
numbers accumulate across sessions instead of scrolling away in pytest
output.  The file lives at the repository root and is a single JSON
document::

    {
      "format_version": 1,
      "records": [
        {
          "bench": "columnar_trace",        # stable benchmark name
          "unix_time": 1754000000.0,        # time.time() at record
          "timestamp": "2026-08-05T12:00:00+00:00",  # same, ISO-8601 UTC
          "metrics": {...}                  # benchmark-specific scalars
        },
        ...
      ]
    }

``metrics`` is flat JSON (numbers, strings, booleans); each benchmark
documents its own keys.  Appends are atomic (temp file + ``os.replace``)
and tolerant: a missing or unparsable file restarts the trajectory rather
than failing the benchmark that tried to record into it.

Concurrent writers are safe: ``os.replace`` alone keeps the document
well-formed, but two processes that both load, append, and replace would
silently drop one record (a read-modify-write lost update).  The whole
append therefore runs under an exclusive advisory ``flock`` on a
per-target lock file in the system temp directory — outside the target
directory, so the trajectory file remains the only artifact the append
leaves behind.  Platforms without ``fcntl`` fall back to the unlocked
(still atomic, last-writer-wins) behavior.
"""

import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional, Union

try:  # POSIX advisory locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

TRAJECTORY_FORMAT_VERSION = 1
BENCH_RUNTIME_FILENAME = "BENCH_runtime.json"

#: Repository root: src/repro/runtime/trajectory.py -> three parents up
#: from the package directory.
_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_trajectory_path() -> Path:
    """``BENCH_runtime.json`` at the repository root."""
    return _REPO_ROOT / BENCH_RUNTIME_FILENAME


@contextmanager
def _append_lock(target: Path):
    """Exclusive cross-process lock for one trajectory file's appends.

    The lock file lives in the system temp dir, keyed by the resolved
    target path, so (1) the target directory stays clean and (2) the
    lock file is never replaced out from under a waiting locker the way
    locking the target itself would be (``os.replace`` swaps inodes).
    ``flock`` releases on close even if the holder dies.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    digest = hashlib.sha256(
        str(Path(target).resolve()).encode("utf-8")
    ).hexdigest()[:16]
    lock_path = Path(tempfile.gettempdir()) / f"repro-bench-{digest}.lock"
    with open(lock_path, "a+", encoding="utf-8") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def load_trajectory(path: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
    """Read the trajectory document; an empty one if absent or corrupt."""
    target = Path(path) if path is not None else default_trajectory_path()
    try:
        with open(target, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (FileNotFoundError, ValueError, OSError):
        # ValueError covers json.JSONDecodeError (empty/whitespace/torn
        # documents) *and* UnicodeDecodeError (a torn write that left
        # invalid UTF-8 bytes) — both restart the trajectory.
        return {"format_version": TRAJECTORY_FORMAT_VERSION, "records": []}
    if not isinstance(doc, dict) or not isinstance(doc.get("records"), list):
        return {"format_version": TRAJECTORY_FORMAT_VERSION, "records": []}
    return doc


def record_benchmark(
    bench: str,
    metrics: Dict[str, Any],
    path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Append one benchmark record and return it.

    ``metrics`` must be JSON-serializable; numpy scalars are coerced via
    ``float``/``int`` by json's default handling being bypassed — pass
    plain Python numbers.  The write is atomic (readers never see partial
    JSON) and the whole read-modify-write holds an advisory lock, so
    concurrent benchmark processes cannot lose each other's records.
    """
    if not bench:
        raise ValueError("bench name must be non-empty")
    target = Path(path) if path is not None else default_trajectory_path()
    now = time.time()
    record = {
        "bench": bench,
        "unix_time": now,
        "timestamp": datetime.fromtimestamp(now, tz=timezone.utc).isoformat(
            timespec="seconds"
        ),
        "metrics": dict(metrics),
    }
    with _append_lock(target):
        doc = load_trajectory(target)
        doc["format_version"] = TRAJECTORY_FORMAT_VERSION
        doc["records"].append(record)
        payload = json.dumps(doc, indent=2, sort_keys=False) + "\n"
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=".bench-runtime-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    return record


def latest_record(
    bench: str, path: Optional[Union[str, Path]] = None
) -> Optional[Dict[str, Any]]:
    """The most recent record for ``bench``, or None."""
    doc = load_trajectory(path)
    for record in reversed(doc["records"]):
        if isinstance(record, dict) and record.get("bench") == bench:
            return record
    return None
