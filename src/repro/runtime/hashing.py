"""Stable content hashes for campaign configs and traces.

The trace cache is *content-addressed*: a campaign's cache key is a SHA-256
over the fully-resolved :class:`~repro.campaign.CampaignConfig` — cluster
spec, workload profile (resolved, not the ``None`` placeholder), seed, and
every policy flag — plus the cache-format and trace-schema stamps.  Two
configs that would simulate identically hash identically; any change to a
knob, to the trace schema, or to the package version produces a different
key, so the cache can never serve a stale or mismatched trace.

``trace_digest`` is the determinism oracle used by tests and benchmarks: a
canonical hash of a trace's observable content (the ``runtime``
instrumentation block is excluded, since wall time and cache provenance
legitimately differ between a simulated and a cache-loaded copy of the
same campaign).
"""

import enum
import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Any, TYPE_CHECKING

import numpy as np

from repro.workload.trace import TRACE_SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign import CampaignConfig
    from repro.workload.trace import Trace

#: Bump to invalidate every existing cache entry (e.g. when the hashing
#: scheme itself changes).  Trace-shape changes are covered separately by
#: ``TRACE_SCHEMA_VERSION``.
CACHE_FORMAT_VERSION = 1


def canonicalize(obj: Any) -> Any:
    """Reduce an object to a JSON-stable structure for hashing.

    Handles the vocabulary config objects are built from: nested (frozen)
    dataclasses, enums, dicts with non-string keys, tuples/frozensets, and
    numpy scalars.  Dataclasses are tagged with their class name so two
    different types with identical fields cannot collide.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: canonicalize(getattr(obj, f.name))
                for f in fields(obj)
            },
        }
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.name]
    if isinstance(obj, dict):
        items = [
            [canonicalize(k), canonicalize(v)] for k, v in obj.items()
        ]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__dict__": items}
    if isinstance(obj, (frozenset, set)):
        members = [canonicalize(v) for v in obj]
        members.sort(key=lambda v: json.dumps(v, sort_keys=True))
        return {"__set__": members}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [canonicalize(v) for v in obj.tolist()]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for hashing; "
        "add explicit support or make the config field a dataclass"
    )


def _sha256_of(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def config_digest(config: "CampaignConfig") -> str:
    """Cache key of a campaign: hash of the fully-resolved config."""
    from repro import __version__

    resolved = canonicalize(config)
    # Replace the profile placeholder with the profile that will actually
    # run, so `profile=None` and an explicitly passed default profile map
    # to the same cache entry.
    resolved["fields"]["profile"] = canonicalize(config.resolve_profile())
    payload = {
        "cache_format": CACHE_FORMAT_VERSION,
        "trace_schema": TRACE_SCHEMA_VERSION,
        "repro_version": __version__,
        "config": resolved,
    }
    return _sha256_of(payload)


def trace_digest(trace: "Trace") -> str:
    """Canonical digest of a trace's observable content.

    Two traces digest equal iff every job record, node record, event, and
    piece of non-instrumentation metadata matches exactly — the property
    the determinism tests assert across serial, pooled, and cache-loaded
    executions of the same (config, seed).
    """
    payload = trace.to_dict()
    header = dict(payload["header"])
    header["metadata"] = {
        k: v for k, v in header.get("metadata", {}).items() if k != "runtime"
    }
    payload["header"] = header
    return _sha256_of(canonicalize(payload))
