"""repro.runtime — parallel sweeps and the content-addressed trace cache.

The execution layer between "a CampaignConfig" and "a Trace":

* :class:`CampaignPool` / :func:`run_campaigns` fan multi-seed sweeps,
  ablation pairs, and config grids across worker processes with
  deterministic result ordering and a serial fallback.
* :class:`TraceCache` / :func:`cached_run_campaign` make every call site
  pay for a given (config, seed) at most once: the fully-resolved config
  is content-hashed and the simulated trace stored on disk; later hits
  load instead of re-simulating.  Disable with ``REPRO_TRACE_CACHE=off``.
* :func:`config_digest` / :func:`trace_digest` are the stable hashes the
  cache and the determinism tests are built on.

Quickstart::

    from repro import CampaignConfig, ClusterSpec
    from repro.runtime import CampaignPool, seed_sweep_configs

    spec = ClusterSpec.rsc1_like(n_nodes=64, campaign_days=30)
    base = CampaignConfig(cluster_spec=spec, duration_days=30)
    pool = CampaignPool()
    traces = pool.run(seed_sweep_configs(base, range(8)))
    print(pool.last_stats.render())
"""

from repro.runtime.cache import (
    ENV_VAR,
    TraceCache,
    cache_enabled_by_env,
    cached_run_campaign,
    default_cache_root,
)
from repro.runtime.hashing import (
    CACHE_FORMAT_VERSION,
    canonicalize,
    config_digest,
    trace_digest,
)
from repro.runtime.pool import (
    CampaignPool,
    SweepStats,
    run_campaigns,
    seed_sweep_configs,
)
from repro.runtime.trajectory import (
    BENCH_RUNTIME_FILENAME,
    TRAJECTORY_FORMAT_VERSION,
    default_trajectory_path,
    latest_record,
    load_trajectory,
    record_benchmark,
)

__all__ = [
    "BENCH_RUNTIME_FILENAME",
    "CACHE_FORMAT_VERSION",
    "CampaignPool",
    "ENV_VAR",
    "SweepStats",
    "TRAJECTORY_FORMAT_VERSION",
    "TraceCache",
    "cache_enabled_by_env",
    "cached_run_campaign",
    "canonicalize",
    "config_digest",
    "default_cache_root",
    "default_trajectory_path",
    "latest_record",
    "load_trajectory",
    "record_benchmark",
    "run_campaigns",
    "seed_sweep_configs",
    "trace_digest",
]
