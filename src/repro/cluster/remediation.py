"""Remediation workflow: tickets, repairs, swaps, return-to-service.

When a node fails a health check it transitions to a remediation state and
is unavailable for scheduling "until it is fixed and all checks are
passing" (Section II-C).  We model two repair classes:

* **Transient** faults (link flap, stuck service, recoverable ECC burst):
  a reset/triage cycle of a few hours.
* **Permanent** faults: a vendor repair ticket with a multi-day turnaround;
  GPU-domain permanent faults additionally count as a GPU swap (the paper
  uses fleet GPU-swap rates to corroborate the RSC-1 vs RSC-2 failure-rate
  gap).

Every pass through remediation increments the node's ``tickets`` and
``out_count`` lemon signals.
"""

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.components import ComponentType, FailureClass
from repro.cluster.failures import FailureIncident
from repro.cluster.node import Node, NodeState
from repro.sim.engine import Engine
from repro.sim.events import EventLog
from repro.sim.timeunits import HOUR, DAY

#: Permanent faults in these domains are resolved by swapping the GPU tray.
GPU_SWAP_COMPONENTS = {
    ComponentType.GPU,
    ComponentType.GPU_MEMORY,
    ComponentType.NVLINK,
    ComponentType.PCIE,
}


@dataclass
class RepairTicket:
    """One repair-shop visit for a node."""

    ticket_id: int
    node_id: int
    component: ComponentType
    failure_class: FailureClass
    opened_at: float
    closed_at: Optional[float] = None
    gpu_swapped: bool = False

    @property
    def open(self) -> bool:
        return self.closed_at is None

    @property
    def duration(self) -> float:
        if self.closed_at is None:
            raise ValueError(f"ticket {self.ticket_id} is still open")
        return self.closed_at - self.opened_at


class RemediationWorkflow:
    """Owns the repair queue and node return-to-service."""

    def __init__(
        self,
        engine: Engine,
        nodes: Dict[int, Node],
        rng: np.random.Generator,
        event_log: Optional[EventLog] = None,
        transient_repair_median: float = 4 * HOUR,
        permanent_repair_median: float = 2 * DAY,
        repair_sigma: float = 0.6,
        on_node_restored: Optional[Callable[[Node], None]] = None,
    ):
        if transient_repair_median <= 0 or permanent_repair_median <= 0:
            raise ValueError("repair medians must be positive")
        self.engine = engine
        self.nodes = nodes
        self._rng = rng
        self.event_log = event_log if event_log is not None else EventLog()
        self.transient_repair_median = transient_repair_median
        self.permanent_repair_median = permanent_repair_median
        self.repair_sigma = repair_sigma
        self.on_node_restored = on_node_restored
        self.tickets: List[RepairTicket] = []
        self._ticket_seq = itertools.count()

    def begin_remediation(self, node: Node, incident: FailureIncident) -> RepairTicket:
        """Take a node out of capacity and schedule its repair."""
        if node.state is NodeState.REMEDIATION:
            raise RuntimeError(
                f"{node.name}: already in remediation; a second concurrent "
                "ticket would double return-to-service"
            )
        node.enter_remediation()
        node.counters.tickets += 1
        node.counters.out_count += 1
        ticket = RepairTicket(
            ticket_id=next(self._ticket_seq),
            node_id=node.node_id,
            component=incident.component,
            failure_class=incident.failure_class,
            opened_at=self.engine.now,
        )
        self.tickets.append(ticket)
        median = (
            self.transient_repair_median
            if incident.failure_class is FailureClass.TRANSIENT
            else self.permanent_repair_median
        )
        duration = float(
            self._rng.lognormal(np.log(median), self.repair_sigma)
        )
        self.event_log.emit(
            self.engine.now,
            "remediation.ticket_opened",
            node.name,
            node_id=node.node_id,
            ticket_id=ticket.ticket_id,
            incident_id=incident.incident_id,
            component=incident.component.value,
            failure_class=incident.failure_class.value,
        )
        self.engine.schedule_after(
            duration,
            lambda: self._complete(node, ticket),
            label=f"repair:{node.node_id}",
        )
        return ticket

    def _complete(self, node: Node, ticket: RepairTicket) -> None:
        ticket.closed_at = self.engine.now
        if (
            ticket.failure_class is FailureClass.PERMANENT
            and ticket.component in GPU_SWAP_COMPONENTS
        ):
            ticket.gpu_swapped = True
            node.gpu_swaps += 1
        node.return_to_service()
        self.event_log.emit(
            self.engine.now,
            "remediation.ticket_closed",
            node.name,
            node_id=node.node_id,
            ticket_id=ticket.ticket_id,
            gpu_swapped=ticket.gpu_swapped,
        )
        if self.on_node_restored is not None:
            self.on_node_restored(node)

    def open_ticket_count(self) -> int:
        return sum(1 for t in self.tickets if t.open)

    def gpu_swap_count(self) -> int:
        return sum(1 for t in self.tickets if t.gpu_swapped)
