"""Node model: GPU slots, availability state machine, lemon counters.

A node is a DGX-style server with 8 GPU slots.  Jobs smaller than a server
share a node's GPUs (the >40% of 1-GPU jobs in Fig. 6 must pack, or the
cluster could never reach 83% utilization); jobs of a server or larger take
whole nodes.  Availability follows the paper's health-check policy:

* ``HEALTHY``     — passing all checks; schedulable (may be running jobs).
* ``DRAINING``    — failed a *low-severity* check; resident jobs finish,
  no new work lands, then the node goes to remediation.
* ``REMEDIATION`` — out of capacity, being repaired; high-severity check
  failures jump here immediately, killing resident jobs.

Nodes also accumulate the per-node counters that feed lemon detection
(Section IV-A): XID counts, repair tickets, times taken out of the
scheduler, exclusions by jobs, and single-/multi-node job failures blamed
on them.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Set

from repro.cluster.components import GPUS_PER_NODE


class NodeState(enum.Enum):
    HEALTHY = "healthy"
    DRAINING = "draining"
    REMEDIATION = "remediation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class LemonCounters:
    """The seven detection signals of Section IV-A, accumulated per node."""

    excl_jobid_count: int = 0
    xid_cnt: int = 0
    tickets: int = 0
    out_count: int = 0
    multi_node_node_fails: int = 0
    single_node_node_fails: int = 0
    single_node_jobs_seen: int = 0

    @property
    def single_node_node_failure_rate(self) -> float:
        if self.single_node_jobs_seen == 0:
            return 0.0
        return self.single_node_node_fails / self.single_node_jobs_seen

    def as_dict(self) -> Dict[str, float]:
        return {
            "excl_jobid_count": self.excl_jobid_count,
            "xid_cnt": self.xid_cnt,
            "tickets": self.tickets,
            "out_count": self.out_count,
            "multi_node_node_fails": self.multi_node_node_fails,
            "single_node_node_fails": self.single_node_node_fails,
            "single_node_node_failure_rate": self.single_node_node_failure_rate,
        }


class Node:
    """One server: identity, topology position, GPU slots, and counters.

    ``__slots__``: an RSC-scale fleet holds thousands of long-lived nodes
    whose attributes are read on every scheduling decision — fixed slots
    drop the per-instance dict and its lookups.

    Availability transitions (state changes and quarantine flips) notify
    ``on_transition(node, old_state, new_state)`` when set; the owning
    :class:`~repro.cluster.cluster.Cluster` uses this to keep its
    schedulable/quarantined indices in sync without fleet rescans.
    """

    __slots__ = (
        "node_id",
        "rack_id",
        "pod_id",
        "state",
        "total_gpus",
        "free_gpus",
        "running_jobs",
        "gpu_swaps",
        "counters",
        "excluded_by_jobs",
        "_quarantined",
        "on_transition",
    )

    def __init__(self, node_id: int, rack_id: int, pod_id: int):
        if node_id < 0 or rack_id < 0 or pod_id < 0:
            raise ValueError("node/rack/pod ids must be non-negative")
        self.node_id = node_id
        self.rack_id = rack_id
        self.pod_id = pod_id
        self.state = NodeState.HEALTHY
        self.total_gpus = GPUS_PER_NODE
        self.free_gpus = GPUS_PER_NODE
        self.running_jobs: Dict[int, int] = {}  # job_id -> gpus held
        self.gpu_swaps = 0
        self.counters = LemonCounters()
        self.excluded_by_jobs: Set[int] = set()
        #: set by lemon detection when the node is quarantined
        self._quarantined = False
        #: availability observer (set by the owning Cluster; may stay None)
        self.on_transition = None

    @property
    def quarantined(self) -> bool:
        return self._quarantined

    @quarantined.setter
    def quarantined(self, value: bool) -> None:
        value = bool(value)
        if value == self._quarantined:
            return
        self._quarantined = value
        if self.on_transition is not None:
            self.on_transition(self, self.state, self.state)

    def _transition(self, new_state: NodeState) -> None:
        old = self.state
        self.state = new_state
        if self.on_transition is not None and old is not new_state:
            self.on_transition(self, old, new_state)

    @property
    def name(self) -> str:
        return f"node-{self.node_id:05d}"

    @property
    def busy(self) -> bool:
        return bool(self.running_jobs)

    @property
    def fully_free(self) -> bool:
        return self.free_gpus == self.total_gpus

    def can_host(self, gpus: int) -> bool:
        """Whether a new allocation of ``gpus`` GPUs may land here now."""
        return (
            self.state is NodeState.HEALTHY
            and not self.quarantined
            and self.free_gpus >= gpus
        )

    def is_schedulable(self) -> bool:
        return self.state is NodeState.HEALTHY and not self.quarantined

    def allocate(self, job_id: int, gpus: int) -> None:
        if not self.can_host(gpus):
            raise RuntimeError(
                f"{self.name}: cannot allocate {gpus} GPUs "
                f"(state={self.state.value}, free={self.free_gpus}, "
                f"quarantined={self.quarantined})"
            )
        if job_id in self.running_jobs:
            raise RuntimeError(f"{self.name}: job {job_id} already resident")
        self.running_jobs[job_id] = gpus
        self.free_gpus -= gpus

    def release(self, job_id: int) -> None:
        """Free the GPUs held by ``job_id`` (job ended or was killed)."""
        gpus = self.running_jobs.pop(job_id, None)
        if gpus is not None:
            self.free_gpus += gpus

    def start_drain(self) -> None:
        """Low-severity check failed: finish resident jobs, then remediate."""
        if self.state is NodeState.HEALTHY:
            self._transition(NodeState.DRAINING)

    def enter_remediation(self) -> None:
        """Remove the node from capacity; any residual allocation is voided."""
        self._transition(NodeState.REMEDIATION)
        self.running_jobs.clear()
        self.free_gpus = self.total_gpus

    def return_to_service(self) -> None:
        if self.state is not NodeState.REMEDIATION:
            raise RuntimeError(
                f"{self.name}: return_to_service from {self.state.value} is invalid"
            )
        self._transition(NodeState.HEALTHY)

    def record_exclusion(self, job_id: int) -> None:
        """A job's submitter listed this node in its exclude list."""
        if job_id not in self.excluded_by_jobs:
            self.excluded_by_jobs.add(job_id)
            self.counters.excl_jobid_count += 1

    def __repr__(self) -> str:
        return (
            f"Node({self.name}, pod={self.pod_id}, rack={self.rack_id}, "
            f"state={self.state.value}, free_gpus={self.free_gpus})"
        )
