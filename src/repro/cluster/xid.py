"""NVIDIA XID error catalogue (subset relevant to the paper).

XIDs are the GPU driver's error codes; the paper calls out memory errors,
GPU-falling-off-the-bus (XID 79), and GSP timeouts (XID 119, the driver
regression of Fig. 5) as the dominant GPU categories.  Each entry maps the
code to the component domain it implicates and whether it usually indicates
a user-level or infrastructure-level fault.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.components import ComponentType


@dataclass(frozen=True)
class XidError:
    """One XID code with its mapping into our failure taxonomy."""

    code: int
    name: str
    component: ComponentType
    user_suspect: bool  # can a user program plausibly trigger this?
    description: str


XID_CATALOG: Dict[int, XidError] = {
    xid.code: xid
    for xid in [
        XidError(
            13,
            "graphics_engine_exception",
            ComponentType.GPU,
            True,
            "Graphics engine exception; frequently a user kernel fault.",
        ),
        XidError(
            31,
            "gpu_memory_page_fault",
            ComponentType.GPU,
            True,
            "MMU page fault; almost always an application bug.",
        ),
        XidError(
            48,
            "double_bit_ecc",
            ComponentType.GPU_MEMORY,
            False,
            "Uncorrectable double-bit ECC error in HBM.",
        ),
        XidError(
            63,
            "row_remap_pending",
            ComponentType.GPU_MEMORY,
            False,
            "ECC page retirement / row remap recording event.",
        ),
        XidError(
            64,
            "row_remap_failure",
            ComponentType.GPU_MEMORY,
            False,
            "Row remap failed; HBM defect or wear requiring a GPU swap.",
        ),
        XidError(
            74,
            "nvlink_error",
            ComponentType.NVLINK,
            False,
            "NVLink uncorrectable error; electro/material failure or switch.",
        ),
        XidError(
            79,
            "gpu_fell_off_bus",
            ComponentType.PCIE,
            False,
            "GPU no longer visible over PCIe ('falling off the bus').",
        ),
        XidError(
            94,
            "contained_ecc",
            ComponentType.GPU_MEMORY,
            False,
            "Contained ECC error; workload on this GPU is killed.",
        ),
        XidError(
            95,
            "uncontained_ecc",
            ComponentType.GPU_MEMORY,
            False,
            "Uncontained ECC error; node requires a drain and reset.",
        ),
        XidError(
            119,
            "gsp_timeout",
            ComponentType.GPU,
            False,
            "GSP RPC timeout; the driver-regression failure mode of Fig. 5.",
        ),
    ]
}


def xid_by_code(code: int) -> XidError:
    """Look up an XID; raises ``KeyError`` with a helpful message."""
    try:
        return XID_CATALOG[code]
    except KeyError:
        raise KeyError(
            f"XID {code} not in catalogue; known codes: {sorted(XID_CATALOG)}"
        ) from None


def infrastructure_xids() -> Dict[int, XidError]:
    """XIDs that implicate hardware/infrastructure rather than user code."""
    return {c: x for c, x in XID_CATALOG.items() if not x.user_suspect}


# The XIDs a component failure surfaces, used by the failure injector.
COMPONENT_PRIMARY_XID: Dict[ComponentType, Optional[int]] = {
    ComponentType.GPU: 119,
    ComponentType.GPU_MEMORY: 48,
    ComponentType.NVLINK: 74,
    ComponentType.PCIE: 79,
}
