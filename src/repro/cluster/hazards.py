"""Per-component failure hazard model.

Failure behaviour in the paper has three layers, all represented here:

1. A **baseline** per-component Poisson rate whose sum is the cluster's
   failure rate ``r_f`` (6.50 per 1000 node-days on RSC-1, 2.34 on RSC-2).
2. **Episodic regimes** — time-bounded multipliers reproducing Fig. 5's
   dynamics (the GSP-timeout driver regression, the filesystem-mount wave,
   the summer-2024 IB-link spike on a handful of nodes).
3. **Lemon nodes** — a small set of nodes with persistently elevated hazard
   in one root-cause component (Section IV-A, Table II).

Rates are expressed in failures per node-day; the failure injector converts
to per-second when scheduling.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.components import ComponentType

#: Default probability that a failure of each component class is transient
#: (clears after reset) rather than permanent (needs part repair/replacement).
DEFAULT_TRANSIENT_PROBABILITY: Dict[ComponentType, float] = {
    ComponentType.GPU: 0.70,
    ComponentType.GPU_MEMORY: 0.55,
    ComponentType.NVLINK: 0.60,
    ComponentType.IB_LINK: 0.75,
    ComponentType.PCIE: 0.40,
    ComponentType.FILESYSTEM_MOUNT: 0.90,
    ComponentType.HOST_MEMORY: 0.50,
    ComponentType.ETH_LINK: 0.80,
    ComponentType.CPU: 0.30,
    ComponentType.PSU: 0.20,
    ComponentType.NIC: 0.50,
    ComponentType.SYSTEM_SERVICES: 0.95,
    ComponentType.BIOS: 0.30,
    ComponentType.EUD: 0.40,
    ComponentType.OPTICS: 0.50,
}


@dataclass(frozen=True)
class ComponentHazard:
    """Baseline hazard for one component domain.

    Attributes:
        rate_per_kiloday: Failures per 1000 node-days from this domain.
        transient_probability: Chance a given failure is transient.
    """

    rate_per_kiloday: float
    transient_probability: float

    def __post_init__(self):
        if self.rate_per_kiloday < 0:
            raise ValueError("rate must be non-negative")
        if not 0 <= self.transient_probability <= 1:
            raise ValueError("transient_probability must be in [0, 1]")

    @property
    def rate_per_day(self) -> float:
        return self.rate_per_kiloday / 1000.0


@dataclass(frozen=True)
class HazardRegime:
    """A time-bounded hazard multiplier, optionally scoped to node subset.

    ``multiplier`` applies to ``component`` between ``start`` and ``end``
    (simulation seconds).  ``node_ids`` of ``None`` means fleet-wide.
    """

    name: str
    component: ComponentType
    multiplier: float
    start: float
    end: float
    node_ids: Optional[FrozenSet[int]] = None

    def __post_init__(self):
        if self.multiplier < 0:
            raise ValueError("multiplier must be non-negative")
        if self.end <= self.start:
            raise ValueError(f"regime {self.name}: end must exceed start")

    def applies(self, node_id: int, component: ComponentType, t: float) -> bool:
        if component is not self.component:
            return False
        if not self.start <= t < self.end:
            return False
        return self.node_ids is None or node_id in self.node_ids


@dataclass(frozen=True)
class LemonSpec:
    """A persistently faulty node: its root-cause component and multiplier."""

    node_id: int
    component: ComponentType
    multiplier: float

    def __post_init__(self):
        if self.multiplier < 1:
            raise ValueError("a lemon multiplier below 1 is not a lemon")


class HazardModel:
    """Combines baseline, regime, and lemon hazards into query-able rates."""

    def __init__(
        self,
        base: Dict[ComponentType, ComponentHazard],
        regimes: Sequence[HazardRegime] = (),
        lemons: Sequence[LemonSpec] = (),
    ):
        if not base:
            raise ValueError("hazard model needs at least one component hazard")
        self.base = dict(base)
        self.regimes = list(regimes)
        self._lemons: Dict[int, LemonSpec] = {}
        for lemon in lemons:
            if lemon.node_id in self._lemons:
                raise ValueError(f"duplicate lemon spec for node {lemon.node_id}")
            self._lemons[lemon.node_id] = lemon

    @property
    def lemons(self) -> Dict[int, LemonSpec]:
        return dict(self._lemons)

    def is_lemon(self, node_id: int) -> bool:
        return node_id in self._lemons

    def component_rate(self, node_id: int, component: ComponentType, t: float) -> float:
        """Hazard rate (failures per node-day) of one component at time t."""
        hazard = self.base.get(component)
        if hazard is None:
            return 0.0
        rate = hazard.rate_per_day
        for regime in self.regimes:
            if regime.applies(node_id, component, t):
                rate *= regime.multiplier
        lemon = self._lemons.get(node_id)
        if lemon is not None and lemon.component is component:
            rate *= lemon.multiplier
        return rate

    def total_rate(self, node_id: int, t: float) -> float:
        """Total hazard rate (failures per node-day) of a node at time t."""
        return sum(self.component_rate(node_id, c, t) for c in self.base)

    def total_rates(self, node_ids: Sequence[int], t: float) -> np.ndarray:
        """Vectorized :meth:`total_rate` over many nodes at one instant.

        Bit-identical to calling ``total_rate`` per node (the failure
        injector's determinism depends on that); the win is the fleet-wide
        fast path — with no active regime and no lemons every node shares
        the baseline sum, so arming N nodes costs one Python sum, not
        N * n_components.
        """
        if not self._lemons and not any(
            r.start <= t < r.end for r in self.regimes
        ):
            return np.full(len(node_ids), self.baseline_total_rate())
        return np.array([self.total_rate(nid, t) for nid in node_ids])

    def baseline_total_rate(self) -> float:
        """Fleet baseline ``r_f`` in failures per node-day (no regimes/lemons)."""
        return sum(h.rate_per_day for h in self.base.values())

    def sample_component(
        self, node_id: int, t: float, rng: np.random.Generator
    ) -> ComponentType:
        """Draw the failing component proportionally to current rates."""
        comps = list(self.base)
        rates = np.array([self.component_rate(node_id, c, t) for c in comps])
        total = rates.sum()
        if total <= 0:
            raise ValueError(f"node {node_id} has zero total hazard at t={t}")
        return comps[int(rng.choice(len(comps), p=rates / total))]

    def transient_probability(self, component: ComponentType) -> float:
        hazard = self.base.get(component)
        if hazard is None:
            return DEFAULT_TRANSIENT_PROBABILITY.get(component, 0.5)
        return hazard.transient_probability

    def regime_boundaries(self) -> List[float]:
        """Sorted distinct times at which any regime starts or ends."""
        times = set()
        for regime in self.regimes:
            times.add(regime.start)
            times.add(regime.end)
        return sorted(times)

    @classmethod
    def from_rates(
        cls,
        rates_per_kiloday: Dict[ComponentType, float],
        regimes: Sequence[HazardRegime] = (),
        lemons: Sequence[LemonSpec] = (),
        transient_probabilities: Optional[Dict[ComponentType, float]] = None,
    ) -> "HazardModel":
        """Build a model from a flat {component: failures/1000 node-days} map."""
        tp = dict(DEFAULT_TRANSIENT_PROBABILITY)
        if transient_probabilities:
            tp.update(transient_probabilities)
        base = {
            comp: ComponentHazard(
                rate_per_kiloday=rate, transient_probability=tp.get(comp, 0.5)
            )
            for comp, rate in rates_per_kiloday.items()
        }
        return cls(base, regimes=regimes, lemons=lemons)

    def scaled(self, factor: float) -> "HazardModel":
        """Return a copy with all baseline rates multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        base = {
            comp: ComponentHazard(
                rate_per_kiloday=h.rate_per_kiloday * factor,
                transient_probability=h.transient_probability,
            )
            for comp, h in self.base.items()
        }
        return HazardModel(base, regimes=self.regimes, lemons=list(self._lemons.values()))


def wearout_regimes(
    component: ComponentType,
    start: float,
    end: float,
    final_multiplier: float,
    steps: int = 6,
    name_prefix: str = "wearout",
) -> List[HazardRegime]:
    """A staircase of regimes approximating hazard growth (wear-out).

    Real fleets age: component hazards creep upward as parts wear (the
    bathtub curve's right side).  Regimes are piecewise-constant, so this
    helper builds a geometric staircase from 1x to ``final_multiplier``
    across [start, end) — usable anywhere a regime list is accepted, and
    exact for the injector's re-arm-at-boundary scheduling.
    """
    if end <= start:
        raise ValueError("end must exceed start")
    if final_multiplier < 1:
        raise ValueError("wear-out implies a multiplier >= 1")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    regimes = []
    step_span = (end - start) / steps
    for i in range(steps):
        multiplier = final_multiplier ** ((i + 1) / steps)
        regimes.append(
            HazardRegime(
                name=f"{name_prefix}:{i}",
                component=component,
                multiplier=multiplier,
                start=start + i * step_span,
                end=start + (i + 1) * step_span,
            )
        )
    return regimes


#: RSC-1-like attribution mix: sums to ~6.50 failures per 1000 node-days,
#: dominated by IB links, filesystem mounts, GPU memory, and PCIe (Fig. 4a).
RSC1_COMPONENT_RATES: Dict[ComponentType, float] = {
    ComponentType.IB_LINK: 1.60,
    ComponentType.FILESYSTEM_MOUNT: 1.00,
    ComponentType.GPU_MEMORY: 0.90,
    ComponentType.PCIE: 0.70,
    ComponentType.GPU: 0.70,
    ComponentType.NVLINK: 0.30,
    ComponentType.HOST_MEMORY: 0.15,
    ComponentType.SYSTEM_SERVICES: 0.40,
    ComponentType.ETH_LINK: 0.10,
    ComponentType.NIC: 0.10,
    ComponentType.CPU: 0.05,
    ComponentType.PSU: 0.05,
    ComponentType.BIOS: 0.05,
    ComponentType.EUD: 0.20,
    ComponentType.OPTICS: 0.20,
}

#: RSC-2-like mix: ~2.34 per 1000 node-days, with filesystem mounts taking a
#: relatively larger share and GPUs taxed less heavily (Fig. 4b; the paper
#: notes RSC-1 GPUs are swapped at ~3x the RSC-2 rate).
RSC2_COMPONENT_RATES: Dict[ComponentType, float] = {
    ComponentType.IB_LINK: 0.45,
    ComponentType.FILESYSTEM_MOUNT: 0.55,
    ComponentType.GPU_MEMORY: 0.30,
    ComponentType.PCIE: 0.22,
    ComponentType.GPU: 0.20,
    ComponentType.NVLINK: 0.08,
    ComponentType.HOST_MEMORY: 0.06,
    ComponentType.SYSTEM_SERVICES: 0.18,
    ComponentType.ETH_LINK: 0.05,
    ComponentType.NIC: 0.05,
    ComponentType.CPU: 0.02,
    ComponentType.PSU: 0.02,
    ComponentType.BIOS: 0.02,
    ComponentType.EUD: 0.07,
    ComponentType.OPTICS: 0.07,
}
