"""Health checks: the cluster's first-line failure detection (Section II-C).

Design notes mirroring the paper:

* Checks run every five minutes on every node and return success, warning,
  or failure.  Simulating ~300k literal check executions per node-year would
  dominate the event budget while almost always returning "success", so the
  monitor is *lazy*: when a component failure occurs we sample which checks
  fire and at what latency within the next check window.  The observable
  event stream is identical to eagerly simulating every check.
* Checks have overlapping coverage ("one check not firing is hopefully
  caught by another") — e.g. a PCIe fault fires the PCIe check, usually the
  XID-79 (fell-off-the-bus) check, and often an IPMI critical interrupt.
* ``NODE_FAIL`` acts as a catch-all: if no node-local check detects the
  fault, the Slurm heartbeat eventually notices the node is unresponsive.
* High-severity failures remove the node (and kill its jobs) immediately;
  low-severity failures drain the node after the current job finishes.
* Checks are introduced over time (Fig. 5): a check only detects failures
  after its ``introduced_at`` date; before that the failure either surfaces
  through an overlapping check or becomes an unattributed NODE_FAIL.
"""

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.components import ComponentType
from repro.cluster.xid import COMPONENT_PRIMARY_XID
from repro.sim.events import EventLog
from repro.sim.timeunits import MINUTE

CHECK_PERIOD = 5 * MINUTE


class CheckSeverity(enum.IntEnum):
    """Ordered severity; higher values preempt lower ones in attribution."""

    WARNING = 1
    LOW = 2
    HIGH = 3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class HealthCheck:
    """A node-health probe and the failure domains it covers."""

    name: str
    components: FrozenSet[ComponentType]
    severity: CheckSeverity
    introduced_at: float = 0.0
    detect_probability: float = 0.97

    def __post_init__(self):
        if not self.components:
            raise ValueError(f"check {self.name} must cover some component")
        if not 0 <= self.detect_probability <= 1:
            raise ValueError("detect_probability must be in [0, 1]")

    def covers(self, component: ComponentType) -> bool:
        return component in self.components

    def enabled(self, t: float) -> bool:
        return t >= self.introduced_at


@dataclass(frozen=True)
class HealthCheckResult:
    """One check firing against a node for a specific incident."""

    check: HealthCheck
    node_id: int
    time: float
    incident_id: int
    xid: Optional[int] = None


def default_health_checks(
    mount_check_introduced_at: float = 0.0,
    ipmi_check_introduced_at: float = 0.0,
) -> List[HealthCheck]:
    """The paper's check suite (Section II-C) with introduction dates.

    High severity: GPU inaccessible, NVLink errors, uncorrectable ECC,
    row-remap failure, PCIe/IB link errors, block devices, missing mounts.
    Low severity: host services, frontend links, thermals-adjacent DIMM
    warnings — these drain rather than kill.
    """
    hs = CheckSeverity.HIGH
    ls = CheckSeverity.LOW
    return [
        HealthCheck("gpu_unavailable", frozenset({ComponentType.GPU}), hs),
        HealthCheck(
            "gpu_memory",
            frozenset({ComponentType.GPU_MEMORY}),
            hs,
        ),
        HealthCheck("nvlink", frozenset({ComponentType.NVLINK}), hs),
        HealthCheck("pcie", frozenset({ComponentType.PCIE}), hs),
        HealthCheck(
            "xid79_fell_off_bus",
            frozenset({ComponentType.PCIE, ComponentType.GPU}),
            hs,
            detect_probability=0.5,
        ),
        HealthCheck("ib_link", frozenset({ComponentType.IB_LINK}), hs),
        HealthCheck(
            "filesystem_mounts",
            frozenset({ComponentType.FILESYSTEM_MOUNT}),
            hs,
            introduced_at=mount_check_introduced_at,
        ),
        HealthCheck(
            "ipmi_critical_interrupt",
            frozenset({ComponentType.PCIE, ComponentType.PSU, ComponentType.CPU}),
            ls,
            introduced_at=ipmi_check_introduced_at,
            detect_probability=0.4,
        ),
        HealthCheck("host_memory", frozenset({ComponentType.HOST_MEMORY}), ls),
        HealthCheck(
            "eth_link",
            frozenset({ComponentType.ETH_LINK, ComponentType.NIC}),
            ls,
        ),
        HealthCheck(
            "system_services",
            frozenset({ComponentType.SYSTEM_SERVICES}),
            ls,
            detect_probability=0.85,
        ),
        HealthCheck(
            "node_diagnostics",
            frozenset(
                {
                    ComponentType.CPU,
                    ComponentType.PSU,
                    ComponentType.BIOS,
                    ComponentType.EUD,
                    ComponentType.OPTICS,
                }
            ),
            ls,
            detect_probability=0.80,
        ),
    ]


class HealthMonitor:
    """Turns component failures into health-check firings and NODE_FAILs."""

    #: Given a primary component failure, additional checks that may fire
    #: and their conditional probabilities (paper's co-occurrence numbers:
    #: 43% of RSC-1 PCIe errors co-occur with XID 79; 21% show all three of
    #: PCIe/XID-79/IPMI; 2% of IB link failures co-occur with GPU events).
    CO_OCCURRENCE: Dict[ComponentType, Tuple[Tuple[str, float], ...]] = {
        ComponentType.PCIE: (("xid79_fell_off_bus", 0.43), ("ipmi_critical_interrupt", 0.49)),
        ComponentType.IB_LINK: (("xid79_fell_off_bus", 0.02),),
        ComponentType.GPU_MEMORY: (("gpu_unavailable", 0.15),),
    }

    def __init__(
        self,
        checks: Sequence[HealthCheck],
        rng: np.random.Generator,
        event_log: Optional[EventLog] = None,
        heartbeat_latency: Tuple[float, float] = (1 * MINUTE, 10 * MINUTE),
        telemetry=None,
    ):
        if not checks:
            raise ValueError("monitor requires at least one check")
        self.checks = list(checks)
        self._by_name = {c.name: c for c in self.checks}
        if len(self._by_name) != len(self.checks):
            raise ValueError("duplicate health-check names")
        self._rng = rng
        self.event_log = event_log if event_log is not None else EventLog()
        self._heartbeat_latency = heartbeat_latency
        self._incident_seq = itertools.count()
        #: obs.Telemetry bundle; check outcomes are traced when enabled.
        self.telemetry = telemetry

    def check_named(self, name: str) -> HealthCheck:
        return self._by_name[name]

    def new_incident_id(self) -> int:
        return next(self._incident_seq)

    def detect(
        self,
        node_id: int,
        component: ComponentType,
        t: float,
        incident_id: int,
    ) -> Tuple[List[HealthCheckResult], float, bool]:
        """Resolve which checks fire for an incident.

        Returns ``(results, detection_time, heartbeat_only)``.  If no check
        covering the component is enabled or all miss, the NODE_FAIL
        heartbeat catch-all reports at a longer latency and the incident
        remains unattributed (``heartbeat_only=True``).
        """
        results: List[HealthCheckResult] = []
        # Primary checks: every enabled check covering the component rolls
        # its detection probability independently (overlapping coverage).
        for check in self.checks:
            if not check.covers(component) or not check.enabled(t):
                continue
            if self._rng.random() < check.detect_probability:
                results.append(self._fire(check, node_id, t, incident_id, component))
        # Co-occurring secondary checks.
        for name, prob in self.CO_OCCURRENCE.get(component, ()):
            check = self._by_name.get(name)
            if check is None or not check.enabled(t):
                continue
            if any(r.check.name == name for r in results):
                continue
            if self._rng.random() < prob:
                results.append(self._fire(check, node_id, t, incident_id, component))
        if results:
            detection_time = min(r.time for r in results)
            return results, detection_time, False
        lo, hi = self._heartbeat_latency
        detection_time = t + self._rng.uniform(lo, hi)
        self.event_log.emit(
            detection_time,
            "health.node_fail_heartbeat",
            f"node-{node_id:05d}",
            node_id=node_id,
            incident_id=incident_id,
            component=component.value,
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "health.heartbeat_only",
                f"node-{node_id:05d}",
                t,
                node_id=node_id,
                incident_id=incident_id,
                component=component.value,
                detection_time=detection_time,
            )
            telemetry.metrics.counter(
                "health_heartbeat_only_total"
            ).inc()
        return [], detection_time, True

    def _fire(
        self,
        check: HealthCheck,
        node_id: int,
        t: float,
        incident_id: int,
        component: ComponentType,
    ) -> HealthCheckResult:
        latency = self._rng.uniform(0, CHECK_PERIOD)
        xid = COMPONENT_PRIMARY_XID.get(component)
        result = HealthCheckResult(
            check=check,
            node_id=node_id,
            time=t + latency,
            incident_id=incident_id,
            xid=xid,
        )
        self.event_log.emit(
            result.time,
            "health.check_failed",
            f"node-{node_id:05d}",
            node_id=node_id,
            check=check.name,
            severity=int(check.severity),
            component=component.value,
            incident_id=incident_id,
            xid=xid,
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            # Traced at the incident time t (not result.time) so the
            # telemetry stream stays monotone per category.
            telemetry.tracer.emit(
                "health.check_fired",
                f"node-{node_id:05d}",
                t,
                node_id=node_id,
                check=check.name,
                severity=int(check.severity),
                component=component.value,
                incident_id=incident_id,
                latency_s=latency,
            )
            telemetry.metrics.counter(
                "health_checks_fired_total", check=check.name
            ).inc()
        return result

    def max_severity(self, results: Sequence[HealthCheckResult]) -> CheckSeverity:
        """Highest severity across firing checks (HIGH wins attribution)."""
        if not results:
            return CheckSeverity.HIGH  # heartbeat NODE_FAIL removes the node
        return max(r.check.severity for r in results)
