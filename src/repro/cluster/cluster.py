"""The cluster facade: nodes + hazards + health + remediation, wired up.

`Cluster` is what the scheduler talks to.  It owns the node inventory and
the failure machinery, and it surfaces exactly two callbacks upward:

* ``on_node_down(node, incident)`` — a high-severity check (or heartbeat
  NODE_FAIL) removed the node; any resident job must be interrupted now.
* ``on_node_available(node)`` — a node returned from remediation and may be
  scheduled again.

Low-severity incidents drain: the node stops accepting new jobs but the
resident job finishes, after which the node goes to remediation — matching
Section II-C's two-tier severity policy.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.components import ComponentType, GPUS_PER_NODE
from repro.cluster.failures import FailureIncident, FailureInjector
from repro.cluster.hazards import (
    HazardModel,
    HazardRegime,
    LemonSpec,
    RSC1_COMPONENT_RATES,
    RSC2_COMPONENT_RATES,
)
from repro.cluster.health import (
    CheckSeverity,
    HealthMonitor,
    default_health_checks,
)
from repro.cluster.node import Node, NodeState
from repro.cluster.remediation import RemediationWorkflow
from repro.core.indices import SortedIntSet
from repro.sim.engine import Engine
from repro.sim.events import EventLog
from repro.sim.rng import RngStreams
from repro.sim.timeunits import DAY

SERVERS_PER_RACK = 2
RACKS_PER_POD = 10
SERVERS_PER_POD = SERVERS_PER_RACK * RACKS_PER_POD

#: Table II — fraction of lemon-node root causes.
LEMON_ROOT_CAUSE_MIX: Tuple[Tuple[ComponentType, float], ...] = (
    (ComponentType.GPU, 0.282),
    (ComponentType.HOST_MEMORY, 0.205),  # DIMM
    (ComponentType.PCIE, 0.154),
    (ComponentType.EUD, 0.103),
    (ComponentType.NIC, 0.077),
    (ComponentType.BIOS, 0.077),
    (ComponentType.PSU, 0.051),
    (ComponentType.CPU, 0.026),
    (ComponentType.OPTICS, 0.026),
)


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a cluster campaign's hardware side."""

    name: str
    n_nodes: int
    component_rates: Dict[ComponentType, float]
    campaign_days: float = 330.0
    lemon_fraction: float = 0.012
    #: Target failure rate of a lemon node's faulty component, failures/day.
    #: Lemons "cause repeating job failures" (Section IV-A): roughly one
    #: incident per week or two, far above the fleet's ~0.0065/day.
    lemon_fail_per_day: float = 0.12
    enable_episodic_regimes: bool = True
    mount_check_introduced_frac: float = 0.30
    ipmi_check_introduced_frac: float = 0.10
    #: Spurious warning-severity check firings per node-day.  Calibrated
    #: so that well under 1% of successfully completed jobs observe a
    #: failed check (Section II-C's false-positive budget).
    false_positive_rate_per_node_day: float = 0.01

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if not 0 <= self.lemon_fraction < 1:
            raise ValueError("lemon_fraction must be in [0, 1)")
        if self.campaign_days <= 0:
            raise ValueError("campaign_days must be positive")

    @property
    def n_gpus(self) -> int:
        return self.n_nodes * GPUS_PER_NODE

    @property
    def span_seconds(self) -> float:
        return self.campaign_days * DAY

    @classmethod
    def rsc1_like(
        cls, n_nodes: int = 2000, campaign_days: float = 330.0, **kwargs
    ) -> "ClusterSpec":
        """An RSC-1-shaped cluster (16k GPUs at full scale, r_f ~ 6.5/1k nd)."""
        return cls(
            name="RSC-1",
            n_nodes=n_nodes,
            component_rates=dict(RSC1_COMPONENT_RATES),
            campaign_days=campaign_days,
            lemon_fraction=kwargs.pop("lemon_fraction", 0.012),
            **kwargs,
        )

    @classmethod
    def rsc2_like(
        cls, n_nodes: int = 1000, campaign_days: float = 330.0, **kwargs
    ) -> "ClusterSpec":
        """An RSC-2-shaped cluster (8k GPUs at full scale, r_f ~ 2.34/1k nd)."""
        return cls(
            name="RSC-2",
            n_nodes=n_nodes,
            component_rates=dict(RSC2_COMPONENT_RATES),
            campaign_days=campaign_days,
            lemon_fraction=kwargs.pop("lemon_fraction", 0.017),
            **kwargs,
        )


class Cluster:
    """Live cluster: node inventory plus the failure/health/repair stack."""

    def __init__(
        self,
        spec: ClusterSpec,
        engine: Engine,
        rngs: RngStreams,
        event_log: Optional[EventLog] = None,
        telemetry=None,
        incremental_indices: bool = True,
    ):
        self.spec = spec
        self.engine = engine
        self.event_log = event_log if event_log is not None else EventLog()
        #: obs.Telemetry bundle, forwarded to the health monitor and the
        #: failure injector (None or disabled = zero-overhead path).
        self.telemetry = telemetry
        self.nodes: Dict[int, Node] = {
            i: Node(node_id=i, rack_id=i // SERVERS_PER_RACK, pod_id=i // SERVERS_PER_POD)
            for i in range(spec.n_nodes)
        }
        #: When False, availability queries fall back to brute-force fleet
        #: scans (the pre-index reference path, kept for benchmarking and
        #: for the index-consistency regression tests).  Deliberately NOT a
        #: CampaignConfig/ClusterSpec field: the query strategy must never
        #: enter the cache key, because both strategies are required to
        #: produce bit-identical traces.
        self.incremental_indices = incremental_indices
        # Availability indices, updated O(log n) per node transition via
        # Node.on_transition.  Invariants (see docs/PERFORMANCE.md):
        #   _schedulable_ids  == {id : state HEALTHY and not quarantined}
        #   _quarantined_ids  == {id : quarantined}
        #   _remediation_count == |{id : state REMEDIATION}|
        self._schedulable_ids = SortedIntSet(self.nodes)
        self._quarantined_ids = SortedIntSet()
        self._remediation_count = 0
        for node in self.nodes.values():
            node.on_transition = self._on_node_transition
        self.on_node_down: Optional[Callable[[Node, FailureIncident], None]] = None
        self.on_node_available: Optional[Callable[[Node], None]] = None
        self._drain_incident: Dict[int, FailureIncident] = {}

        span = spec.span_seconds
        lemon_rng = rngs.stream(f"{spec.name}.lemons")
        self.lemon_specs = self._draw_lemons(lemon_rng)
        regimes = self._build_regimes(lemon_rng) if spec.enable_episodic_regimes else []
        self.hazards = HazardModel.from_rates(
            spec.component_rates, regimes=regimes, lemons=self.lemon_specs
        )
        checks = default_health_checks(
            mount_check_introduced_at=spec.mount_check_introduced_frac * span,
            ipmi_check_introduced_at=spec.ipmi_check_introduced_frac * span,
        )
        self.monitor = HealthMonitor(
            checks,
            rngs.stream(f"{spec.name}.health"),
            event_log=self.event_log,
            telemetry=telemetry,
        )
        self.remediation = RemediationWorkflow(
            engine,
            self.nodes,
            rngs.stream(f"{spec.name}.repair"),
            event_log=self.event_log,
            on_node_restored=self._node_restored,
        )
        self._fp_rng = rngs.stream(f"{spec.name}.false_positives")
        self.injector = FailureInjector(
            engine,
            self.nodes,
            self.hazards,
            self.monitor,
            rngs.stream(f"{spec.name}.failures"),
            on_incident=self._handle_incident,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _draw_lemons(self, rng: np.random.Generator) -> List[LemonSpec]:
        n_lemons = int(round(self.spec.lemon_fraction * self.spec.n_nodes))
        if n_lemons == 0:
            return []
        node_ids = rng.choice(self.spec.n_nodes, size=n_lemons, replace=False)
        causes = [c for c, _p in LEMON_ROOT_CAUSE_MIX]
        probs = np.array([p for _c, p in LEMON_ROOT_CAUSE_MIX])
        probs = probs / probs.sum()
        specs = []
        for node_id in node_ids:
            cause = causes[int(rng.choice(len(causes), p=probs))]
            # The multiplier is derived so the faulty component reaches the
            # target absolute rate regardless of its (often tiny) baseline.
            base_per_day = self.spec.component_rates[cause] / 1000.0
            multiplier = max(1.0, self.spec.lemon_fail_per_day / base_per_day)
            specs.append(
                LemonSpec(
                    node_id=int(node_id),
                    component=cause,
                    multiplier=multiplier,
                )
            )
        return specs

    def _build_regimes(self, rng: np.random.Generator) -> List[HazardRegime]:
        """Fig. 5's episodic failure waves, scaled to the campaign span."""
        span = self.spec.span_seconds
        regimes = [
            # Late-2023 GSP-timeout driver regression, fixed by a patch.
            HazardRegime(
                name="gsp_driver_bug",
                component=ComponentType.GPU,
                multiplier=6.0,
                start=0.0,
                end=0.25 * span,
            ),
            # Mount instability wave (became visible once the check landed).
            HazardRegime(
                name="mount_wave",
                component=ComponentType.FILESYSTEM_MOUNT,
                multiplier=3.0,
                start=0.28 * span,
                end=0.55 * span,
            ),
        ]
        # Summer-2024 IB-link spike from a handful of offending nodes.
        n_offenders = max(2, self.spec.n_nodes // 300)
        offenders = frozenset(
            int(i)
            for i in rng.choice(self.spec.n_nodes, size=n_offenders, replace=False)
        )
        regimes.append(
            HazardRegime(
                name="ib_link_spike",
                component=ComponentType.IB_LINK,
                multiplier=220.0,
                start=0.62 * span,
                end=0.72 * span,
                node_ids=offenders,
            )
        )
        return regimes

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin failure injection (call once, before running the engine)."""
        self.injector.start()
        fp_rate = self.spec.false_positive_rate_per_node_day
        if fp_rate > 0:
            from repro.sim.processes import PoissonProcess

            fleet_rate_per_second = fp_rate * self.spec.n_nodes / DAY
            self._fp_process = PoissonProcess(
                self.engine,
                fleet_rate_per_second,
                self._fire_false_positive,
                self._fp_rng,
                label="health-false-positive",
            )

    def _fire_false_positive(self) -> None:
        """Emit a spurious warning-severity check on a random node.

        These are pure observation noise: no incident exists, no job is
        touched, but the event lands in the health stream where it can
        (rarely) confuse attribution — exactly the failure mode the
        paper's <1% calibration bounds.
        """
        node_id = int(self._fp_rng.integers(0, self.spec.n_nodes))
        warning_checks = [
            c
            for c in self.monitor.checks
            if int(c.severity) < int(CheckSeverity.HIGH)
            and c.enabled(self.engine.now)
        ]
        if not warning_checks:
            return
        check = warning_checks[int(self._fp_rng.integers(0, len(warning_checks)))]
        component = next(iter(check.components))
        self.event_log.emit(
            self.engine.now,
            "health.check_failed",
            f"node-{node_id:05d}",
            node_id=node_id,
            check=check.name,
            severity=int(check.severity),
            component=component.value,
            incident_id=-1,  # no underlying incident
            xid=None,
            false_positive=True,
        )

    def _handle_incident(self, incident: FailureIncident) -> None:
        node = self.nodes[incident.node_id]
        immediate = (
            incident.severity is CheckSeverity.HIGH or incident.heartbeat_only
        )
        self.event_log.emit(
            incident.time,
            "cluster.incident",
            node.name,
            node_id=node.node_id,
            incident_id=incident.incident_id,
            component=incident.component.value,
            failure_class=incident.failure_class.value,
            severity=int(incident.severity),
            attributed=incident.attributed,
            checks=incident.check_names,
            immediate=immediate,
        )
        if immediate:
            # Drop any deferred drain incident first: job teardown below
            # releases the node's jobs, and release_job would otherwise
            # race this path into a *second* remediation ticket.
            self._drain_incident.pop(node.node_id, None)
            if self.on_node_down is not None and node.busy:
                self.on_node_down(node, incident)
            if node.state is not NodeState.REMEDIATION:
                self.remediation.begin_remediation(node, incident)
        else:
            node.start_drain()
            if not node.busy:
                # Idle draining node goes straight to the repair bench.
                self.remediation.begin_remediation(node, incident)
            else:
                self._drain_incident[node.node_id] = incident

    def release_job(self, node_id: int, job_id: int) -> None:
        """Scheduler hook: ``job_id`` vacated this node.

        If the node was draining and is now empty, its deferred incident
        sends it to remediation.
        """
        node = self.nodes[node_id]
        node.release(job_id)
        if node.state is NodeState.DRAINING and not node.busy:
            incident = self._drain_incident.pop(node_id, None)
            if incident is not None:
                self.remediation.begin_remediation(node, incident)
            else:
                node.enter_remediation()
                node.counters.out_count += 1
                self.engine.schedule_after(
                    self.remediation.transient_repair_median,
                    lambda n=node: self._finish_untracked_repair(n),
                    label=f"drain-repair:{node_id}",
                )

    def _finish_untracked_repair(self, node: Node) -> None:
        node.return_to_service()
        self._node_restored(node)

    def _node_restored(self, node: Node) -> None:
        self.injector.node_rearm(node.node_id)
        if self.on_node_available is not None:
            self.on_node_available(node)

    # ------------------------------------------------------------------
    # availability indices
    # ------------------------------------------------------------------
    def _on_node_transition(
        self, node: Node, old_state: NodeState, new_state: NodeState
    ) -> None:
        """Node availability changed: patch the indices, O(log n)."""
        node_id = node.node_id
        if node.is_schedulable():
            self._schedulable_ids.add(node_id)
        else:
            self._schedulable_ids.discard(node_id)
        if node.quarantined:
            self._quarantined_ids.add(node_id)
        else:
            self._quarantined_ids.discard(node_id)
        if old_state is not new_state:
            if new_state is NodeState.REMEDIATION:
                self._remediation_count += 1
            elif old_state is NodeState.REMEDIATION:
                self._remediation_count -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def schedulable_nodes(self) -> List[Node]:
        """Healthy, non-quarantined nodes, in id order (deterministic)."""
        if not self.incremental_indices:
            return self._scan_schedulable_nodes()
        nodes = self.nodes
        return [nodes[i] for i in self._schedulable_ids]

    def schedulable_node_ids(self) -> SortedIntSet:
        """The live schedulable-id index (ascending iteration, O(1))."""
        return self._schedulable_ids

    def healthy_node_count(self) -> int:
        if not self.incremental_indices:
            return self._scan_healthy_node_count()
        return self.spec.n_nodes - self._remediation_count

    def quarantined_node_ids(self) -> List[int]:
        """Nodes currently quarantined by lemon detection, ascending."""
        if not self.incremental_indices:
            return [n.node_id for n in self.nodes.values() if n.quarantined]
        return self._quarantined_ids.as_list()

    def lemon_node_ids(self) -> List[int]:
        """Ground-truth lemon ids (for evaluating the detector)."""
        return sorted(spec.node_id for spec in self.lemon_specs)

    # Brute-force reference implementations: the pre-index O(N) scans.
    # The consistency tests assert index == scan after arbitrary churn,
    # and legacy mode (incremental_indices=False) serves queries from
    # them directly.
    def _scan_schedulable_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_schedulable()]

    def _scan_healthy_node_count(self) -> int:
        return sum(1 for n in self.nodes.values() if n.state is not NodeState.REMEDIATION)

    def __repr__(self) -> str:
        return (
            f"Cluster({self.spec.name}, nodes={self.spec.n_nodes}, "
            f"gpus={self.spec.n_gpus})"
        )
