"""Server component model.

The paper's failure attribution is component-granular: GPUs (with XID
subcategories), Infiniband HCAs/links, PCIe, host DIMMs, filesystem mounts,
front-end Ethernet, PSU, CPUs, and host system services.  We enumerate those
domains here; the per-component failure *rates* live in
:mod:`repro.cluster.hazards` so that profiles (RSC-1-like vs RSC-2-like)
stay declarative.
"""

import enum
from dataclasses import dataclass
from typing import Dict


class ComponentType(enum.Enum):
    """Failure domains tracked by health checks (Fig. 4 categories)."""

    GPU = "gpu"
    GPU_MEMORY = "gpu_memory"  # HBM: ECC errors, row-remap failures
    NVLINK = "nvlink"
    IB_LINK = "ib_link"
    PCIE = "pcie"
    FILESYSTEM_MOUNT = "filesystem_mount"
    HOST_MEMORY = "host_memory"  # DIMMs
    ETH_LINK = "eth_link"  # front-end network
    CPU = "cpu"
    PSU = "psu"
    NIC = "nic"
    SYSTEM_SERVICES = "system_services"
    BIOS = "bios"
    EUD = "eud"  # end-user diagnostics failures (Table II category)
    OPTICS = "optics"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FailureClass(enum.Enum):
    """Cluster-operator binning of hardware errors (Section II-E).

    Transient errors (link flap, corrected-then-fatal ECC burst) clear after
    a reset or short remediation; permanent errors require vendor repair or
    part replacement (e.g. a GPU swap).
    """

    TRANSIENT = "transient"
    PERMANENT = "permanent"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class ComponentSpec:
    """A component instance slot inside a node (e.g. GPU index 3).

    Slotted: the failure injector materializes one spec per component slot
    per node across the fleet.
    """

    ctype: ComponentType
    index: int

    def label(self) -> str:
        return f"{self.ctype.value}[{self.index}]"


# DGX A100-like node contents: 8 GPUs with HBM and NVLink, one backend HCA
# per GPU rail, dual CPUs, 32 DIMMs, frontend NICs, mounts as a logical
# component, and one services slot for the host software plane.
NODE_COMPONENT_COUNTS: Dict[ComponentType, int] = {
    ComponentType.GPU: 8,
    ComponentType.GPU_MEMORY: 8,
    ComponentType.NVLINK: 8,
    ComponentType.IB_LINK: 8,
    ComponentType.PCIE: 8,
    ComponentType.NIC: 2,
    ComponentType.ETH_LINK: 2,
    ComponentType.CPU: 2,
    ComponentType.HOST_MEMORY: 32,
    ComponentType.PSU: 4,
    ComponentType.FILESYSTEM_MOUNT: 3,  # NFS home, AirStore, ObjectStore
    ComponentType.SYSTEM_SERVICES: 1,
    ComponentType.BIOS: 1,
    ComponentType.EUD: 1,
    ComponentType.OPTICS: 2,
}

GPUS_PER_NODE = 8


def components_for_node() -> Dict[ComponentType, int]:
    """Return a copy of the per-node component inventory."""
    return dict(NODE_COMPONENT_COUNTS)
