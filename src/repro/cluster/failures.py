"""Failure injection: per-node Poisson processes over the hazard model.

Each node carries one pending "next failure" event whose rate is the node's
current total hazard.  Because hazards are piecewise-constant in time
(baseline + episodic regimes), we re-arm every node's pending event at each
regime boundary; between boundaries the exponential draw is exact.

When a failure fires we sample the failing component (proportional to its
share of the node's hazard), classify it transient vs permanent, run health
detection, and hand the resulting :class:`FailureIncident` to the cluster's
incident callback (which notifies the scheduler and remediation).
"""

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.components import ComponentType, FailureClass
from repro.cluster.hazards import HazardModel
from repro.cluster.health import CheckSeverity, HealthCheckResult, HealthMonitor
from repro.cluster.node import Node, NodeState
from repro.sim.engine import Engine, ScheduledEvent
from repro.sim.timeunits import DAY


@dataclass
class FailureIncident:
    """One hardware/system failure on one node, with its detection record."""

    incident_id: int
    node_id: int
    component: ComponentType
    failure_class: FailureClass
    time: float
    detected_checks: List[HealthCheckResult] = field(default_factory=list)
    detection_time: float = 0.0
    heartbeat_only: bool = False
    severity: CheckSeverity = CheckSeverity.HIGH

    @property
    def attributed(self) -> bool:
        """Whether any health check identified a cause (vs bare NODE_FAIL)."""
        return bool(self.detected_checks)

    @property
    def check_names(self) -> List[str]:
        return [r.check.name for r in self.detected_checks]


class FailureInjector:
    """Drives failures for a set of nodes on the simulation engine."""

    def __init__(
        self,
        engine: Engine,
        nodes: Dict[int, Node],
        hazards: HazardModel,
        monitor: HealthMonitor,
        rng: np.random.Generator,
        on_incident: Optional[Callable[[FailureIncident], None]] = None,
        telemetry=None,
    ):
        self.engine = engine
        self.nodes = nodes
        self.hazards = hazards
        self.monitor = monitor
        self._rng = rng
        self.on_incident = on_incident
        #: obs.Telemetry bundle; injections/attributions are traced when on.
        self.telemetry = telemetry
        self.incidents: List[FailureIncident] = []
        self._pending: Dict[int, ScheduledEvent] = {}

    def start(self) -> None:
        """Arm every node and schedule re-arms at regime boundaries."""
        self._arm_batch(list(self.nodes))
        for boundary in self.hazards.regime_boundaries():
            if boundary > self.engine.now:
                self.engine.schedule_at(
                    boundary, self._rearm_all, label="hazard-regime-boundary"
                )

    def _rearm_all(self) -> None:
        self._arm_batch(list(self.nodes))

    def _arm_batch(self, node_ids: List[int]) -> None:
        """Arm many nodes with one vectorized exponential draw.

        numpy fills array draws from the same bit stream as repeated
        scalar draws, so the sampled failure times are bit-identical to
        arming each node individually — only the per-event Python
        overhead (N generator calls, N rate lookups) is removed.
        """
        for node_id in node_ids:
            pending = self._pending.pop(node_id, None)
            if pending is not None:
                pending.cancel()
        rates = self.hazards.total_rates(node_ids, self.engine.now)
        armable = [
            (nid, rate) for nid, rate in zip(node_ids, rates) if rate > 0
        ]
        if not armable:
            return
        scales = np.array([DAY / rate for _nid, rate in armable])
        gaps = self._rng.exponential(scales)
        for (node_id, _rate), gap in zip(armable, gaps):
            self._pending[node_id] = self.engine.schedule_after(
                float(gap),
                lambda nid=node_id: self._fire(nid),
                label=f"failure:{node_id}",
            )

    def _arm(self, node_id: int) -> None:
        pending = self._pending.pop(node_id, None)
        if pending is not None:
            pending.cancel()
        rate_per_day = self.hazards.total_rate(node_id, self.engine.now)
        if rate_per_day <= 0:
            return
        gap = self._rng.exponential(DAY / rate_per_day)
        self._pending[node_id] = self.engine.schedule_after(
            gap, lambda nid=node_id: self._fire(nid), label=f"failure:{node_id}"
        )

    def _fire(self, node_id: int) -> None:
        self._pending.pop(node_id, None)
        node = self.nodes[node_id]
        t = self.engine.now
        if node.state is NodeState.REMEDIATION:
            # A node on the repair bench cannot produce a fleet-visible
            # failure; try again once it is back (re-arm keeps the process
            # alive without special-casing return-to-service).
            self._arm(node_id)
            return
        component = self.hazards.sample_component(node_id, t, self._rng)
        p_transient = self.hazards.transient_probability(component)
        failure_class = (
            FailureClass.TRANSIENT
            if self._rng.random() < p_transient
            else FailureClass.PERMANENT
        )
        incident_id = self.monitor.new_incident_id()
        results, detection_time, heartbeat_only = self.monitor.detect(
            node_id, component, t, incident_id
        )
        incident = FailureIncident(
            incident_id=incident_id,
            node_id=node_id,
            component=component,
            failure_class=failure_class,
            time=t,
            detected_checks=results,
            detection_time=detection_time,
            heartbeat_only=heartbeat_only,
            severity=self.monitor.max_severity(results),
        )
        self.incidents.append(incident)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "failure.injected",
                node.name,
                t,
                node_id=node_id,
                incident_id=incident.incident_id,
                component=component.value,
                failure_class=failure_class.value,
                attributed=incident.attributed,
                heartbeat_only=heartbeat_only,
                detection_latency_s=detection_time - t,
            )
            metrics = telemetry.metrics
            metrics.counter(
                "failures_injected_total", component=component.value
            ).inc()
            metrics.counter(
                "failures_attributed_total"
                if incident.attributed
                else "failures_unattributed_total"
            ).inc()
        if component is ComponentType.GPU or component is ComponentType.GPU_MEMORY:
            node.counters.xid_cnt += 1
        elif any(r.xid is not None for r in results):
            node.counters.xid_cnt += 1
        if self.on_incident is not None:
            self.on_incident(incident)
        self._arm(node_id)

    def node_rearm(self, node_id: int) -> None:
        """Public re-arm hook (used when a node returns from remediation)."""
        self._arm(node_id)

    def stop(self) -> None:
        for pending in self._pending.values():
            pending.cancel()
        self._pending.clear()
