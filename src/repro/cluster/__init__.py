"""Cluster hardware substrate.

Models the paper's fleet at the level its analyses need: DGX-style nodes
(8 GPUs behind an NVSwitch, NICs on a rail-optimized fabric, DIMMs, PSU,
filesystem mounts), per-component failure processes with transient /
permanent / lemon behaviour, the periodic health-check layer with severity
tiers and overlapping signals, and the remediation workflow (tickets, GPU
swaps, return-to-service).
"""

from repro.cluster.components import (
    ComponentType,
    FailureClass,
    ComponentSpec,
    NODE_COMPONENT_COUNTS,
)
from repro.cluster.xid import XidError, XID_CATALOG, xid_by_code
from repro.cluster.node import Node, NodeState
from repro.cluster.hazards import HazardModel, HazardRegime, ComponentHazard
from repro.cluster.failures import FailureIncident, FailureInjector
from repro.cluster.health import (
    CheckSeverity,
    HealthCheck,
    HealthCheckResult,
    HealthMonitor,
    default_health_checks,
)
from repro.cluster.remediation import RemediationWorkflow, RepairTicket
from repro.cluster.cluster import Cluster, ClusterSpec

__all__ = [
    "ComponentType",
    "FailureClass",
    "ComponentSpec",
    "NODE_COMPONENT_COUNTS",
    "XidError",
    "XID_CATALOG",
    "xid_by_code",
    "Node",
    "NodeState",
    "HazardModel",
    "HazardRegime",
    "ComponentHazard",
    "FailureIncident",
    "FailureInjector",
    "CheckSeverity",
    "HealthCheck",
    "HealthCheckResult",
    "HealthMonitor",
    "default_health_checks",
    "RemediationWorkflow",
    "RepairTicket",
    "Cluster",
    "ClusterSpec",
]
