"""Statistics utilities shared across the reliability analyses.

These are the numeric building blocks behind the paper's figures: rate
estimation with Gamma confidence intervals (Fig. 7's MTTF error bars),
rolling-window failure rates (Fig. 5), weighted distribution summaries
(Fig. 6), empirical CDFs (Fig. 11), and bootstrap confidence intervals
(Fig. 9).
"""

from repro.stats.fitting import (
    RateEstimate,
    estimate_rate,
    rate_confidence_interval,
    mttf_from_rate,
    fit_exponential_mttf,
    gamma_fit,
)
from repro.stats.bootstrap import bootstrap_ci, bootstrap_mean_ci
from repro.stats.rolling import rolling_rate, rolling_mean
from repro.stats.quantiles import ecdf, weighted_fractions, histogram_by_bucket
from repro.stats.survival import SurvivalCurve, exponential_survival, kaplan_meier
from repro.stats.distributions import (
    LogNormalSpec,
    ZipfSizeSpec,
    MixtureSpec,
    sample_lognormal,
    truncated_sample,
)

__all__ = [
    "RateEstimate",
    "estimate_rate",
    "rate_confidence_interval",
    "mttf_from_rate",
    "fit_exponential_mttf",
    "gamma_fit",
    "bootstrap_ci",
    "bootstrap_mean_ci",
    "rolling_rate",
    "rolling_mean",
    "ecdf",
    "weighted_fractions",
    "histogram_by_bucket",
    "SurvivalCurve",
    "exponential_survival",
    "kaplan_meier",
    "LogNormalSpec",
    "ZipfSizeSpec",
    "MixtureSpec",
    "sample_lognormal",
    "truncated_sample",
]
