"""Rolling-window series used for failure-rate evolution (Fig. 5)."""

from typing import List, Sequence, Tuple

import numpy as np


def rolling_rate(
    event_times: Sequence[float],
    window: float,
    start: float,
    end: float,
    step: float,
    exposure_per_time: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Trailing-window event rate sampled on a regular grid.

    At each grid time ``t`` the rate is the number of events in
    ``(t - window, t]`` divided by ``window * exposure_per_time``.  With
    ``exposure_per_time`` set to the node count and ``window`` in days, the
    result is "failures per node-day", the unit of Fig. 5.

    Returns ``(grid_times, rates)``.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if end < start:
        raise ValueError(f"end ({end}) must be >= start ({start})")
    if exposure_per_time <= 0:
        raise ValueError("exposure_per_time must be positive")
    times = np.sort(np.asarray(list(event_times), dtype=float))
    grid = np.arange(start, end + step / 2, step)
    # For a trailing window (t - window, t], count = #(times <= t) - #(times <= t - window).
    upper = np.searchsorted(times, grid, side="right")
    lower = np.searchsorted(times, grid - window, side="right")
    counts = (upper - lower).astype(float)
    rates = counts / (window * exposure_per_time)
    return grid, rates


def rolling_mean(
    sample_times: Sequence[float],
    sample_values: Sequence[float],
    window: float,
    start: float,
    end: float,
    step: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Trailing-window mean of a scattered series on a regular grid.

    Grid points whose trailing window contains no samples get ``nan``.
    """
    if window <= 0 or step <= 0:
        raise ValueError("window and step must be positive")
    t = np.asarray(list(sample_times), dtype=float)
    v = np.asarray(list(sample_values), dtype=float)
    if t.shape != v.shape:
        raise ValueError("sample_times and sample_values must have equal length")
    order = np.argsort(t)
    t, v = t[order], v[order]
    csum = np.concatenate([[0.0], np.cumsum(v)])
    grid = np.arange(start, end + step / 2, step)
    upper = np.searchsorted(t, grid, side="right")
    lower = np.searchsorted(t, grid - window, side="right")
    counts = upper - lower
    sums = csum[upper] - csum[lower]
    means: List[float] = []
    for c, s in zip(counts, sums):
        means.append(s / c if c > 0 else float("nan"))
    return grid, np.asarray(means)
