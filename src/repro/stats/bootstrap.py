"""Bootstrap confidence intervals.

Fig. 9 shows 90% confidence intervals around mean job-run ETTR per size
bucket; we reproduce those with a nonparametric percentile bootstrap.
"""

from typing import Callable, Optional, Sequence, Tuple

import numpy as np


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.90,
    n_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for an arbitrary statistic.

    Returns ``(point, lo, hi)``.  With fewer than two samples the interval
    degenerates to the point estimate.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    point = float(statistic(arr))
    if arr.size < 2:
        return point, point, point
    if rng is None:
        rng = np.random.default_rng(0)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        estimates[i] = statistic(resample)
    alpha = 1.0 - confidence
    lo, hi = np.percentile(estimates, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return point, float(lo), float(hi)


def bootstrap_mean_ci(
    samples: Sequence[float],
    confidence: float = 0.90,
    n_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for the mean; returns ``(mean, lo, hi)``."""
    return bootstrap_ci(
        samples, lambda a: float(np.mean(a)), confidence, n_resamples, rng
    )
