"""Empirical CDFs, weighted fractions, and bucketed histograms.

These back Fig. 6 (fraction of jobs vs fraction of compute by size),
Fig. 11 (lemon-signal CDFs), and the size-bucketing used throughout.
"""

from typing import Dict, List, Sequence, Tuple

import numpy as np


def ecdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fraction)`` of an empirical CDF.

    The fractions are right-continuous: ``frac[i]`` is the fraction of
    samples ``<= values[i]``.
    """
    arr = np.sort(np.asarray(list(samples), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build an ECDF from an empty sample")
    frac = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, frac


def ecdf_at(samples: Sequence[float], points: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CDF of ``samples`` at ``points``."""
    arr = np.sort(np.asarray(list(samples), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build an ECDF from an empty sample")
    pts = np.asarray(list(points), dtype=float)
    return np.searchsorted(arr, pts, side="right") / arr.size


def weighted_fractions(
    keys: Sequence, weights: Sequence[float]
) -> Dict[object, float]:
    """Fraction of total weight per distinct key.

    With weights of 1 this is the "fraction of jobs" view; with weights of
    GPU-time it is the "fraction of compute" view of Fig. 6.
    """
    keys = list(keys)
    w = np.asarray(list(weights), dtype=float)
    if len(keys) != w.size:
        raise ValueError("keys and weights must have equal length")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = float(w.sum())
    if total == 0:
        raise ValueError("total weight must be positive")
    out: Dict[object, float] = {}
    for key, weight in zip(keys, w):
        out[key] = out.get(key, 0.0) + float(weight)
    return {k: v / total for k, v in out.items()}


def power_of_two_bucket(value: float, minimum: int = 1) -> int:
    """Round ``value`` up to the next power of two, at least ``minimum``.

    The paper buckets job sizes by GPU count at powers of two (1, 2, 4, ...,
    4096); sizes are first rounded up to the next multiple of 8 GPUs for the
    node-level analyses.
    """
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    bucket = minimum
    while bucket < value:
        bucket *= 2
    return bucket


def histogram_by_bucket(
    values: Sequence[float],
    weights: Sequence[float],
    bucketer=power_of_two_bucket,
) -> Dict[int, float]:
    """Sum ``weights`` grouped by ``bucketer(value)``, sorted by bucket."""
    values = list(values)
    w = list(weights)
    if len(values) != len(w):
        raise ValueError("values and weights must have equal length")
    out: Dict[int, float] = {}
    for value, weight in zip(values, w):
        bucket = bucketer(value)
        out[bucket] = out.get(bucket, 0.0) + float(weight)
    return dict(sorted(out.items()))
