"""Kaplan-Meier survival estimation for job lifetimes.

Fig. 7 summarizes reliability as one MTTF number per size bucket, which is
exact under the exponential assumption the projection relies on.  The
Kaplan-Meier estimator makes no such assumption: it handles the heavy
right-censoring of job data (most attempts end for their own reasons, not
hardware's) and lets us *check* the exponential assumption rather than
posit it — a standard reliability-engineering companion analysis.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SurvivalCurve:
    """A right-continuous step function S(t) with event-time support."""

    times: np.ndarray  # distinct event times, ascending
    survival: np.ndarray  # S(t) just after each event time
    n_events: int
    n_censored: int

    def probability_at(self, t: float) -> float:
        """S(t): probability of surviving beyond duration ``t``."""
        if t < 0:
            raise ValueError("t must be non-negative")
        idx = np.searchsorted(self.times, t, side="right") - 1
        if idx < 0:
            return 1.0
        return float(self.survival[idx])

    def median_survival(self) -> float:
        """Smallest event time with S(t) <= 0.5 (inf if never reached)."""
        below = np.nonzero(self.survival <= 0.5)[0]
        if below.size == 0:
            return float("inf")
        return float(self.times[below[0]])

    def restricted_mean(self, horizon: float) -> float:
        """E[min(T, horizon)]: area under S(t) up to ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        area = 0.0
        prev_t, prev_s = 0.0, 1.0
        for t, s_value in zip(self.times, self.survival):
            if t >= horizon:
                break
            area += prev_s * (t - prev_t)
            prev_t, prev_s = float(t), float(s_value)
        area += prev_s * (horizon - prev_t)
        return area


def kaplan_meier(
    durations: Sequence[float],
    event_observed: Sequence[bool],
) -> SurvivalCurve:
    """The product-limit estimator.

    ``durations`` are times at risk (e.g. attempt runtimes);
    ``event_observed[i]`` is True when the duration ended in the event of
    interest (hardware failure) and False when censored (the attempt ended
    any other way).
    """
    durations = np.asarray(list(durations), dtype=float)
    events = np.asarray(list(event_observed), dtype=bool)
    if durations.shape != events.shape:
        raise ValueError("durations and event_observed must align")
    if durations.size == 0:
        raise ValueError("need at least one observation")
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")

    order = np.argsort(durations)
    durations, events = durations[order], events[order]
    n = durations.size
    at_risk = n
    times: List[float] = []
    survival: List[float] = []
    s = 1.0
    i = 0
    while i < n:
        t = durations[i]
        died = 0
        removed = 0
        while i < n and durations[i] == t:
            died += int(events[i])
            removed += 1
            i += 1
        if died > 0:
            s *= 1.0 - died / at_risk
            times.append(float(t))
            survival.append(s)
        at_risk -= removed
    if not times:
        # All censored: flat curve at 1.
        times, survival = [float(durations.max())], [1.0]
    return SurvivalCurve(
        times=np.asarray(times),
        survival=np.asarray(survival),
        n_events=int(events.sum()),
        n_censored=int((~events).sum()),
    )


def exponential_survival(t: np.ndarray, mttf: float) -> np.ndarray:
    """Reference S(t) = exp(-t / mttf) for assumption checking."""
    if mttf <= 0:
        raise ValueError("mttf must be positive")
    return np.exp(-np.asarray(t, dtype=float) / mttf)
