"""Parametric sampling specs for the synthetic workload.

The trace generator composes these small, validated specs: log-normal
durations, discrete size mixtures, and Zipf-like tails.  Keeping them as
frozen dataclasses makes workload profiles declarative and serializable.
"""

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LogNormalSpec:
    """A log-normal in natural-log parameterization with optional truncation."""

    mu: float
    sigma: float
    minimum: float = 0.0
    maximum: float = float("inf")

    def __post_init__(self):
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.minimum < 0:
            raise ValueError("minimum must be non-negative")
        if self.maximum <= self.minimum:
            raise ValueError("maximum must exceed minimum")

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw truncated samples (resampling the out-of-range tail)."""
        return truncated_sample(
            lambda n: rng.lognormal(self.mu, self.sigma, size=n),
            self.minimum,
            self.maximum,
            size,
        )

    @property
    def median(self) -> float:
        return float(np.exp(self.mu))


@dataclass(frozen=True)
class ZipfSizeSpec:
    """A Zipf-weighted distribution over an explicit support of sizes."""

    support: Tuple[int, ...]
    exponent: float = 1.5

    def __post_init__(self):
        if len(self.support) == 0:
            raise ValueError("support must be non-empty")
        if any(s <= 0 for s in self.support):
            raise ValueError("support values must be positive")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    def probabilities(self) -> np.ndarray:
        ranks = np.arange(1, len(self.support) + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        return weights / weights.sum()

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        idx = rng.choice(len(self.support), size=size, p=self.probabilities())
        return np.asarray(self.support, dtype=int)[idx]


@dataclass(frozen=True)
class MixtureSpec:
    """A discrete mixture: value -> probability weight (normalized lazily)."""

    weights: Tuple[Tuple[int, float], ...]

    @classmethod
    def from_dict(cls, weights: Dict[int, float]) -> "MixtureSpec":
        return cls(tuple(sorted(weights.items())))

    def __post_init__(self):
        if len(self.weights) == 0:
            raise ValueError("mixture must have at least one component")
        if any(w < 0 for _v, w in self.weights):
            raise ValueError("mixture weights must be non-negative")
        if sum(w for _v, w in self.weights) <= 0:
            raise ValueError("mixture weights must sum to a positive value")

    def values(self) -> np.ndarray:
        return np.asarray([v for v, _w in self.weights], dtype=int)

    def probabilities(self) -> np.ndarray:
        w = np.asarray([w for _v, w in self.weights], dtype=float)
        return w / w.sum()

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.choice(self.values(), size=size, p=self.probabilities())

    def probability_of(self, value: int) -> float:
        for (v, _w), p in zip(self.weights, self.probabilities()):
            if v == value:
                return float(p)
        return 0.0


def sample_lognormal(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    size: int = 1,
    minimum: float = 0.0,
    maximum: float = float("inf"),
) -> np.ndarray:
    """Convenience: sample a truncated log-normal given its median."""
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    spec = LogNormalSpec(
        mu=float(np.log(median)), sigma=sigma, minimum=minimum, maximum=maximum
    )
    return spec.sample(rng, size=size)


def truncated_sample(draw, minimum: float, maximum: float, size: int) -> np.ndarray:
    """Rejection-sample ``size`` values from ``draw`` within [minimum, maximum].

    ``draw(n)`` must return ``n`` i.i.d. samples.  Falls back to clipping
    after a bounded number of rounds so pathological bounds cannot hang.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    out = np.empty(0)
    for _round in range(100):
        need = size - out.size
        if need <= 0:
            break
        batch = np.asarray(draw(max(need * 2, 8)), dtype=float)
        keep = batch[(batch >= minimum) & (batch <= maximum)]
        out = np.concatenate([out, keep[:need]])
    if out.size < size:
        pad = np.clip(np.asarray(draw(size - out.size), dtype=float), minimum, maximum)
        out = np.concatenate([out, pad])
    return out
