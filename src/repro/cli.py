"""Command-line interface: run campaigns and regenerate analyses.

Subcommands::

    repro campaign  --cluster rsc1 --nodes 64 --days 30 --seed 42 \
                    --out trace.jsonl [--lemon-detection] [--risk-aware]
    repro campaign  --seeds 0,1,2,3 --workers 4      # pooled multi-seed sweep
    repro campaign  --seeds 0..7 --resume ckpt/      # crash-safe, resumable
    repro campaign  --seeds 0..7 --backend work-queue \
                    --backend-opt root=/shared/queue # distributed dispatch
    repro worker    /shared/queue [--once]           # drain a work queue
    repro campaign  --telemetry out/ ...             # + obs streams per trace
    repro run       ...                              # alias for campaign
    repro analyze   --trace trace.jsonl --figure fig3
    repro analyze   --trace trace.jsonl --figure all
    repro live      --trace trace.jsonl [--report-every 5] \
                    [--snapshot-out live.json] [--resume live.json]
    repro live      --cluster rsc1 --nodes 64 --days 30 --seed 42  # tap a fresh sim
    repro live      --telemetry out/ ...             # + obs stream for the session
    repro obs summary out/                           # telemetry run report
    repro serve     --resume live.json --port 0      # reliability-as-a-service
    repro sweep     [--gpus 100000]
    repro plan      --gpus 100000 --rf 6.5 --target-ettr 0.9 [--restart-min 2]

The shared flags are normalized across subcommands (parent parsers):
``--cluster/--nodes/--days/--seed`` mean the same thing to ``campaign``
and ``live``; ``--telemetry DIR`` is the same observability switch
everywhere; ``--resume`` always means "continue from saved state" (a
sweep checkpoint directory for ``campaign``, an estimator snapshot for
``live``).

``repro live`` streams a trace (or a freshly simulated campaign) through
the online estimators in ``repro.live``, printing periodic reliability
reports and optionally checkpointing estimator state to a snapshot that
``--resume`` continues exactly (see docs/STREAMING.md).

Campaign results are served from the content-addressed trace cache when
the same fully-resolved config was simulated before; pass ``--no-cache``
(or set ``REPRO_TRACE_CACHE=off``) to always re-simulate.

stdout carries machine-readable results only (figures, tables, reports);
diagnostics go through the ``repro.cli`` logger to stderr.  ``--verbose``
and ``-q/--quiet`` raise/lower the log level.

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

import argparse
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro import CampaignConfig, ClusterSpec
from repro.sim.timeunits import HOUR, MINUTE
from repro.workload.trace import Trace

logger = logging.getLogger("repro.cli")

#: figure name -> callable(trace) returning a renderable result
_FIGURES = {
    "fig3": "job status breakdown",
    "fig4": "attributed failure rates",
    "fig5": "failure-rate evolution",
    "fig6": "job-size distribution",
    "fig7": "MTTF by size + projection",
    "fig8": "lost goodput",
    "fig9": "expected vs measured ETTR",
    "fig11": "lemon signals + Table II",
    "headline": "headline observations",
}


def _render_figure(name: str, trace: Trace) -> str:
    from repro.analysis import (
        attributed_failure_rates,
        ettr_comparison,
        failure_rate_timeline,
        goodput_loss_analysis,
        headline_numbers,
        job_size_distribution,
        job_status_breakdown,
        lemon_analysis,
        mttf_analysis,
    )

    if name == "fig3":
        return job_status_breakdown(trace).render()
    if name == "fig4":
        return attributed_failure_rates(trace).render()
    if name == "fig5":
        return failure_rate_timeline(trace).render()
    if name == "fig6":
        return job_size_distribution(trace).render()
    if name == "fig7":
        return mttf_analysis(trace).render()
    if name == "fig8":
        return goodput_loss_analysis(trace).render()
    if name == "fig9":
        return ettr_comparison(
            trace, min_total_runtime=12 * HOUR, qos=None, min_runs_per_bucket=2
        ).render()
    if name == "fig11":
        return lemon_analysis(trace).render()
    if name == "headline":
        return headline_numbers(trace).render()
    raise KeyError(name)


def _seed_out_path(out: str, seed: int, multi: bool) -> Path:
    """Per-seed output path: ``trace.jsonl`` -> ``trace-seed3.jsonl``."""
    path = Path(out)
    if not multi:
        return path
    return path.with_name(f"{path.stem}-seed{seed}{path.suffix}")


def _parse_backend_opts(pairs) -> dict:
    """``--backend-opt KEY=VALUE`` pairs -> a backend_options dict.

    Values are JSON-parsed when possible (``workers=4`` -> int,
    ``embedded=false`` -> bool) and kept as strings otherwise
    (``root=/shared/queue``).
    """
    import json

    options = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--backend-opt expects KEY=VALUE, got {pair!r}"
            )
        try:
            options[key] = json.loads(value)
        except json.JSONDecodeError:
            options[key] = value
    return options


def _run_campaigns_with_telemetry(args, configs, seeds) -> int:
    """The ``--telemetry DIR`` path: instrumented, inline execution.

    Each seed gets its own ``<stem>.events.jsonl`` + ``<stem>.metrics.json``
    pair next to its trace output name, so ``repro obs summary DIR``
    can aggregate the run.  Worker processes cannot stream telemetry back,
    so this path always simulates in-process.
    """
    from repro.campaign import run_campaign
    from repro.obs import Telemetry
    from repro.options import RunOptions
    from repro.runtime import TraceCache

    telemetry_dir = Path(args.telemetry)
    telemetry_dir.mkdir(parents=True, exist_ok=True)
    cache = None if args.no_cache else TraceCache()
    checkpoint = None
    if getattr(args, "resume", None):
        from repro.resilience import CampaignCheckpoint

        checkpoint = CampaignCheckpoint(args.resume)
        try:
            checkpoint.begin(configs)
        except ValueError as err:
            logger.error("%s", err)
            return 2
    multi = len(seeds) > 1
    for seed, config in zip(seeds, configs):
        out = _seed_out_path(args.out, seed, multi=multi)
        telemetry = Telemetry.to_directory(telemetry_dir, stem=out.stem)
        if cache is not None:
            # Route this seed's cache traffic into this seed's stream.
            cache.telemetry = telemetry
        try:
            trace = checkpoint.load(config) if checkpoint is not None else None
            if trace is None:
                trace = cache.get(config) if cache is not None else None
            if trace is None:
                trace = run_campaign(
                    config, options=RunOptions(telemetry=telemetry)
                )
                if cache is not None:
                    cache.put(config, trace)
            if checkpoint is not None:
                checkpoint.record(config, trace)
        finally:
            telemetry.finalize()
        trace.save(out)
        runtime = trace.metadata.get("runtime", {})
        logger.info(
            "wrote %s: %d attempt records, %d events (%s); telemetry: %s",
            out,
            len(trace.job_records),
            len(trace.events),
            runtime.get("source", "simulated"),
            telemetry.tracer.sink.path,
        )
    logger.info(
        "telemetry streams + metrics snapshots in %s "
        "(render with: repro obs summary %s)",
        telemetry_dir,
        telemetry_dir,
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.runtime import CampaignPool, seed_sweep_configs

    if args.cluster == "rsc1":
        spec = ClusterSpec.rsc1_like(n_nodes=args.nodes, campaign_days=args.days)
    else:
        spec = ClusterSpec.rsc2_like(n_nodes=args.nodes, campaign_days=args.days)
    base = CampaignConfig(
        cluster_spec=spec,
        duration_days=args.days,
        seed=args.seed,
        lemon_detection=args.lemon_detection,
        reliability_aware_placement=args.risk_aware,
    )
    if args.seeds:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip() != ""]
        except ValueError:
            logger.error(
                "--seeds expects comma-separated integers, got %r", args.seeds
            )
            return 2
    else:
        seeds = [args.seed]
    if args.workers is not None and args.workers < 1:
        logger.error("--workers must be >= 1")
        return 2
    configs = seed_sweep_configs(base, seeds)
    logger.info(
        "simulating %s: %d GPUs x %s days (seed%s %s) ...",
        spec.name,
        spec.n_gpus,
        args.days,
        "s" if len(seeds) > 1 else "",
        ",".join(str(s) for s in seeds),
    )
    if args.telemetry:
        return _run_campaigns_with_telemetry(args, configs, seeds)
    from repro.options import RunOptions

    try:
        backend_options = _parse_backend_opts(
            getattr(args, "backend_opt", None)
        )
    except ValueError as err:
        logger.error("%s", err)
        return 2
    pool = CampaignPool(
        options=RunOptions(
            workers=args.workers,
            cache=False if args.no_cache else None,
            checkpoint_dir=args.resume,
            backend=getattr(args, "backend", None) or "local-pool",
            backend_options=backend_options or None,
        )
    )
    try:
        traces = pool.run(configs)
    except ValueError as err:
        # e.g. --resume directory belonging to a different sweep
        logger.error("%s", err)
        return 2
    for seed, trace in zip(seeds, traces):
        out = _seed_out_path(args.out, seed, multi=len(seeds) > 1)
        trace.save(out)
        source = trace.metadata.get("runtime", {}).get("source", "simulated")
        logger.info(
            "wrote %s: %d attempt records, %d events (%s)",
            out,
            len(trace.job_records),
            len(trace.events),
            source,
        )
    logger.info("%s", pool.last_stats.render())
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Drain a work-queue directory: the external half of ``work-queue``.

    Any number of these can run concurrently, on any hosts sharing the
    queue's filesystem; each claims tasks atomically, simulates them,
    and publishes the traces into the queue's shared artifact store.
    The dispatcher (``repro campaign --backend work-queue --backend-opt
    root=DIR``) picks the results up from there.
    """
    import json

    from repro.backends import drain_queue

    queue = Path(args.queue)
    logger.info(
        "draining %s (poll every %.3fs%s%s) ...",
        queue,
        args.poll_interval,
        f", at most {args.max_tasks} tasks" if args.max_tasks else "",
        ", until empty" if args.once else "",
    )
    stats = drain_queue(
        queue,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        max_tasks=args.max_tasks,
        stop_when_empty=args.once,
    )
    logger.info(
        "worker %s: %d drained, %d failed",
        stats["worker"], stats["drained"], stats["failed"],
    )
    print(json.dumps(stats))
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    from repro.campaign import Campaign
    from repro.live import (
        CampaignTap,
        LiveAnalytics,
        LiveConfig,
        replay_trace,
    )
    from repro.sim.timeunits import DAY

    overrides = {"step_days": args.step_days}
    if args.window_days is not None:
        overrides["window_days"] = args.window_days
    if args.rf_min_gpus is not None:
        overrides["rf_min_gpus"] = args.rf_min_gpus

    telemetry = None
    if args.telemetry:
        from repro.obs import Telemetry

        telemetry = Telemetry.to_directory(args.telemetry, stem="live")

    state = {"next_report": args.report_every, "reported_at": -1.0}

    def maybe_report(analytics: "LiveAnalytics") -> None:
        if not args.report_every:
            return
        emitted = False
        while analytics.watermark / DAY >= state["next_report"]:
            if not emitted:
                print(analytics.report().render())
                print()
                emitted = True
                state["reported_at"] = analytics.watermark
            state["next_report"] += args.report_every
        if emitted and args.snapshot_out:
            analytics.save_snapshot(args.snapshot_out)

    if args.trace:
        trace = Trace.load(args.trace)
        if args.resume:
            analytics = LiveAnalytics.load_snapshot(
                args.resume, telemetry=telemetry
            )
            logger.info(
                "resuming from %s at day %.2f (%d items ingested)",
                args.resume,
                analytics.watermark / DAY,
                sum(analytics.counts.values()),
            )
            state["next_report"] = (
                (analytics.watermark / DAY) // args.report_every + 1
            ) * args.report_every if args.report_every else 0
        else:
            analytics = LiveAnalytics(
                LiveConfig.for_trace(trace, **overrides), telemetry=telemetry
            )
        bus = replay_trace(
            trace,
            analytics,
            batch_size=args.batch,
            on_batch=lambda: maybe_report(analytics),
        )
    else:
        if args.resume:
            logger.error("--resume requires --trace (replay mode)")
            return 2
        if args.cluster == "rsc1":
            spec = ClusterSpec.rsc1_like(
                n_nodes=args.nodes, campaign_days=args.days
            )
        else:
            spec = ClusterSpec.rsc2_like(
                n_nodes=args.nodes, campaign_days=args.days
            )
        config = CampaignConfig(
            cluster_spec=spec, duration_days=args.days, seed=args.seed
        )
        analytics = LiveAnalytics(
            LiveConfig(
                cluster_name=spec.name,
                n_nodes=spec.n_nodes,
                n_gpus=spec.n_gpus,
                span_seconds=args.days * DAY,
                **overrides,
            ),
            telemetry=telemetry,
        )
        logger.info(
            "tapping a fresh %s campaign: %d nodes x %s days (seed %d)",
            spec.name,
            args.nodes,
            args.days,
            args.seed,
        )
        tap = CampaignTap(
            Campaign(config),
            analytics,
            batch_size=args.batch,
            on_batch=lambda: maybe_report(analytics),
        )
        tap.run()
        bus = tap.bus

    if state["reported_at"] != analytics.watermark:
        print(analytics.report().render())
    if args.snapshot_out:
        path = analytics.save_snapshot(args.snapshot_out)
        logger.info("final snapshot: %s", path)
    if telemetry is not None:
        telemetry.finalize()
        logger.info(
            "telemetry in %s (render with: repro obs summary %s)",
            args.telemetry,
            args.telemetry,
        )
    stats = bus.stats
    logger.info(
        "stream: %d items in %d flushes (max depth %d, dropped %d)",
        stats.delivered,
        stats.flushes,
        stats.max_depth,
        stats.dropped,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.live import LiveAnalytics, LiveConfig, replay_trace
    from repro.runtime import TraceCache
    from repro.serve import ReliabilityService, serve_until_shutdown
    from repro.sim.timeunits import DAY

    telemetry = None
    if args.telemetry:
        from repro.obs import Telemetry

        telemetry = Telemetry.to_directory(args.telemetry, stem="serve")

    trace_cache = TraceCache(enabled=False if args.no_cache else None)

    if args.resume:
        analytics = LiveAnalytics.load_snapshot(args.resume, telemetry=telemetry)
        logger.info(
            "resumed snapshot %s at day %.2f (%d items ingested)",
            args.resume,
            analytics.watermark / DAY,
            sum(analytics.counts.values()),
        )
        if args.trace:
            replay_trace(Trace.load(args.trace), analytics, batch_size=args.batch)
    elif args.trace:
        trace = Trace.load(args.trace)
        analytics = LiveAnalytics(
            LiveConfig.for_trace(trace), telemetry=telemetry
        )
        replay_trace(trace, analytics, batch_size=args.batch)
    else:
        from repro.runtime.cache import cached_run_campaign

        if args.cluster == "rsc1":
            spec = ClusterSpec.rsc1_like(
                n_nodes=args.nodes, campaign_days=args.days
            )
        else:
            spec = ClusterSpec.rsc2_like(
                n_nodes=args.nodes, campaign_days=args.days
            )
        config = CampaignConfig(
            cluster_spec=spec, duration_days=args.days, seed=args.seed
        )
        logger.info(
            "warming from a fresh %s campaign: %d nodes x %s days (seed %d)",
            spec.name, args.nodes, args.days, args.seed,
        )
        trace = cached_run_campaign(config, cache=trace_cache)
        analytics = LiveAnalytics(
            LiveConfig.for_trace(trace), telemetry=telemetry
        )
        replay_trace(trace, analytics, batch_size=args.batch)

    run_options = None
    if getattr(args, "backend", None):
        from repro.options import RunOptions

        try:
            backend_options = _parse_backend_opts(
                getattr(args, "backend_opt", None)
            )
        except ValueError as err:
            logger.error("%s", err)
            return 2
        run_options = RunOptions(
            backend=args.backend, backend_options=backend_options or None
        )
    service = ReliabilityService(
        analytics,
        telemetry=telemetry,
        trace_cache=trace_cache,
        whatif_cache_size=args.whatif_cache,
        max_concurrent_whatif=args.whatif_workers,
        run_options=run_options,
    )
    snapshot_out = args.snapshot_out or args.resume

    def on_bound(server) -> None:
        # The stdout contract: the bound address is the ONLY stdout
        # line, so `addr=$(repro serve --port 0 &)`-style automation can
        # parse it.  Everything else goes through the stderr logger.
        print(server.address, flush=True)
        logger.info("serving on %s (Ctrl-C to stop)", server.address)

    asyncio.run(
        serve_until_shutdown(
            service,
            host=args.host,
            port=args.port,
            snapshot_out=snapshot_out,
            grace_s=args.grace,
            on_bound=on_bound,
        )
    )
    if snapshot_out:
        logger.info("final snapshot: %s", snapshot_out)
    if telemetry is not None:
        telemetry.finalize()
    return 0


def cmd_obs_summary(args: argparse.Namespace) -> int:
    from repro.obs import summarize

    try:
        summary = summarize(args.path)
    except FileNotFoundError as err:
        logger.error("%s", err)
        return 1
    except ValueError as err:
        logger.error("malformed telemetry: %s", err)
        return 1
    print(summary.render(top_labels=args.top))
    return 0


def cmd_obs_profile(args: argparse.Namespace) -> int:
    from repro.obs import find_telemetry_files, spans_from_stream
    from repro.obs.spans import chrome_trace_events, span_phase_stats

    try:
        pairs = find_telemetry_files(args.path)
    except FileNotFoundError as err:
        logger.error("%s", err)
        return 1
    all_spans = []
    trace_events = []
    for tid, (stream, _metrics) in enumerate(pairs, start=1):
        try:
            spans = spans_from_stream(stream)
        except ValueError as err:
            logger.error("malformed telemetry: %s", err)
            return 1
        all_spans.extend(spans)
        # One Chrome-trace track per stream: span ids are only unique
        # within a stream, and separate seeds overlap in wall time.
        trace_events.extend(chrome_trace_events(spans, tid=tid))
    if not all_spans:
        logger.error(
            "no span.end events in %s (was the run instrumented with "
            "telemetry enabled?)", args.path
        )
        return 1
    if args.chrome_trace:
        import json as _json

        document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            _json.dump(document, fh)
            fh.write("\n")
        logger.info(
            "wrote %d trace events to %s (load in chrome://tracing or "
            "Perfetto)", len(trace_events), args.chrome_trace
        )
    from repro.analysis.report import render_table

    rows = [
        (
            s.name,
            str(s.count),
            f"{s.total_s:.3f}s",
            f"{s.p50_s * 1e3:.1f}ms",
            f"{s.p95_s * 1e3:.1f}ms",
            f"{s.max_s * 1e3:.1f}ms",
        )
        for s in span_phase_stats(all_spans)[: args.top]
    ]
    print(
        render_table(
            ["span", "count", "total", "p50", "p95", "max"],
            rows,
            title=f"span profile ({len(all_spans)} spans)",
        )
    )
    return 0


def cmd_obs_timeline(args: argparse.Namespace) -> int:
    from repro.obs import reconstruct_timeline

    trace = Trace.load(args.trace)
    timeline = reconstruct_timeline(trace)
    if args.json:
        timeline.write_json(args.json)
        logger.info(
            "wrote %d incidents to %s", len(timeline.incidents), args.json
        )
    print(timeline.render(limit=args.limit))
    return 0


def cmd_obs_health(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path as _Path

    from repro.obs import FleetHealthScorer, HealthSignals, summarize

    target = _Path(args.path)
    if target.is_file() and target.suffix == ".json":
        # A live-session snapshot (repro live --snapshot-out).
        from repro.live import LiveAnalytics

        analytics = LiveAnalytics.load_snapshot(target)
        report = analytics.health()
    else:
        try:
            summary = summarize(target)
        except FileNotFoundError as err:
            logger.error("%s", err)
            return 1
        except ValueError as err:
            logger.error("malformed telemetry: %s", err)
            return 1
        n_nodes = args.nodes if args.nodes else 1
        report = FleetHealthScorer().score(
            HealthSignals.from_summary(summary, n_nodes=n_nodes)
        )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    names = list(_FIGURES) if args.figure == "all" else [args.figure]
    for i, name in enumerate(names):
        if i:
            print("\n" + "=" * 72 + "\n")
        try:
            print(_render_figure(name, trace))
        except ValueError as err:
            print(f"{name}: not computable on this trace ({err})")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.fleet_report import fleet_report

    trace = Trace.load(args.trace)
    print(fleet_report(trace).render())
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_all

    trace = Trace.load(args.trace)
    written = export_all(trace, args.out_dir)
    for name, path in sorted(written.items()):
        print(f"{name}: {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.checkpoint_sweep import checkpoint_sweep

    print(checkpoint_sweep(n_gpus=args.gpus).render())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.checkpoint import required_checkpoint_interval

    n_nodes = max(1, args.gpus // 8)
    rf = args.rf / 1000.0
    try:
        dt = required_checkpoint_interval(
            args.target_ettr,
            n_nodes=n_nodes,
            failure_rate_per_node_day=rf,
            restart_overhead=args.restart_min * MINUTE,
        )
    except ValueError as err:
        print(f"target unreachable: {err}")
        return 1
    mttf_hours = 24.0 / (n_nodes * rf) if rf > 0 else float("inf")
    print(
        f"{args.gpus:,} GPUs at r_f={args.rf}/1000 node-days "
        f"(job MTTF {mttf_hours:.2f} h):"
    )
    if dt == float("inf"):
        print(f"  ETTR {args.target_ettr}: any checkpoint interval works")
    else:
        print(
            f"  ETTR {args.target_ettr}: checkpoint every "
            f"{dt / MINUTE:.1f} minutes "
            f"(restart overhead {args.restart_min:.0f} min)"
        )
    return 0


def _parent_parsers():
    """Shared argument groups, normalized across subcommands.

    Every subcommand that simulates takes the same ``--cluster/--nodes/
    --days/--seed`` quartet; every one that sweeps takes the same
    ``--seeds/--workers/--no-cache``; every one that can observe takes
    the same ``--telemetry DIR``.  Parent parsers make that a structural
    guarantee instead of a convention.
    """
    cluster = argparse.ArgumentParser(add_help=False)
    cluster.add_argument("--cluster", choices=("rsc1", "rsc2"),
                         default="rsc1", help="cluster profile to simulate")
    cluster.add_argument("--nodes", type=int, default=64)
    cluster.add_argument("--days", type=float, default=30.0)
    cluster.add_argument("--seed", type=int, default=0)

    sweep = argparse.ArgumentParser(add_help=False)
    sweep.add_argument("--seeds", default=None,
                       help="comma-separated seed sweep run through the "
                            "campaign pool (overrides --seed); writes one "
                            "<out>-seedN.jsonl per seed")
    sweep.add_argument("--workers", type=int, default=None,
                       help="max worker processes for --seeds sweeps "
                            "(default: CPU count)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the content-addressed trace cache")

    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write structured telemetry (.events.jsonl streams plus "
             ".metrics.json snapshots) into DIR; inspect with "
             "`repro obs summary DIR`")

    from repro.backends import backend_names

    backend = argparse.ArgumentParser(add_help=False)
    backend.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="execution backend for simulations: inline (serial, "
             "in-process), local-pool (process pool, the default), or "
             "work-queue (filesystem queue drained by `repro worker` "
             "processes on any host)")
    backend.add_argument(
        "--backend-opt", action="append", default=None, metavar="KEY=VALUE",
        help="backend factory option (repeatable), e.g. "
             "--backend-opt root=/shared/queue --backend-opt "
             "embedded=false for work-queue; values are JSON-parsed "
             "when possible")
    return cluster, sweep, telemetry, backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Revisiting Reliability in "
            "Large-Scale ML Research Clusters' (HPCA 2025)"
        ),
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level diagnostics on stderr",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="errors only on stderr (stdout results are unaffected)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    (
        cluster_parent,
        sweep_parent,
        telemetry_parent,
        backend_parent,
    ) = _parent_parsers()

    p = sub.add_parser(
        "campaign", aliases=["run"],
        parents=[cluster_parent, sweep_parent, telemetry_parent,
                 backend_parent],
        help="simulate a cluster campaign",
    )
    p.add_argument("--out", default="trace.jsonl")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="crash-safe sweep checkpoint directory: completed "
                        "seeds persist there and a re-run with the same "
                        "DIR resumes bit-identically")
    p.add_argument("--lemon-detection", action="store_true")
    p.add_argument("--risk-aware", action="store_true",
                   help="reliability-aware gang placement")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "live",
        parents=[cluster_parent, telemetry_parent],
        help="stream a trace or fresh campaign through the online "
             "reliability estimators",
    )
    p.add_argument("--trace", default=None,
                   help="replay a saved trace; omit to tap a fresh "
                        "simulation instead")
    p.add_argument("--window-days", type=float, default=None,
                   help="rolling failure-rate window (default: the batch "
                        "Fig. 5 rule, 30d scaled by span/330)")
    p.add_argument("--step-days", type=float, default=1.0)
    p.add_argument("--rf-min-gpus", type=int, default=None,
                   help="pin the r_f job-size floor (exact streaming r_f); "
                        "default: auto floor, half the largest job")
    p.add_argument("--report-every", type=float, default=0.0, metavar="DAYS",
                   help="print a live report each time the watermark "
                        "crosses another DAYS of simulated time")
    p.add_argument("--snapshot-out", default=None, metavar="PATH",
                   help="write the estimator snapshot here (refreshed at "
                        "each periodic report and at the end)")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="restore a snapshot and continue the replay "
                        "exactly (requires --trace)")
    p.add_argument("--batch", type=int, default=4096,
                   help="bus flush batch size")
    p.set_defaults(func=cmd_live)

    p = sub.add_parser(
        "worker",
        help="drain a work-queue directory (the work-queue backend's "
             "external worker; run any number on any hosts sharing it)",
    )
    p.add_argument("queue",
                   help="queue directory (--backend-opt root=DIR of the "
                        "dispatching sweep)")
    p.add_argument("--worker-id", default=None,
                   help="stable worker identity in claims and acks "
                        "(default: worker-<pid>)")
    p.add_argument("--max-tasks", type=int, default=None,
                   help="exit after processing this many tasks")
    p.add_argument("--poll-interval", type=float, default=0.05,
                   help="seconds between queue re-checks when idle")
    p.add_argument("--once", action="store_true",
                   help="exit when the queue runs empty instead of "
                        "waiting for more work (or the STOP sentinel)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "serve",
        parents=[cluster_parent, telemetry_parent, backend_parent],
        help="reliability-as-a-service: async HTTP API over the live "
             "estimators",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="0 binds an ephemeral port; the bound address is "
                        "printed as the only stdout line")
    p.add_argument("--trace", default=None,
                   help="warm-start by replaying this saved trace")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="warm-start from an estimator snapshot "
                        "(combine with --trace to continue its replay)")
    p.add_argument("--snapshot-out", default=None, metavar="PATH",
                   help="write a final atomic snapshot here on shutdown "
                        "(default: the --resume path, if given)")
    p.add_argument("--whatif-cache", type=int, default=256,
                   help="bounded-LRU size of the what-if response cache")
    p.add_argument("--whatif-workers", type=int, default=2,
                   help="max concurrent what-if computations before "
                        "503 overload")
    p.add_argument("--grace", type=float, default=1.0,
                   help="seconds in-flight requests get to finish on "
                        "SIGTERM/SIGINT")
    p.add_argument("--batch", type=int, default=4096,
                   help="bus flush batch size for warm-start replay")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed trace cache for "
                        "on-demand what-if campaigns")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("obs", help="inspect emitted telemetry")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "summary", help="run report from telemetry streams + metrics"
    )
    p.add_argument("path",
                   help="telemetry directory (or a single .events.jsonl)")
    p.add_argument("--top", type=int, default=10,
                   help="event-label rows in the timing table")
    p.set_defaults(func=cmd_obs_summary)
    p = obs_sub.add_parser(
        "profile",
        help="span profile (p50/p95 table + optional Chrome trace JSON)",
    )
    p.add_argument("path",
                   help="telemetry directory (or a single .events.jsonl)")
    p.add_argument("--chrome-trace", default=None, metavar="OUT",
                   help="also write Chrome trace-event JSON here "
                        "(chrome://tracing / Perfetto)")
    p.add_argument("--top", type=int, default=20,
                   help="span rows in the profile table")
    p.set_defaults(func=cmd_obs_profile)
    p = obs_sub.add_parser(
        "timeline",
        help="reconstruct per-incident detection→recovery timelines "
             "from a saved trace",
    )
    p.add_argument("--trace", required=True,
                   help="saved trace file (repro campaign --out)")
    p.add_argument("--json", default=None, metavar="OUT",
                   help="also write the incident records as JSON")
    p.add_argument("--limit", type=int, default=15,
                   help="incident rows in the rendered table")
    p.set_defaults(func=cmd_obs_timeline)
    p = obs_sub.add_parser(
        "health",
        help="fleet health score (0-100, attributed) from telemetry "
             "or a live snapshot",
    )
    p.add_argument("path",
                   help="telemetry directory, events stream, or a live "
                        "session snapshot (.json)")
    p.add_argument("--nodes", type=int, default=None,
                   help="fleet size for telemetry-derived signals "
                        "(default 1; live snapshots carry their own)")
    p.add_argument("--json", action="store_true",
                   help="emit the health report as JSON")
    p.set_defaults(func=cmd_obs_health)

    p = sub.add_parser("analyze", help="render figures from a saved trace")
    p.add_argument("--trace", required=True)
    p.add_argument(
        "--figure", choices=sorted(_FIGURES) + ["all"], default="headline"
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("report", help="one-page fleet report from a trace")
    p.add_argument("--trace", required=True)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("export", help="export figure data as CSV")
    p.add_argument("--trace", required=True)
    p.add_argument("--out-dir", default="figures")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("sweep", help="Fig. 10 checkpoint design space")
    p.add_argument("--gpus", type=int, default=100_000)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("plan", help="required checkpoint cadence for a run")
    p.add_argument("--gpus", type=int, required=True)
    p.add_argument("--rf", type=float, default=6.5,
                   help="failures per 1000 node-days")
    p.add_argument("--target-ettr", type=float, default=0.9)
    p.add_argument("--restart-min", type=float, default=5.0)
    p.set_defaults(func=cmd_plan)
    return parser


def _configure_logging(args: argparse.Namespace) -> None:
    """Point the ``repro`` logger at stderr at the requested level.

    Handlers are only attached once (re-entrant ``main`` calls, tests);
    the level and the target stream are re-applied every invocation so
    flags always win and redirected ``sys.stderr`` (tests, pipelines) is
    honoured.
    """
    root = logging.getLogger("repro")
    handler = next(
        (h for h in root.handlers if isinstance(h, logging.StreamHandler)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
        root.propagate = False
    else:
        # Direct assignment, not setStream(): the old stream may already
        # be closed (e.g. a previous test's capture buffer) and setStream
        # would try to flush it.
        handler.stream = sys.stderr
    if getattr(args, "verbose", False):
        root.setLevel(logging.DEBUG)
    elif getattr(args, "quiet", False):
        root.setLevel(logging.ERROR)
    else:
        root.setLevel(logging.INFO)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
