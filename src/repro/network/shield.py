"""SHIELD-style self-healing routing (Section IV-B's middle ground).

InfiniBand's SHIELD lets switches coordinate around *failed* links.  The
paper's experience: "even with such a feature enabled, the threshold for
counting a link as down may be too conservative, resulting in
re-transmissions at the protocol level along with possible network
degradation.  In particular, in the bring-up phase of RSC-1, we observed
as much as 50-75% bandwidth loss."

We model that behaviour: SHIELD routes statically (hash-based) but fails
over to the next healthy spine when its chosen link is *hard down* — it
cannot see links that are merely eating bandwidth to retransmissions
unless their error rate crosses its (conservative) threshold.  Adaptive
routing, by contrast, reacts to load and degradation continuously.
"""

from dataclasses import dataclass
from typing import List

from repro.network.links import Link, LinkState
from repro.network.routing import StaticRouting, _stable_hash
from repro.network.topology import FabricTopology

#: BER above which SHIELD's link-fault logic finally counts a link as
#: down.  Deliberately conservative (the paper's complaint): links can
#: lose most of their goodput to retransmissions well below this.
DEFAULT_SHIELD_BER_THRESHOLD = 2e-4


@dataclass
class ShieldRouting(StaticRouting):
    """Static hashing with fail-over around hard-down links only."""

    ber_threshold: float = DEFAULT_SHIELD_BER_THRESHOLD

    name = "shield"

    def _link_counts_as_down(self, link: Link) -> bool:
        return (
            link.state is LinkState.DOWN
            or link.bit_error_rate >= self.ber_threshold
        )

    def route(self, fabric, src_server, dst_server, rail, link_load):
        if fabric.pod_of(src_server) == fabric.pod_of(dst_server):
            return fabric.path(src_server, dst_server, rail)
        spines = fabric.spine_candidates(rail)
        start = _stable_hash(src_server, dst_server, rail) % len(spines)
        src_leaf = fabric.leaf_name(fabric.pod_of(src_server), rail)
        dst_leaf = fabric.leaf_name(fabric.pod_of(dst_server), rail)
        # Walk the ECMP ring from the hashed choice; take the first spine
        # whose two legs SHIELD does not consider down.
        for offset in range(len(spines)):
            spine = spines[(start + offset) % len(spines)]
            up = fabric.link(src_leaf, spine)
            down = fabric.link(spine, dst_leaf)
            if not (
                self._link_counts_as_down(up)
                or self._link_counts_as_down(down)
            ):
                return fabric.path(src_server, dst_server, rail, spine=spine)
        # Every spine looks down: fall back to the hashed choice and let
        # the flow starve (matches a partitioned fabric).
        return fabric.path(
            src_server, dst_server, rail, spine=spines[start]
        )


def apply_shield_link_faulting(
    fabric: FabricTopology,
    ber_threshold: float = DEFAULT_SHIELD_BER_THRESHOLD,
) -> List[Link]:
    """Hard-down every link whose BER crosses SHIELD's threshold.

    Returns the links taken down.  This is the switch-firmware action;
    :class:`ShieldRouting` then routes around the downed links.
    """
    downed = []
    for link in fabric.all_links():
        if link.state is LinkState.UP and link.bit_error_rate >= ber_threshold:
            link.bring_down()
            downed.append(link)
    return downed
