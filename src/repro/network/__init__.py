"""Rail-optimized InfiniBand fabric model with adaptive routing.

Reproduces the Section IV-B experiments at flow level: a topology graph
(servers x 8 rails -> per-pod rail switches -> spine switches), link-level
fault injection (bit-error-rate degradation and flaps), static
(deterministic-hash) vs adaptive (load/health-aware) routing, and a ring
all-reduce bandwidth estimator with max-min fair link sharing.
"""

from repro.network.topology import FabricTopology, FabricSpec
from repro.network.links import Link, LinkState
from repro.network.routing import RoutingPolicy, StaticRouting, AdaptiveRouting
from repro.network.collectives import (
    AllReduceResult,
    collective_bus_factor,
    ring_allreduce_bandwidth,
    concurrent_allreduce_bandwidths,
)
from repro.network.faults import inject_bit_errors, flap_links, restore_all
from repro.network.shield import (
    DEFAULT_SHIELD_BER_THRESHOLD,
    ShieldRouting,
    apply_shield_link_faulting,
)

__all__ = [
    "FabricTopology",
    "FabricSpec",
    "Link",
    "LinkState",
    "RoutingPolicy",
    "StaticRouting",
    "AdaptiveRouting",
    "AllReduceResult",
    "collective_bus_factor",
    "ring_allreduce_bandwidth",
    "concurrent_allreduce_bandwidths",
    "inject_bit_errors",
    "flap_links",
    "restore_all",
    "DEFAULT_SHIELD_BER_THRESHOLD",
    "ShieldRouting",
    "apply_shield_link_faulting",
]
