"""Fabric links: capacity, error state, and effective bandwidth.

A link's *effective* capacity degrades with its bit error rate: errored
packets are retransmitted at the transport layer, so goodput falls roughly
with the packet success probability.  A downed link has zero capacity.
This is the knob the Fig. 12a experiment turns (the paper used ``mlxreg``
to force BER on real switch ports).
"""

import enum
from dataclasses import dataclass, field
from typing import Tuple

#: HDR InfiniBand per-rail link speed, Gb/s (DGX A100 class).
DEFAULT_LINK_CAPACITY_GBPS = 200.0

#: Packet size used to convert BER into a packet loss probability.
PACKET_BITS = 4096 * 8


class LinkState(enum.Enum):
    UP = "up"
    DOWN = "down"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Link:
    """One directed fabric link between two endpoints."""

    src: str
    dst: str
    capacity_gbps: float = DEFAULT_LINK_CAPACITY_GBPS
    state: LinkState = LinkState.UP
    bit_error_rate: float = 0.0

    def __post_init__(self):
        if self.capacity_gbps <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= self.bit_error_rate < 1:
            raise ValueError("bit_error_rate must be in [0, 1)")

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    @property
    def packet_success_probability(self) -> float:
        """Probability a packet crosses without a bit error."""
        if self.bit_error_rate == 0:
            return 1.0
        return (1.0 - self.bit_error_rate) ** PACKET_BITS

    @property
    def effective_capacity_gbps(self) -> float:
        """Capacity after retransmission losses; 0 when down.

        Goodput under stop-and-retransmit is capacity times the packet
        success probability (each corrupted packet consumes a slot).
        """
        if self.state is LinkState.DOWN:
            return 0.0
        return self.capacity_gbps * self.packet_success_probability

    @property
    def healthy(self) -> bool:
        """Healthy enough for adaptive routing to prefer it."""
        return (
            self.state is LinkState.UP
            and self.effective_capacity_gbps >= 0.5 * self.capacity_gbps
        )

    def set_bit_error_rate(self, ber: float) -> None:
        if not 0 <= ber < 1:
            raise ValueError("bit_error_rate must be in [0, 1)")
        self.bit_error_rate = ber

    def bring_down(self) -> None:
        self.state = LinkState.DOWN

    def bring_up(self) -> None:
        self.state = LinkState.UP

    def reset(self) -> None:
        self.state = LinkState.UP
        self.bit_error_rate = 0.0

    def __repr__(self) -> str:
        return (
            f"Link({self.src}->{self.dst}, {self.capacity_gbps:.0f}Gb/s, "
            f"{self.state.value}, ber={self.bit_error_rate:g})"
        )
