"""Static vs adaptive route selection over the fabric.

* **Static routing** hashes (src, dst, rail) to a spine deterministically —
  the ECMP-like behaviour without adaptivity.  A degraded or congested
  link keeps receiving the flows hashed onto it, which is how a single bad
  cable can halve a training job's bandwidth.
* **Adaptive routing** chooses, per flow, the *least-loaded healthy* spine
  (ties broken deterministically), modelling switch-level AR that steers
  packets away from congested or errored ports (Section IV-B).

Policies are stateful only through a per-computation load map supplied by
the collective estimator, keeping them reusable across experiments.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.links import Link
from repro.network.topology import FabricTopology


def _stable_hash(*parts: int) -> int:
    """Deterministic (process-independent) integer hash."""
    h = 0xCBF29CE484222325
    for part in parts:
        for byte in int(part).to_bytes(8, "little", signed=False):
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class RoutingPolicy:
    """Interface: choose the links a flow traverses."""

    name = "abstract"

    def route(
        self,
        fabric: FabricTopology,
        src_server: int,
        dst_server: int,
        rail: int,
        link_load: Dict[Tuple[str, str], int],
    ) -> List[Link]:
        raise NotImplementedError


class StaticRouting(RoutingPolicy):
    """Hash-based spine selection; oblivious to load and link health."""

    name = "static"

    def route(self, fabric, src_server, dst_server, rail, link_load):
        if fabric.pod_of(src_server) == fabric.pod_of(dst_server):
            return fabric.path(src_server, dst_server, rail)
        spines = fabric.spine_candidates(rail)
        choice = spines[_stable_hash(src_server, dst_server, rail) % len(spines)]
        return fabric.path(src_server, dst_server, rail, spine=choice)


class AdaptiveRouting(RoutingPolicy):
    """Least-loaded healthy-spine selection, per flow.

    Scores each candidate spine by (unhealthy-link penalty, current load on
    the two leaf<->spine links, effective-capacity deficit) and picks the
    minimum — a flow-level abstraction of per-packet AR that is sufficient
    to reproduce the bandwidth-retention and variance effects of Fig. 12.
    """

    name = "adaptive"

    def route(self, fabric, src_server, dst_server, rail, link_load):
        if fabric.pod_of(src_server) == fabric.pod_of(dst_server):
            return fabric.path(src_server, dst_server, rail)
        best_path: Optional[List[Link]] = None
        best_score: Optional[Tuple] = None
        for spine in fabric.spine_candidates(rail):
            path = fabric.path(src_server, dst_server, rail, spine=spine)
            up = fabric.link(
                fabric.leaf_name(fabric.pod_of(src_server), rail), spine
            )
            down = fabric.link(
                spine, fabric.leaf_name(fabric.pod_of(dst_server), rail)
            )
            unhealthy = sum(1 for l in (up, down) if not l.healthy)
            load = link_load.get(up.key, 0) + link_load.get(down.key, 0)
            capacity_deficit = 2 * up.capacity_gbps - (
                up.effective_capacity_gbps + down.effective_capacity_gbps
            )
            score = (unhealthy, load, capacity_deficit, spine)
            if best_score is None or score < best_score:
                best_score = score
                best_path = path
        assert best_path is not None
        return best_path
