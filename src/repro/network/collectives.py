"""Ring all-reduce bandwidth estimation over the fabric.

The NCCL-Tests-style experiments of Fig. 12 measure all-reduce *bus
bandwidth*.  For a ring over M members, bus bandwidth is gated by the
slowest ring edge; with rail-optimized placement each inter-server ring
edge runs over all 8 rails in parallel (NCCL opens one ring per rail), and
intra-server edges ride NVSwitch (modelled as unconstrained).

Link sharing across concurrent flows is max-min fair (progressive
filling) — the standard flow-level abstraction for per-VL fair switches.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.links import Link
from repro.network.routing import RoutingPolicy
from repro.network.topology import FabricTopology


#: NCCL-tests' busbw correction per collective: algorithm bandwidth times
#: this factor gives bus bandwidth for an n-member ring.  All-reduce moves
#: 2(n-1)/n of the data per member; all-gather and reduce-scatter (n-1)/n;
#: broadcast and barrier are gated by a single pass.
def collective_bus_factor(kind: str, n_members: int) -> float:
    """Bus-bandwidth factor for ``kind`` over ``n_members`` ranks."""
    if n_members < 1:
        raise ValueError("n_members must be >= 1")
    if n_members == 1:
        return 1.0
    n = float(n_members)
    factors = {
        "all_reduce": 2.0 * (n - 1.0) / n,
        "all_gather": (n - 1.0) / n,
        "reduce_scatter": (n - 1.0) / n,
        "broadcast": 1.0,
        "barrier": 1.0,
    }
    try:
        return factors[kind]
    except KeyError:
        raise ValueError(
            f"unknown collective kind {kind!r}; known: {sorted(factors)}"
        ) from None


@dataclass(frozen=True)
class AllReduceResult:
    """Bandwidth outcome of one collective."""

    group_id: int
    servers: Tuple[int, ...]
    bus_bandwidth_gbps: float
    bottleneck_link: Optional[str]

    @property
    def per_rail_gbps(self) -> float:
        return self.bus_bandwidth_gbps / 8.0


def _ring_edges(servers: Sequence[int]) -> List[Tuple[int, int]]:
    """Inter-server edges of the ring (server-level; NVSwitch edges free)."""
    if len(servers) < 2:
        return []
    edges = []
    for i, src in enumerate(servers):
        dst = servers[(i + 1) % len(servers)]
        edges.append((src, dst))
    return edges


def _max_min_fair_share(
    flows: List[List[Link]],
) -> List[float]:
    """Progressive-filling max-min allocation; returns Gb/s per flow.

    Flows crossing zero-capacity (downed) links get 0.
    """
    n = len(flows)
    alloc = [0.0] * n
    active = set()
    for i, path in enumerate(flows):
        if any(l.effective_capacity_gbps <= 0 for l in path):
            alloc[i] = 0.0
        elif path:
            active.add(i)
        else:
            alloc[i] = float("inf")  # intra-server: unconstrained
    remaining: Dict[Tuple[str, str], float] = {}
    users: Dict[Tuple[str, str], set] = {}
    for i in active:
        for link in flows[i]:
            remaining.setdefault(link.key, link.effective_capacity_gbps)
            users.setdefault(link.key, set()).add(i)
    while active:
        # Tightest link determines the next increment.
        rate = min(
            remaining[key] / len(us & active)
            for key, us in users.items()
            if us & active and remaining[key] > 0
        )
        saturated = set()
        for key, us in users.items():
            live = us & active
            if not live:
                continue
            remaining[key] -= rate * len(live)
            if remaining[key] <= 1e-9:
                saturated |= live
        for i in active:
            alloc[i] += rate
        active -= saturated
        if not saturated:
            break  # numerical guard
    return alloc


def ring_allreduce_bandwidth(
    fabric: FabricTopology,
    servers: Sequence[int],
    policy: RoutingPolicy,
    group_id: int = 0,
) -> AllReduceResult:
    """Bus bandwidth of a single ring all-reduce over ``servers``."""
    results = concurrent_allreduce_bandwidths(fabric, [tuple(servers)], policy)
    result = results[0]
    return AllReduceResult(
        group_id=group_id,
        servers=result.servers,
        bus_bandwidth_gbps=result.bus_bandwidth_gbps,
        bottleneck_link=result.bottleneck_link,
    )


def concurrent_allreduce_bandwidths(
    fabric: FabricTopology,
    groups: Sequence[Sequence[int]],
    policy: RoutingPolicy,
) -> List[AllReduceResult]:
    """Bus bandwidths of several concurrent ring all-reduces.

    Routes every ring edge of every group on every rail (policy-dependent),
    computes a max-min fair allocation over the shared links, and reports
    each group's bandwidth as 8x its slowest edge's per-rail share (the
    ring is gated by its weakest hop).
    """
    if not groups:
        raise ValueError("need at least one collective group")
    for group in groups:
        if len(set(group)) != len(group):
            raise ValueError(f"group has duplicate servers: {group}")

    flow_paths: List[List[Link]] = []
    flow_owner: List[Tuple[int, int]] = []  # (group index, edge index)
    link_load: Dict[Tuple[str, str], int] = {}
    for g_idx, group in enumerate(groups):
        for e_idx, (src, dst) in enumerate(_ring_edges(list(group))):
            for rail in range(fabric.spec.rails):
                path = policy.route(fabric, src, dst, rail, link_load)
                for link in path:
                    link_load[link.key] = link_load.get(link.key, 0) + 1
                flow_paths.append(path)
                flow_owner.append((g_idx, e_idx))
    alloc = _max_min_fair_share(flow_paths)

    results = []
    for g_idx, group in enumerate(groups):
        edges = _ring_edges(list(group))
        if not edges:
            results.append(
                AllReduceResult(
                    group_id=g_idx,
                    servers=tuple(group),
                    bus_bandwidth_gbps=float("inf"),
                    bottleneck_link=None,
                )
            )
            continue
        # Per edge: sum the 8 rails' allocations; ring speed = slowest edge.
        edge_bw: Dict[int, float] = {}
        edge_bottleneck: Dict[int, Optional[str]] = {}
        for flow_idx, (og, oe) in enumerate(flow_owner):
            if og != g_idx:
                continue
            edge_bw[oe] = edge_bw.get(oe, 0.0) + alloc[flow_idx]
            path = flow_paths[flow_idx]
            if path:
                slowest = min(path, key=lambda l: l.effective_capacity_gbps)
                edge_bottleneck[oe] = f"{slowest.src}->{slowest.dst}"
        worst_edge = min(edge_bw, key=lambda e: edge_bw[e])
        results.append(
            AllReduceResult(
                group_id=g_idx,
                servers=tuple(group),
                bus_bandwidth_gbps=edge_bw[worst_edge],
                bottleneck_link=edge_bottleneck.get(worst_edge),
            )
        )
    return results
