"""Fabric fault injection: the ``mlxreg``-style BER experiment knobs."""

from typing import List, Optional, Sequence

import numpy as np

from repro.network.links import Link
from repro.network.topology import FabricTopology


def inject_bit_errors(
    fabric: FabricTopology,
    fraction_of_links: float,
    bit_error_rate: float,
    rng: np.random.Generator,
    tier: str = "leaf_spine",
) -> List[Link]:
    """Degrade a random fraction of links with the given BER.

    ``tier`` selects which links are eligible: ``"leaf_spine"`` (the
    contended tier the paper's experiment targeted) or ``"all"``.
    Returns the degraded links.
    """
    if not 0 <= fraction_of_links <= 1:
        raise ValueError("fraction_of_links must be in [0, 1]")
    if tier == "leaf_spine":
        candidates = fabric.leaf_spine_links()
    elif tier == "all":
        candidates = fabric.all_links()
    else:
        raise ValueError(f"unknown tier {tier!r}")
    n = int(round(fraction_of_links * len(candidates)))
    if n == 0:
        return []
    chosen = rng.choice(len(candidates), size=n, replace=False)
    degraded = []
    for idx in chosen:
        link = candidates[int(idx)]
        link.set_bit_error_rate(bit_error_rate)
        degraded.append(link)
    return degraded


def flap_links(
    fabric: FabricTopology,
    fraction_of_links: float,
    rng: np.random.Generator,
    tier: str = "leaf_spine",
) -> List[Link]:
    """Take a random fraction of links fully down (flap's down phase)."""
    degraded = inject_bit_errors(fabric, fraction_of_links, 0.0, rng, tier=tier)
    for link in degraded:
        link.bring_down()
    return degraded


def restore_all(fabric: FabricTopology) -> None:
    """Clear all injected faults."""
    fabric.reset_faults()
