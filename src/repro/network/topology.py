"""The rail-optimized backend fabric (Fig. 2).

Layout, following Section II-B: every server exposes 8 HCAs ("rails"), one
per local GPU rank.  Within a pod (10 racks x 2 servers = 20 servers), all
rail-``r`` HCAs connect to the pod's rail-``r`` leaf switch, so same-rank
GPUs talk through a single switch.  Each rail's leaf switches connect
upward to a group of spine switches dedicated to that rail; pod-to-pod
traffic crosses leaf -> spine -> leaf.

Node naming: ``srv-<id>`` servers, ``leaf-p<pod>-r<rail>`` leaves,
``spine-r<rail>-<k>`` spines.  Links are directed (both directions created
with shared characteristics but independent error state, as in real
fabrics where one direction of a cable can degrade).
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.network.links import DEFAULT_LINK_CAPACITY_GBPS, Link

RAILS = 8
SERVERS_PER_POD = 20


@dataclass(frozen=True)
class FabricSpec:
    """Shape of the backend fabric."""

    n_servers: int
    rails: int = RAILS
    servers_per_pod: int = SERVERS_PER_POD
    spines_per_rail: int = 4
    link_capacity_gbps: float = DEFAULT_LINK_CAPACITY_GBPS

    def __post_init__(self):
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.rails <= 0 or self.servers_per_pod <= 0 or self.spines_per_rail <= 0:
            raise ValueError("fabric dimensions must be positive")

    @property
    def n_pods(self) -> int:
        return (self.n_servers + self.servers_per_pod - 1) // self.servers_per_pod


class FabricTopology:
    """The live fabric: named links with mutable health state."""

    def __init__(self, spec: FabricSpec):
        self.spec = spec
        self.links: Dict[Tuple[str, str], Link] = {}
        for server in range(spec.n_servers):
            pod = server // spec.servers_per_pod
            for rail in range(spec.rails):
                leaf = self.leaf_name(pod, rail)
                self._add_bidirectional(self.server_port(server, rail), leaf)
        for pod in range(self.spec.n_pods):
            for rail in range(spec.rails):
                leaf = self.leaf_name(pod, rail)
                for k in range(spec.spines_per_rail):
                    self._add_bidirectional(leaf, self.spine_name(rail, k))

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    @staticmethod
    def server_port(server: int, rail: int) -> str:
        return f"srv-{server:04d}-r{rail}"

    @staticmethod
    def leaf_name(pod: int, rail: int) -> str:
        return f"leaf-p{pod:02d}-r{rail}"

    @staticmethod
    def spine_name(rail: int, k: int) -> str:
        return f"spine-r{rail}-{k}"

    def pod_of(self, server: int) -> int:
        return server // self.spec.servers_per_pod

    # ------------------------------------------------------------------
    # construction & access
    # ------------------------------------------------------------------
    def _add_bidirectional(self, a: str, b: str) -> None:
        for src, dst in ((a, b), (b, a)):
            self.links[(src, dst)] = Link(
                src=src, dst=dst, capacity_gbps=self.spec.link_capacity_gbps
            )

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst} in fabric") from None

    def uplinks_of_server(self, server: int) -> List[Link]:
        """The server's rail uplinks (server -> leaf), one per rail."""
        pod = self.pod_of(server)
        return [
            self.link(self.server_port(server, rail), self.leaf_name(pod, rail))
            for rail in range(self.spec.rails)
        ]

    def spine_candidates(self, rail: int) -> List[str]:
        return [
            self.spine_name(rail, k) for k in range(self.spec.spines_per_rail)
        ]

    def path(self, src_server: int, dst_server: int, rail: int, spine: str = None) -> List[Link]:
        """Links crossed from ``src_server`` to ``dst_server`` on one rail.

        Same-pod traffic stays under the leaf (two hops); cross-pod traffic
        needs a ``spine`` choice (the routing policy's job).
        """
        if src_server == dst_server:
            return []
        src_pod, dst_pod = self.pod_of(src_server), self.pod_of(dst_server)
        src_port = self.server_port(src_server, rail)
        dst_port = self.server_port(dst_server, rail)
        src_leaf = self.leaf_name(src_pod, rail)
        dst_leaf = self.leaf_name(dst_pod, rail)
        if src_pod == dst_pod:
            return [self.link(src_port, src_leaf), self.link(src_leaf, dst_port)]
        if spine is None:
            raise ValueError(
                f"cross-pod path {src_server}->{dst_server} requires a spine choice"
            )
        return [
            self.link(src_port, src_leaf),
            self.link(src_leaf, spine),
            self.link(spine, dst_leaf),
            self.link(dst_leaf, dst_port),
        ]

    def all_links(self) -> List[Link]:
        return list(self.links.values())

    def leaf_spine_links(self) -> List[Link]:
        """The contended tier: leaf <-> spine links in both directions."""
        return [
            link
            for link in self.links.values()
            if link.src.startswith("leaf-") and link.dst.startswith("spine-")
            or link.src.startswith("spine-") and link.dst.startswith("leaf-")
        ]

    def reset_faults(self) -> None:
        for link in self.links.values():
            link.reset()

    def __repr__(self) -> str:
        return (
            f"FabricTopology(servers={self.spec.n_servers}, "
            f"pods={self.spec.n_pods}, rails={self.spec.rails}, "
            f"links={len(self.links)})"
        )
