"""repro — reproduction of "Revisiting Reliability in Large-Scale Machine
Learning Research Clusters" (HPCA 2025).

The package has three layers:

1. **Substrates** — a discrete-event simulator (:mod:`repro.sim`), a
   component-level cluster hardware model with health checks and
   remediation (:mod:`repro.cluster`), a rail-optimized fabric with
   adaptive routing (:mod:`repro.network`), a Slurm-semantics gang
   scheduler (:mod:`repro.scheduler`), and a calibrated synthetic workload
   (:mod:`repro.workload`).
2. **Core** (:mod:`repro.core`) — the paper's contribution: the failure
   taxonomy, attribution, ETTR/MTTF/goodput models, lemon-node detection,
   and checkpoint design-space tools.
3. **Analysis** (:mod:`repro.analysis`) — one module per table/figure,
   consuming traces produced by :mod:`repro.campaign`.

Execution is configured through one object — :class:`repro.RunOptions`
— accepted uniformly by :func:`run_campaign`, :func:`run_campaigns`,
the analysis entry points, and ``repro.live``; the resilient execution
layer (retry/backoff, chaos injection, crash-safe checkpointed sweeps)
lives in :mod:`repro.resilience` and plugs in via
``RunOptions(resilience=..., checkpoint_dir=...)``.  *Where* sweep
attempts execute is pluggable too: :mod:`repro.backends` defines the
:class:`ExecutionBackend` protocol with ``inline``, ``local-pool``,
and ``work-queue`` implementations, selected via
``RunOptions(backend=...)`` — traces are bit-identical on all of them.

Quickstart::

    from repro import CampaignConfig, ClusterSpec, RunOptions, run_campaign
    from repro.analysis import job_status_breakdown

    spec = ClusterSpec.rsc1_like(n_nodes=64, campaign_days=30)
    trace = run_campaign(CampaignConfig(cluster_spec=spec, duration_days=30))
    print(job_status_breakdown(trace).render())
"""

from repro.campaign import Campaign, CampaignConfig, run_campaign
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.jobtypes import (
    IntendedOutcome,
    JobAttemptRecord,
    JobState,
    MAX_JOB_LIFETIME,
    QosTier,
)
from repro.options import DEFAULT_OPTIONS, RUN_OPTIONS_VERSION, RunOptions
from repro.workload.profiles import WorkloadProfile, rsc1_profile, rsc2_profile
from repro.workload.trace import NodeTraceRecord, Trace

__version__ = "1.0.0"


def __getattr__(name):
    # Heavier stable-surface members (pool, cache, live, obs, resilience)
    # resolve lazily so `import repro` stays import-light; each is a
    # first-class re-export, present in __all__ and dir(repro).
    if name in _LAZY_EXPORTS:
        module, attr = _LAZY_EXPORTS[name]
        import importlib

        value = getattr(importlib.import_module(module), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


_LAZY_EXPORTS = {
    "CampaignPool": ("repro.runtime.pool", "CampaignPool"),
    "run_campaigns": ("repro.runtime.pool", "run_campaigns"),
    "seed_sweep_configs": ("repro.runtime.pool", "seed_sweep_configs"),
    "TraceCache": ("repro.runtime.cache", "TraceCache"),
    "LiveAnalytics": ("repro.live.analytics", "LiveAnalytics"),
    "Telemetry": ("repro.obs.telemetry", "Telemetry"),
    "ResilienceConfig": ("repro.resilience.config", "ResilienceConfig"),
    "ChaosPolicy": ("repro.resilience.chaos", "ChaosPolicy"),
    "CampaignCheckpoint": (
        "repro.resilience.checkpoint",
        "CampaignCheckpoint",
    ),
    "ArtifactStore": ("repro.backends.artifacts", "ArtifactStore"),
    "ExecutionBackend": ("repro.backends.base", "ExecutionBackend"),
    "InlineBackend": ("repro.backends.inline", "InlineBackend"),
    "LocalPoolBackend": ("repro.backends.local_pool", "LocalPoolBackend"),
    "WorkQueueBackend": ("repro.backends.workqueue", "WorkQueueBackend"),
    "create_backend": ("repro.backends", "create_backend"),
}


def __dir__():
    return sorted(set(list(globals()) + list(_LAZY_EXPORTS)))


__all__ = [
    "ArtifactStore",
    "Campaign",
    "CampaignCheckpoint",
    "CampaignConfig",
    "CampaignPool",
    "ChaosPolicy",
    "Cluster",
    "ClusterSpec",
    "DEFAULT_OPTIONS",
    "ExecutionBackend",
    "InlineBackend",
    "IntendedOutcome",
    "JobAttemptRecord",
    "JobState",
    "LiveAnalytics",
    "LocalPoolBackend",
    "MAX_JOB_LIFETIME",
    "NodeTraceRecord",
    "QosTier",
    "RUN_OPTIONS_VERSION",
    "ResilienceConfig",
    "RunOptions",
    "Telemetry",
    "Trace",
    "TraceCache",
    "WorkQueueBackend",
    "WorkloadProfile",
    "create_backend",
    "run_campaign",
    "run_campaigns",
    "rsc1_profile",
    "rsc2_profile",
    "seed_sweep_configs",
    "__version__",
]
