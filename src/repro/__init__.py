"""repro — reproduction of "Revisiting Reliability in Large-Scale Machine
Learning Research Clusters" (HPCA 2025).

The package has three layers:

1. **Substrates** — a discrete-event simulator (:mod:`repro.sim`), a
   component-level cluster hardware model with health checks and
   remediation (:mod:`repro.cluster`), a rail-optimized fabric with
   adaptive routing (:mod:`repro.network`), a Slurm-semantics gang
   scheduler (:mod:`repro.scheduler`), and a calibrated synthetic workload
   (:mod:`repro.workload`).
2. **Core** (:mod:`repro.core`) — the paper's contribution: the failure
   taxonomy, attribution, ETTR/MTTF/goodput models, lemon-node detection,
   and checkpoint design-space tools.
3. **Analysis** (:mod:`repro.analysis`) — one module per table/figure,
   consuming traces produced by :mod:`repro.campaign`.

Quickstart::

    from repro import CampaignConfig, ClusterSpec, run_campaign
    from repro.analysis import job_status_breakdown

    spec = ClusterSpec.rsc1_like(n_nodes=64, campaign_days=30)
    trace = run_campaign(CampaignConfig(cluster_spec=spec, duration_days=30))
    print(job_status_breakdown(trace).render())
"""

from repro.campaign import Campaign, CampaignConfig, run_campaign
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.jobtypes import (
    IntendedOutcome,
    JobAttemptRecord,
    JobState,
    MAX_JOB_LIFETIME,
    QosTier,
)
from repro.workload.profiles import WorkloadProfile, rsc1_profile, rsc2_profile
from repro.workload.trace import NodeTraceRecord, Trace

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "CampaignConfig",
    "run_campaign",
    "Cluster",
    "ClusterSpec",
    "IntendedOutcome",
    "JobAttemptRecord",
    "JobState",
    "MAX_JOB_LIFETIME",
    "QosTier",
    "WorkloadProfile",
    "rsc1_profile",
    "rsc2_profile",
    "NodeTraceRecord",
    "Trace",
    "__version__",
]
