"""``ResilienceConfig``: one object describing the recovery posture.

Bundles the retry budget, the optional chaos-injection policy, and the
circuit-breaker / verification knobs that the execution layer consumes.
Handed to :class:`repro.runtime.CampaignPool` directly or through
:class:`repro.RunOptions(resilience=...) <repro.options.RunOptions>`.

Like every :class:`~repro.options.RunOptions` field, nothing here may
change simulated content: retries re-run the same seeded campaign,
chaos faults are absorbed by recovery, and the acceptance tests assert
bit-identical traces against a fault-free run.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.chaos import ChaosPolicy
from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class ResilienceConfig:
    """Recovery posture for the execution layer.

    Attributes:
        retry: Per-config retry budget + backoff + per-attempt timeout.
        chaos: Optional fault-injection policy (None = no injection;
            production posture).
        circuit_threshold: Consecutive pool-level failures before the
            pooled path is abandoned for inline execution.
        verify_cache_integrity: Recompute and check the stored trace
            digest on every cache read (quarantining mismatches).
        checkpoint_every: Write the sweep manifest after every N
            completed configs (1 = after each; higher trades durability
            for fewer manifest rewrites).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    chaos: Optional[ChaosPolicy] = None
    circuit_threshold: int = 3
    verify_cache_integrity: bool = True
    checkpoint_every: int = 1

    def __post_init__(self):
        if self.circuit_threshold < 1:
            raise ValueError("circuit_threshold must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


#: The implicit posture when no config is supplied: retries on, no
#: chaos, integrity verification on.
DEFAULT_RESILIENCE = ResilienceConfig()

__all__ = ["DEFAULT_RESILIENCE", "ResilienceConfig"]
