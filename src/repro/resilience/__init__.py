"""repro.resilience — fault injection and recovery for the harness itself.

The simulator models a cluster where failure is the steady state; this
package applies the same stance to the machinery *running* the
simulator.  Four pieces:

* :mod:`repro.resilience.chaos` — :class:`ChaosPolicy`, deterministic
  seed-driven injection of harness faults (worker death mid-seed, cache
  entry corruption, sink IO errors, malformed/late live-stream rows),
  mirroring how :mod:`repro.network.faults` injects fabric faults.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` /
  :class:`Backoff` (exponential, seeded jitter, deterministic) and the
  :class:`CircuitBreaker` that degrades pooled execution to inline
  after repeated pool-level failures.
* :mod:`repro.resilience.checkpoint` — :class:`CampaignCheckpoint`,
  the completed-seed manifest + atomic partial-result store behind
  crash-safe, bit-identically resumable ``run_campaigns`` sweeps.
* :mod:`repro.resilience.config` — :class:`ResilienceConfig`, the
  bundle the execution layer consumes (via
  ``RunOptions(resilience=...)`` or ``CampaignPool(resilience=...)``).

Every recovery action is accounted in ``obs`` metrics
(``resilience_retries_total``, ``resilience_cache_quarantined_total``,
``resilience_worker_respawns_total``, ...) and surfaces in
``repro obs summary``.  See ``docs/RESILIENCE.md``.

Quickstart::

    from repro import CampaignConfig, ClusterSpec, RunOptions, run_campaigns
    from repro.resilience import ChaosPolicy, ResilienceConfig
    from repro.runtime import seed_sweep_configs

    spec = ClusterSpec.rsc1_like(n_nodes=32, campaign_days=10)
    base = CampaignConfig(cluster_spec=spec, duration_days=10)
    configs = seed_sweep_configs(base, range(8))

    # Chaotic sweep: workers die, cache entries rot — results are still
    # bit-identical to a fault-free run, and the sweep resumes from
    # sweep-ckpt/ if this process itself is killed.
    traces = run_campaigns(
        configs,
        options=RunOptions(
            resilience=ResilienceConfig(
                chaos=ChaosPolicy(seed=7, worker_kill_rate=0.5,
                                  cache_corruption_rate=0.5),
            ),
            checkpoint_dir="sweep-ckpt/",
        ),
    )
"""

from repro.resilience.chaos import (
    CHAOS_EXIT_CODE,
    ChaosError,
    ChaosPolicy,
    FaultySink,
    WorkerKilled,
)
from repro.resilience.checkpoint import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    CampaignCheckpoint,
    sweep_run_id,
)
from repro.resilience.config import DEFAULT_RESILIENCE, ResilienceConfig
from repro.resilience.retry import Backoff, CircuitBreaker, RetryPolicy

__all__ = [
    "Backoff",
    "CHAOS_EXIT_CODE",
    "CampaignCheckpoint",
    "ChaosError",
    "ChaosPolicy",
    "CircuitBreaker",
    "DEFAULT_RESILIENCE",
    "FaultySink",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ResilienceConfig",
    "RetryPolicy",
    "WorkerKilled",
    "sweep_run_id",
]
