"""Deterministic fault injection for the execution layer itself.

The simulator injects *modeled* faults (GPU failures, link flaps) into
the simulated cluster; :class:`ChaosPolicy` injects *real* faults into
the harness that runs the simulator — worker processes killed mid-seed,
trace-cache entries corrupted or truncated on disk, IO errors in
telemetry sinks, malformed or late rows pushed at the live estimators.
It mirrors how :mod:`repro.network.faults` degrades fabric links: the
injection is an explicit, seeded policy object, so every recovery path
in :mod:`repro.runtime` and :mod:`repro.live` is testable and every
chaotic run is exactly reproducible.

All decisions are *stateless* functions of ``(seed, decision key)`` —
a keyed blake2b hash mapped to a unit float — so the same policy object
makes the same calls from any process, in any order, on any attempt
count.  That statelessness is what lets a chaos run assert bit-identical
results against a fault-free run: the faults land deterministically, the
recovery machinery absorbs them, and the surviving traces digest equal.
"""

import hashlib
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign import CampaignConfig
    from repro.runtime.cache import TraceCache


class ChaosError(RuntimeError):
    """Base class for faults raised (not killed) by chaos injection."""


class WorkerKilled(ChaosError):
    """An in-process stand-in for a worker that died mid-seed."""


#: Exit status used when chaos kills a real worker process (mirrors a
#: SIGKILLed process's 128+9 shell convention).
CHAOS_EXIT_CODE = 137


def _unit_draw(seed: int, *key: object) -> float:
    """Deterministic uniform [0, 1) draw keyed on ``(seed, *key)``."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode("utf-8"))
    for part in key:
        h.update(b"\x1f")
        h.update(str(part).encode("utf-8"))
    (value,) = struct.unpack(">Q", h.digest())
    return value / 2.0**64


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded injection plan over the harness's own fault surface.

    Rates are per-decision probabilities; bounds keep chaos survivable
    (``max_kills_per_config`` guarantees some attempt of every config
    succeeds, so a chaotic sweep still terminates).

    Attributes:
        seed: Root of every injection decision.
        worker_kill_rate: Probability a simulation attempt dies mid-seed
            (``os._exit`` in a real worker, :class:`WorkerKilled` inline).
        max_kills_per_config: Hard bound on kill injections per config —
            attempts past this many are never killed.
        cache_corruption_rate: Probability a cache entry is corrupted on
            disk before it is read back (torn write / bit rot model).
        sink_error_rate: Probability a telemetry sink write raises
            :class:`OSError` (full disk / revoked fd model).
        malformed_item_rate: Probability a junk stream item is injected
            ahead of a real one during live replay.
        late_item_rate: Probability an injected junk item is backdated
            behind the watermark (exercises lateness handling too).
    """

    seed: int = 0
    worker_kill_rate: float = 0.0
    max_kills_per_config: int = 2
    cache_corruption_rate: float = 0.0
    sink_error_rate: float = 0.0
    malformed_item_rate: float = 0.0
    late_item_rate: float = 0.0

    def __post_init__(self):
        for name in (
            "worker_kill_rate",
            "cache_corruption_rate",
            "sink_error_rate",
            "malformed_item_rate",
            "late_item_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_kills_per_config < 0:
            raise ValueError("max_kills_per_config must be >= 0")

    # ------------------------------------------------------------------
    # worker faults
    # ------------------------------------------------------------------
    def should_kill_worker(self, digest: str, attempt: int) -> bool:
        """Whether the ``attempt``-th try at ``digest`` dies mid-seed."""
        if attempt >= self.max_kills_per_config:
            return False
        return (
            _unit_draw(self.seed, "kill", digest, attempt)
            < self.worker_kill_rate
        )

    def kill_worker(self, digest: str, attempt: int, subprocess: bool) -> None:
        """Apply a worker-death decision (no-op if the draw says live).

        In a real worker process the death is an ``os._exit`` — no
        cleanup, no exception propagation, exactly what a OOM-kill or
        segfault looks like to the parent.  Inline it raises
        :class:`WorkerKilled` so the retry path is exercised without
        taking the caller's process down.
        """
        if not self.should_kill_worker(digest, attempt):
            return
        if subprocess:
            os._exit(CHAOS_EXIT_CODE)
        raise WorkerKilled(
            f"chaos killed attempt {attempt} of config {digest[:12]}"
        )

    # ------------------------------------------------------------------
    # cache faults
    # ------------------------------------------------------------------
    def corruption_mode(self, digest: str) -> Optional[str]:
        """Corruption decision for one cache entry: mode name or None."""
        if (
            _unit_draw(self.seed, "corrupt", digest)
            >= self.cache_corruption_rate
        ):
            return None
        modes = ("truncate", "garbage", "flip")
        pick = _unit_draw(self.seed, "corrupt-mode", digest)
        return modes[int(pick * len(modes)) % len(modes)]

    def corrupt_entry(self, path: Path, digest: str) -> Optional[str]:
        """Corrupt the on-disk entry at ``path`` per the digest's draw.

        Returns the applied mode, or None when the draw (or a missing
        file) spares the entry.  ``truncate`` models a torn write,
        ``garbage`` a foreign file under the right name, ``flip`` silent
        bit rot in the payload.
        """
        mode = self.corruption_mode(digest)
        if mode is None or not path.exists():
            return None
        if mode == "truncate":
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 3)])
        elif mode == "garbage":
            path.write_bytes(b"chaos: this is not an npz archive")
        else:  # flip: xor a byte deep in the payload
            data = bytearray(path.read_bytes())
            if data:
                pos = int(
                    _unit_draw(self.seed, "flip-pos", digest) * len(data)
                ) % len(data)
                data[pos] ^= 0xFF
                path.write_bytes(bytes(data))
        return mode

    def corrupt_before_read(
        self, cache: "TraceCache", config: "CampaignConfig"
    ) -> Optional[str]:
        """Corrupt ``config``'s cache entry ahead of a read, per draw."""
        from repro.runtime.hashing import config_digest

        if self.cache_corruption_rate <= 0.0:
            return None
        digest = config_digest(config)
        return self.corrupt_entry(cache.path_for(config), digest)

    # ------------------------------------------------------------------
    # telemetry sink faults
    # ------------------------------------------------------------------
    def sink_write_fails(self, write_index: int) -> bool:
        """Whether the ``write_index``-th sink write raises."""
        return (
            _unit_draw(self.seed, "sink", write_index) < self.sink_error_rate
        )

    def wrap_sink(self, sink: object) -> "FaultySink":
        """Wrap a tracer sink so writes fail per this policy's draws."""
        return FaultySink(sink, self)

    # ------------------------------------------------------------------
    # live-stream faults
    # ------------------------------------------------------------------
    def mangle_stream(self, items, watermark_lag: float = 3600.0):
        """Yield a stream with junk items injected ahead of real ones.

        Real items pass through untouched (so a tolerant consumer's
        estimator state is unaffected); injected junk is either a
        malformed item (``None`` payload on a real channel) or — per
        ``late_item_rate`` — the same junk backdated ``watermark_lag``
        seconds behind the current stream time, exercising the
        late-arrival path as well as the malformed one.
        """
        from repro.live.bus import CHANNELS

        for index, (time, channel, payload) in enumerate(items):
            if _unit_draw(self.seed, "mangle", index) < self.malformed_item_rate:
                junk_channel = CHANNELS[
                    int(_unit_draw(self.seed, "mangle-ch", index) * len(CHANNELS))
                    % len(CHANNELS)
                ]
                junk_time = time
                if _unit_draw(self.seed, "mangle-late", index) < self.late_item_rate:
                    junk_time = max(0.0, time - watermark_lag)
                yield junk_time, junk_channel, None
            yield time, channel, payload


class FaultySink:
    """Sink decorator that injects :class:`OSError` per a chaos policy.

    The wrapped sink still receives every write the policy spares, so a
    stream produced under sink chaos is a subset of the fault-free one.
    """

    def __init__(self, sink: object, chaos: ChaosPolicy):
        self.sink = sink
        self.chaos = chaos
        self.writes_attempted = 0
        self.errors_injected = 0

    def write(self, event) -> None:
        index = self.writes_attempted
        self.writes_attempted += 1
        if self.chaos.sink_write_fails(index):
            self.errors_injected += 1
            raise OSError(f"chaos: injected sink IO error on write {index}")
        self.sink.write(event)

    def close(self) -> None:
        self.sink.close()

    def __getattr__(self, name: str):
        return getattr(self.sink, name)


__all__ = [
    "CHAOS_EXIT_CODE",
    "ChaosError",
    "ChaosPolicy",
    "FaultySink",
    "WorkerKilled",
]
