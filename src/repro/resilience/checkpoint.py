"""Crash-safe sweeps: the completed-seed manifest + partial results.

``run_campaigns`` over N configs is minutes of work; a SIGKILL at 90%
used to throw all of it away.  A :class:`CampaignCheckpoint` makes the
sweep resumable: completed traces are stored in a content-addressed
entry store (the same digest-verified npz format as the trace cache)
and a small JSON manifest records which config digests are done.  Both
writes are atomic (write-temp-then-``os.replace``), so a kill at any
byte boundary leaves either the previous consistent state or the next —
never a torn one.

Resuming is just running the same sweep again with the same checkpoint
directory: completed configs load from the store (digest-verified, so a
corrupt partial result re-simulates instead of poisoning the resumed
sweep), the rest simulate, and the final result list is bit-identical
to an uninterrupted run — the property
``tests/resilience/test_checkpoint_resume.py`` asserts at 25/50/90%
completion.

The manifest is keyed by a ``run_id`` — a hash of the ordered config
digests — so a checkpoint directory can never silently serve a
*different* sweep's partial results.
"""

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Union

from repro.obs.spans import maybe_span
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.backends.artifacts import ArtifactStore


def _config_digest(config) -> str:
    # Imported lazily: repro.runtime.pool imports this module, so a
    # module-level import of anything under repro.runtime would make
    # ``import repro.resilience`` order-dependent (circular).
    from repro.runtime.hashing import config_digest

    return config_digest(config)


def _partial_result_store(directory: Path) -> "ArtifactStore":
    # Same lazy-import rationale as :func:`_config_digest`.
    from repro.backends.artifacts import ArtifactStore

    return ArtifactStore(directory / "entries")


#: Bump when the manifest document shape changes; resume rejects
#: mismatches rather than guessing.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"


def sweep_run_id(digests: Sequence[str]) -> str:
    """Identity of one sweep: hash of its ordered config digests."""
    h = hashlib.sha256()
    for digest in digests:
        h.update(digest.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


class CampaignCheckpoint:
    """Manifest + partial-result store for one resumable sweep.

    Usage (normally via ``run_campaigns(..., options=RunOptions(
    checkpoint_dir=...))`` or ``CampaignPool.run(configs,
    checkpoint=...)``)::

        ckpt = CampaignCheckpoint("sweep-ckpt/")
        ckpt.begin(configs)
        for config in configs:
            trace = ckpt.load(config)          # None unless completed
            if trace is None:
                trace = run_campaign(config)
                ckpt.record(config, trace)     # atomic store + manifest
    """

    def __init__(self, directory: Union[str, os.PathLike]):
        self.directory = Path(directory)
        #: Content-addressed, digest-verified, multi-writer-safe store
        #: for the partial results — the shared
        #: :class:`~repro.backends.artifacts.ArtifactStore` (atomic
        #: writes, integrity stamps, quarantine, per-key write locks),
        #: so any worker on any backend can contribute completed shards.
        self.store = _partial_result_store(self.directory)
        self.run_id: Optional[str] = None
        self.digests: List[str] = []
        self._completed: set = set()
        self._dirty = False
        self.loaded = 0
        self.recorded = 0
        #: Optional repro.obs.Telemetry whose span tracer profiles
        #: checkpoint writes.  CampaignPool assigns its own bundle here
        #: so ``checkpoint.write`` spans land in the sweep's trace.
        self.telemetry = None

    # ------------------------------------------------------------------
    # manifest IO
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _read_manifest(self) -> Optional[Dict]:
        try:
            payload = json.loads(self.manifest_path.read_text("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as err:
            raise ValueError(
                f"unreadable sweep manifest {self.manifest_path}: {err}"
            ) from err
        if payload.get("schema") != MANIFEST_VERSION:
            raise ValueError(
                f"sweep manifest schema {payload.get('schema')!r} does not "
                f"match MANIFEST_VERSION={MANIFEST_VERSION}"
            )
        return payload

    def _write_manifest(self) -> None:
        payload = {
            "schema": MANIFEST_VERSION,
            "run_id": self.run_id,
            "total": len(self.digests),
            "digests": self.digests,
            "completed": sorted(self._completed),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-manifest-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
                fh.write("\n")
            os.replace(tmp_name, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # sweep lifecycle
    # ------------------------------------------------------------------
    def begin(self, configs: Sequence) -> "CampaignCheckpoint":
        """Bind this checkpoint to a sweep; adopt any prior progress.

        Raises ``ValueError`` if the directory already checkpoints a
        *different* sweep (mismatched run_id) — partial results must
        never leak across sweeps.
        """
        self.digests = [_config_digest(c) for c in configs]
        self.run_id = sweep_run_id(self.digests)
        existing = self._read_manifest()
        if existing is not None:
            if existing.get("run_id") != self.run_id:
                raise ValueError(
                    f"checkpoint directory {self.directory} belongs to a "
                    f"different sweep (run_id {existing.get('run_id')!r} != "
                    f"{self.run_id!r}); use a fresh directory"
                )
            ours = set(self.digests)
            self._completed = {
                d for d in existing.get("completed", []) if d in ours
            }
        else:
            self._completed = set()
            self._write_manifest()
        return self

    @property
    def completed_digests(self) -> frozenset:
        return frozenset(self._completed)

    def is_complete(self, config) -> bool:
        return _config_digest(config) in self._completed

    def load(self, config) -> Optional[Trace]:
        """Return the checkpointed trace for ``config``, or None.

        A manifest entry whose stored trace is missing or fails the
        integrity check simply returns None (the sweep re-simulates it);
        the manifest is optimistic, the store is the authority.
        """
        if not self.is_complete(config):
            return None
        trace = self.store.get(config)
        if trace is None:
            # Torn or corrupt partial result: forget the completion so
            # a later record() rewrites both store and manifest.
            self._completed.discard(_config_digest(config))
            return None
        self.loaded += 1
        runtime = dict(trace.metadata.get("runtime", {}))
        runtime["source"] = "checkpoint"
        trace.metadata["runtime"] = runtime
        return trace

    def record(self, config, trace: Trace, flush: bool = True) -> None:
        """Persist one completed config: store entry, then manifest.

        ``flush=False`` defers the manifest rewrite (the entry itself is
        always written immediately); callers batching with
        ``checkpoint_every > 1`` must call :meth:`flush` at the end.  A
        crash between a deferred record and the flush only costs the
        manifest line, not the entry.
        """
        with maybe_span(self.telemetry, "checkpoint.write", flush=flush):
            self.store.put(config, trace)
            self._completed.add(_config_digest(config))
            self._dirty = True
            if flush:
                self.flush()
        self.recorded += 1

    def flush(self) -> None:
        """Write the manifest if any record() was deferred."""
        if self._dirty:
            self._write_manifest()
            self._dirty = False

    def progress(self) -> Dict[str, int]:
        return {
            "total": len(self.digests),
            "completed": len(self._completed),
            "loaded": self.loaded,
            "recorded": self.recorded,
        }

    def __repr__(self) -> str:
        return (
            f"CampaignCheckpoint({self.directory}, "
            f"{len(self._completed)}/{len(self.digests)} complete)"
        )


__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "CampaignCheckpoint",
    "sweep_run_id",
]
