"""Retry, backoff, and circuit-breaking for the execution layer.

The paper's operational stance — failure is the steady state, so wrap
every unit of work in detection and recovery — applied to the harness
itself.  Three small, deterministic pieces:

* :class:`Backoff` — exponential delay with *seeded* jitter.  The jitter
  draw is a pure function of ``(seed, key, attempt)``, so a retried
  sweep sleeps the same schedule every run: chaos experiments stay
  reproducible down to their wall-clock shape.
* :class:`RetryPolicy` — attempts budget + backoff + optional per-seed
  timeout, the unit handed to :class:`repro.runtime.CampaignPool`.
* :class:`CircuitBreaker` — counts consecutive pool-level failures
  (dead workers, broken executors) and opens after a threshold, at
  which point the pool degrades to inline execution instead of fighting
  a broken multiprocessing environment.
"""

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.chaos import _unit_draw


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff with deterministic, seeded jitter.

    ``delay(key, attempt)`` returns ``base_s * factor**attempt`` capped
    at ``max_s``, scaled by a jitter factor in ``[1 - jitter, 1 + jitter]``
    drawn from ``(seed, key, attempt)`` — same inputs, same delay.
    """

    base_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.base_s < 0:
            raise ValueError("base_s must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, key: str, attempt: int) -> float:
        raw = min(self.max_s, self.base_s * self.factor ** max(0, attempt))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        unit = _unit_draw(self.seed, "backoff", key, attempt)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def sleep(self, key: str, attempt: int) -> float:
        """Sleep the computed delay; returns the seconds slept."""
        delay = self.delay(key, attempt)
        if delay > 0:
            time.sleep(delay)
        return delay


@dataclass(frozen=True)
class RetryPolicy:
    """Per-unit-of-work retry budget for the campaign pool.

    Attributes:
        max_attempts: Total tries per config (1 = no retry).
        backoff: Delay schedule between attempts.
        timeout_s: Per-attempt wall-clock budget for pooled execution;
            an attempt that exceeds it is treated as a dead worker
            (killed, respawned, retried).  ``None`` disables timeouts.
    """

    max_attempts: int = 3
    backoff: Backoff = field(default_factory=Backoff)
    timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive or None")

    def retryable(self, attempt: int) -> bool:
        """Whether attempt index ``attempt`` (0-based) may be retried."""
        return attempt + 1 < self.max_attempts


class CircuitBreaker:
    """Consecutive-failure trip switch for the pooled execution path.

    ``record_failure`` on every pool-level fault (broken executor, dead
    worker wave, timeout sweep); ``record_success`` on any completed
    pooled batch.  Once ``failures >= threshold`` the breaker is open
    and stays open — within one pool, degrading to inline execution is
    a one-way door (a broken multiprocessing environment does not heal
    mid-sweep), but a fresh pool starts with a closed breaker.
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.total_failures = 0
        self._open = False

    @property
    def open(self) -> bool:
        return self._open

    def record_failure(self) -> bool:
        """Count one pool-level failure; returns True if now open."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.threshold:
            self._open = True
        return self._open

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return (
            f"CircuitBreaker({state}, "
            f"{self.consecutive_failures}/{self.threshold} consecutive)"
        )


__all__ = ["Backoff", "CircuitBreaker", "RetryPolicy"]
