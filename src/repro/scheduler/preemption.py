"""Preemption policy: the two-hour shield and victim selection.

"To help ensure even the lowest priority jobs are able to make progress,
preemptions can only occur after two hours of runtime" (Section III).  A
pending job may preempt strictly-lower-QoS jobs whose current attempt has
run at least the shield duration.  Victim selection frees whole servers:
we rank candidate nodes by (lowest resident QoS, fewest resident GPUs) so
the cheapest capacity is churned first — which is also why large job
failures cascade into *many* small preemptions (Fig. 8's second-order
effect).
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.components import GPUS_PER_NODE
from repro.cluster.node import Node
from repro.scheduler.job import Job, JobState
from repro.sim.timeunits import HOUR

PREEMPTION_SHIELD = 2 * HOUR


@dataclass
class PreemptionPlan:
    """Outcome of victim selection: jobs to kill and nodes that free up."""

    victims: List[Job]
    freed_nodes: List[Node]


@dataclass
class PreemptionPolicy:
    """Chooses preemption victims for a job that cannot otherwise place."""

    shield: float = PREEMPTION_SHIELD

    def job_is_preemptible(self, job: Job, by: Job, now: float) -> bool:
        """May ``job`` be preempted in favour of ``by`` right now?"""
        if job.state is not JobState.RUNNING or job.start_time is None:
            return False
        if job.qos >= by.qos:
            return False
        return (now - job.start_time) >= self.shield

    def plan(
        self,
        pending: Job,
        nodes: Dict[int, Node],
        jobs: Dict[int, Job],
        now: float,
        already_free: int,
        excluded: Set[int],
        candidate_ids: Optional[Iterable[int]] = None,
    ) -> Optional[PreemptionPlan]:
        """Find victims so that ``pending`` can start; None if impossible.

        ``already_free`` is the count of fully free servers that placement
        already found; we only need to liberate the remainder.  A node is
        liberable only if *every* resident job is preemptible — gang
        semantics mean killing one job frees all its nodes, so we work at
        node granularity and dedupe victims.

        ``candidate_ids``, when given, must be the schedulable node ids in
        ascending order (the cluster's incremental index); it replaces the
        full-fleet scan with an identical candidate sequence.
        """
        if pending.n_gpus < GPUS_PER_NODE:
            needed_nodes = 1
        else:
            needed_nodes = pending.n_gpus // GPUS_PER_NODE
        to_liberate = needed_nodes - already_free
        if to_liberate <= 0:
            return PreemptionPlan(victims=[], freed_nodes=[])

        candidates: List[Tuple[Tuple[int, int], Node]] = []
        if candidate_ids is not None:
            # Ascending schedulable ids == dict order minus unschedulable
            # nodes, so the candidate sequence (and hence the plan) is
            # identical to the scan below.  The loop body is a flattened
            # equivalent of the scan path's all()/min() pass: the same
            # per-resident predicate (RUNNING, started, strictly lower QoS,
            # past the shield) with short-circuit exit, fusing the min-QoS
            # fold into the same traversal.  This is the scheduler's
            # hottest loop; the reference body below is kept verbatim.
            running_state = JobState.RUNNING
            pending_qos = int(pending.qos)
            shield = self.shield
            for node_id in candidate_ids:
                if node_id in excluded:
                    continue
                node = nodes[node_id]
                running = node.running_jobs
                if not running or node.fully_free:
                    continue
                min_qos = pending_qos  # residents must all rank below it
                liberable = True
                for jid in running:
                    job = jobs[jid]
                    start_time = job.start_time
                    if (
                        job.state is not running_state
                        or start_time is None
                        or (now - start_time) < shield
                    ):
                        liberable = False
                        break
                    qos = int(job.spec.qos)
                    if qos >= pending_qos:
                        liberable = False
                        break
                    if qos < min_qos:
                        min_qos = qos
                if not liberable:
                    continue
                held = node.total_gpus - node.free_gpus
                candidates.append(((min_qos, held), node))
        else:
            pool = (n for n in nodes.values() if n.is_schedulable())
            for node in pool:
                if node.node_id in excluded:
                    continue
                if not node.running_jobs or node.fully_free:
                    continue
                residents = [jobs[jid] for jid in node.running_jobs]
                if not all(
                    self.job_is_preemptible(job, pending, now)
                    for job in residents
                ):
                    continue
                min_qos = min(int(job.qos) for job in residents)
                held = node.total_gpus - node.free_gpus
                candidates.append(((min_qos, held), node))
        if len(candidates) < to_liberate:
            return None

        candidates.sort(key=lambda item: (item[0], item[1].node_id))
        chosen_nodes = [node for _key, node in candidates[:to_liberate]]
        victim_ids: Set[int] = set()
        victims: List[Job] = []
        for node in chosen_nodes:
            for jid in node.running_jobs:
                if jid not in victim_ids:
                    victim_ids.add(jid)
                    victims.append(jobs[jid])
        return PreemptionPlan(victims=victims, freed_nodes=chosen_nodes)
