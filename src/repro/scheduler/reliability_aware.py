"""Reliability-aware placement (Section V's research direction).

"We see significant opportunities in further exposing reliability
information to the scheduler ... such that work is partitioned to maximize
reliability or goodput."  This policy does exactly that: gang placements
prefer nodes with clean recent records, pushing historically flaky nodes
to the back of the candidate list (where small, cheap-to-restart jobs land
instead).  It is a *softer* intervention than lemon quarantine — no
capacity is removed — and composes with it.

Risk is any callable over a node; the default reads the node's lemon
counters, weighting actual job-killing events over repair-shop visits.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.cluster.components import GPUS_PER_NODE
from repro.cluster.node import Node
from repro.scheduler.placement import FreeNodeIndex, PlacementPolicy


def default_node_risk(node: Node) -> float:
    """Failure-history risk score from the node's live counters."""
    counters = node.counters
    return (
        2.0 * (counters.multi_node_node_fails + counters.single_node_node_fails)
        + 1.0 * counters.tickets
        + 0.5 * counters.xid_cnt
    )


@dataclass
class ReliabilityAwarePlacement(PlacementPolicy):
    """Gang placement ordered by (risk tier, pod packing).

    Nodes are bucketed into integer risk tiers so that *small* risk
    differences don't shred pod locality: within a tier, the base policy's
    fullest-pod-first order is preserved.
    """

    risk_of: Callable[[Node], float] = default_node_risk
    tier_width: float = 2.0

    def __post_init__(self):
        if self.tier_width <= 0:
            raise ValueError("tier_width must be positive")

    def _tier(self, node: Node) -> int:
        return int(self.risk_of(node) // self.tier_width)

    def place(
        self, index: FreeNodeIndex, n_gpus: int, excluded: Set[int]
    ) -> Optional[List[Node]]:
        if n_gpus < GPUS_PER_NODE:
            # Sub-server jobs keep best-fit packing: they restart cheaply,
            # and they are exactly what should absorb the risky capacity.
            return super().place(index, n_gpus, excluded)
        if n_gpus % GPUS_PER_NODE != 0:
            raise ValueError(
                f"multi-server jobs must use whole servers (got {n_gpus})"
            )
        n_nodes = n_gpus // GPUS_PER_NODE
        candidates = index.full_node_candidates(excluded)
        if len(candidates) < n_nodes:
            return None
        pod_sizes: dict = {}
        for node in candidates:
            pod_sizes[node.pod_id] = pod_sizes.get(node.pod_id, 0) + 1
        candidates.sort(
            key=lambda n: (
                self._tier(n),
                -pod_sizes[n.pod_id],
                n.pod_id,
                n.node_id,
            )
        )
        return candidates[:n_nodes]
