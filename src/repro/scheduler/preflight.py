"""Preflight hardware tests for large gangs (Section V).

Before a large job's first step, operators run a battery of hardware
stress tests on the allocated nodes; the paper lists "making preflight
hardware tests more efficient" among the key restart-latency
optimizations.  The trade-off this module models:

* Preflight **delays every large start** by the battery duration (it is
  part of the restart overhead u0 that E[ETTR] charges per interruption).
* In exchange it **catches degraded nodes before they kill the job**: the
  battery approximates ``stress_days`` worth of load, so a node with
  hazard rate ``r`` fails it with probability ``1 - exp(-r * stress_days *
  efficiency)`` — nearly nothing for a healthy node, a substantial chance
  for a lemon whose component runs orders of magnitude hotter.

Flagged nodes go straight to remediation and the job re-places; the gang
never starts on hardware that could not survive the battery.
"""

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import Node
from repro.sim.timeunits import MINUTE


@dataclass(frozen=True)
class PreflightPolicy:
    """When and how hard to preflight.

    Attributes:
        min_nodes: Only gangs at least this large pay for preflight.
        duration: Battery wallclock per start (delays the job).
        stress_days: Equivalent load-days the battery compresses into the
            run — higher finds more latent trouble.
        efficiency: Fraction of that stress that translates into detection
            (batteries don't exercise every component).
    """

    min_nodes: int = 4
    duration: float = 10 * MINUTE
    stress_days: float = 2.0
    efficiency: float = 0.8

    def __post_init__(self):
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.stress_days <= 0:
            raise ValueError("stress_days must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    def applies_to(self, n_nodes: int) -> bool:
        return n_nodes >= self.min_nodes

    def detection_probability(self, hazard_rate_per_day: float) -> float:
        """P(the battery fails this node), given its current hazard rate."""
        if hazard_rate_per_day < 0:
            raise ValueError("hazard rate must be non-negative")
        exponent = hazard_rate_per_day * self.stress_days * self.efficiency
        return 1.0 - float(np.exp(-exponent))

    def node_fails_battery(
        self,
        node: Node,
        hazard_rate_per_day: float,
        rng: np.random.Generator,
    ) -> bool:
        return rng.random() < self.detection_probability(hazard_rate_per_day)
