"""Per-project GPU quotas.

"Groups of users have a maximum quota of GPUs that is determined by a
project-specific allocation" (Section II-A).  The quota gates *starting*
jobs, not submitting them: a job whose project is at its cap simply waits
in the queue even if capacity is free, which is one of the queueing terms
in measured ETTR.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional


class QuotaManager:
    """Tracks running GPU usage per project against optional caps."""

    def __init__(self, quotas: Optional[Dict[str, int]] = None):
        self._quotas: Dict[str, int] = dict(quotas) if quotas else {}
        self._usage: Dict[str, int] = {}
        for project, cap in self._quotas.items():
            if cap <= 0:
                raise ValueError(f"quota for {project!r} must be positive, got {cap}")

    def set_quota(self, project: str, max_gpus: int) -> None:
        if max_gpus <= 0:
            raise ValueError(f"quota must be positive, got {max_gpus}")
        self._quotas[project] = max_gpus

    def quota_of(self, project: str) -> Optional[int]:
        return self._quotas.get(project)

    def usage_of(self, project: str) -> int:
        return self._usage.get(project, 0)

    def may_start(self, project: str, gpus: int) -> bool:
        """Would starting a ``gpus``-GPU job keep the project within cap?"""
        cap = self._quotas.get(project)
        if cap is None:
            return True
        return self.usage_of(project) + gpus <= cap

    def acquire(self, project: str, gpus: int) -> None:
        if not self.may_start(project, gpus):
            raise RuntimeError(
                f"project {project!r} would exceed its quota "
                f"({self.usage_of(project)} + {gpus} > {self._quotas[project]})"
            )
        self._usage[project] = self.usage_of(project) + gpus

    def release(self, project: str, gpus: int) -> None:
        current = self.usage_of(project)
        if gpus > current:
            raise RuntimeError(
                f"project {project!r}: releasing {gpus} GPUs exceeds "
                f"tracked usage {current}"
            )
        self._usage[project] = current - gpus
