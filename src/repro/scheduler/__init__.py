"""Slurm-semantics gang scheduler.

Implements the scheduling behaviour the paper's analyses depend on: gang
allocation over whole servers (with GPU-slot sharing for sub-server jobs),
multifactor priority, preemption with the two-hour shield, the seven-day
lifetime cap, automatic requeue with the same job id after health-check
terminations, and topology-aware placement that packs pods.
"""

from repro.scheduler.job import Job, JobAttemptRecord, JobState
from repro.scheduler.priority import PriorityPolicy
from repro.scheduler.placement import FreeNodeIndex, PlacementPolicy
from repro.scheduler.preemption import PreemptionPolicy, PREEMPTION_SHIELD
from repro.scheduler.preflight import PreflightPolicy
from repro.scheduler.quota import QuotaManager
from repro.scheduler.reliability_aware import (
    ReliabilityAwarePlacement,
    default_node_risk,
)
from repro.scheduler.engine import SlurmLikeScheduler

__all__ = [
    "Job",
    "JobAttemptRecord",
    "JobState",
    "PriorityPolicy",
    "FreeNodeIndex",
    "PlacementPolicy",
    "PreemptionPolicy",
    "PREEMPTION_SHIELD",
    "PreflightPolicy",
    "QuotaManager",
    "ReliabilityAwarePlacement",
    "default_node_risk",
    "SlurmLikeScheduler",
]
