"""The scheduler engine: Slurm semantics on the event loop.

Responsibilities and their paper anchors:

* Gang scheduling — all of a job's servers allocate atomically; any node
  loss tears down the whole job (Fig. 1).
* Priority scheduling with preemption after the two-hour shield, and the
  seven-day lifetime cap (Section II-A).
* Automatic requeue with the same job id after infrastructure-caused
  terminations (Section II-A's guarantee) — this is what produces failure
  cascades: a requeued large high-priority job preempts swarms of small
  jobs (Observation 9).
* Per-attempt accounting records, the input to every Fig. 3-9 analysis.

Scheduling passes are debounced: any trigger (submit, job end, node back
from repair) schedules at most one pass at the current timestamp, plus a
periodic tick so age-based priority keeps the queue moving.
"""

from typing import Callable, Dict, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureIncident
from repro.cluster.node import Node, NodeState
from repro.obs.spans import maybe_span
from repro.scheduler.job import (
    FINAL_OUTCOME_BY_INTENT,
    Job,
    JobAttemptRecord,
    JobState,
)
from repro.scheduler.placement import FreeNodeIndex, PlacementPolicy
from repro.scheduler.preemption import PreemptionPolicy
from repro.scheduler.preflight import PreflightPolicy
from repro.scheduler.priority import PriorityPolicy
from repro.scheduler.quota import QuotaManager
from repro.sim.engine import Engine
from repro.sim.events import EventLog
from repro.sim.processes import PeriodicProcess
from repro.sim.rng import RngStreams
from repro.sim.timeunits import MINUTE
from repro.workload.spec import IntendedOutcome, JobSpec, QosTier


class SlurmLikeScheduler:
    """Gang scheduler with preemption, requeue, quotas, and accounting."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        rngs: RngStreams,
        priority: Optional[PriorityPolicy] = None,
        placement: Optional[PlacementPolicy] = None,
        preemption: Optional[PreemptionPolicy] = None,
        quotas: Optional[QuotaManager] = None,
        preflight: Optional[PreflightPolicy] = None,
        event_log: Optional[EventLog] = None,
        requeued_status_probability: float = 0.35,
        exclude_probability: float = 0.25,
        pass_period: float = 30 * MINUTE,
        telemetry=None,
    ):
        if not 0 <= requeued_status_probability <= 1:
            raise ValueError("requeued_status_probability must be in [0, 1]")
        if not 0 <= exclude_probability <= 1:
            raise ValueError("exclude_probability must be in [0, 1]")
        self.engine = engine
        self.cluster = cluster
        self.priority = priority if priority is not None else PriorityPolicy()
        self.placement = placement if placement is not None else PlacementPolicy()
        self.preemption = preemption if preemption is not None else PreemptionPolicy()
        self.quotas = quotas if quotas is not None else QuotaManager()
        self.preflight = preflight
        self.event_log = event_log if event_log is not None else cluster.event_log
        self.requeued_status_probability = requeued_status_probability
        self.exclude_probability = exclude_probability
        #: obs.Telemetry bundle; job lifecycle transitions are traced when
        #: enabled (submit/start/preempt/requeue/finish).
        self.telemetry = telemetry
        self._rng = rngs.stream("scheduler")

        self.jobs: Dict[int, Job] = {}
        self.pending: List[Job] = []
        self.running: Set[int] = set()
        self.records: List[JobAttemptRecord] = []
        # The placement index follows the cluster's query strategy, so a
        # legacy-mode cluster benchmarks the whole pre-index stack.
        self.index = FreeNodeIndex(
            cluster.nodes,
            incremental=getattr(cluster, "incremental_indices", True),
        )
        self._pass_pending = False
        #: invoked when a job COMPLETEs (used for job-run continuations:
        #: long training runs submit their next <=7-day segment here).
        self.on_job_completed: Optional[
            "Callable[[Job, JobAttemptRecord], None]"
        ] = None
        #: invoked with every closed attempt record immediately after it
        #: is appended to ``records`` (and before the ``sched.job_end``
        #: event) — the live tap's job channel; must not mutate state.
        self.on_record: Optional[
            "Callable[[JobAttemptRecord], None]"
        ] = None

        cluster.on_node_down = self._on_node_down
        cluster.on_node_available = self._on_node_available
        self._ticker = PeriodicProcess(
            engine, pass_period, self._schedule_pass, label="sched-tick"
        )

    # ------------------------------------------------------------------
    # submission & scheduling passes
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Accept a job; it becomes eligible at its submit time.

        Specs may be submitted ahead of time (the campaign runner hands the
        whole stream over at t=0); eligibility is deferred to
        ``spec.submit_time``.
        """
        if spec.job_id in self.jobs:
            raise ValueError(f"duplicate job id {spec.job_id}")
        job = Job(spec)
        self.jobs[spec.job_id] = job
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "sched.submit",
                f"job-{spec.job_id}",
                self.engine.now,
                job_id=spec.job_id,
                n_gpus=spec.n_gpus,
                submit_time=spec.submit_time,
            )
            telemetry.metrics.counter("sched_jobs_submitted_total").inc()
        if self.engine.now >= spec.submit_time:
            job.enqueue_time = self.engine.now
            self.pending.append(job)
            self._request_pass()
        else:
            self.engine.schedule_at(
                spec.submit_time,
                lambda: self._become_eligible(job),
                label=f"submit:{spec.job_id}",
            )
        return job

    def _become_eligible(self, job: Job) -> None:
        self.pending.append(job)
        self._request_pass()

    def _request_pass(self) -> None:
        if not self._pass_pending:
            self._pass_pending = True
            self.engine.schedule_after(0, self._run_pass, label="sched-pass")

    def _run_pass(self) -> None:
        self._pass_pending = False
        self._schedule_pass()

    def _schedule_pass(self) -> None:
        with maybe_span(
            self.telemetry, "sched.pass", queued=len(self.pending)
        ):
            self._schedule_pass_body()

    def _schedule_pass_body(self) -> None:
        now = self.engine.now
        # Swap the queue out: anything enqueued *during* the pass (e.g.
        # preemption victims) lands on the fresh self.pending and is picked
        # up next pass rather than being lost when we write back.
        queue, self.pending = self.pending, []
        ordered = self.priority.sort_pending(queue, now)
        still_pending: List[Job] = []
        preemption_spent = False
        for job in ordered:
            if not self.quotas.may_start(job.spec.project, job.n_gpus):
                still_pending.append(job)
                continue
            nodes = self.placement.place(self.index, job.n_gpus, job.excluded_nodes)
            if nodes is None and not preemption_spent and job.qos > QosTier.LOW:
                preemption_spent = True
                nodes = self._try_preempt_for(job, now)
            if nodes is None:
                still_pending.append(job)
            else:
                self._start(job, nodes, now)
        self.pending.extend(still_pending)

    def _try_preempt_for(self, job: Job, now: float) -> Optional[List[Node]]:
        cluster = self.cluster
        candidate_ids = (
            cluster.schedulable_node_ids()
            if getattr(cluster, "incremental_indices", True)
            else None
        )
        plan = self.preemption.plan(
            pending=job,
            nodes=cluster.nodes,
            jobs=self.jobs,
            now=now,
            already_free=self.index.free_full_node_count(),
            excluded=job.excluded_nodes,
            candidate_ids=candidate_ids,
        )
        if plan is None:
            return None
        telemetry = self.telemetry
        observing = telemetry is not None and telemetry.enabled
        for victim in plan.victims:
            if observing:
                telemetry.tracer.emit(
                    "sched.preempt",
                    f"job-{victim.job_id}",
                    now,
                    job_id=victim.job_id,
                    instigator_job_id=job.job_id,
                    n_gpus=victim.n_gpus,
                )
                telemetry.metrics.counter("sched_preemptions_total").inc()
            self._interrupt(
                victim,
                state=JobState.PREEMPTED,
                instigator_job_id=job.job_id,
            )
            victim.reenqueue(now)
            self.pending.append(victim)
        return self.placement.place(self.index, job.n_gpus, job.excluded_nodes)

    # ------------------------------------------------------------------
    # attempt lifecycle
    # ------------------------------------------------------------------
    def _start(self, job: Job, nodes: List[Node], now: float) -> None:
        gpus_per_node = job.spec.gpus_per_node
        for node in nodes:
            node.allocate(job.job_id, gpus_per_node)
            self.index.refresh(node.node_id)
            if job.spec.is_single_node():
                node.counters.single_node_jobs_seen += 1
        self.quotas.acquire(job.spec.project, job.n_gpus)
        job.state = JobState.RUNNING
        job.start_time = now
        job.node_ids = [n.node_id for n in nodes]
        self.running.add(job.job_id)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "sched.start",
                f"job-{job.job_id}",
                now,
                job_id=job.job_id,
                attempt=job.attempt,
                n_gpus=job.n_gpus,
                nodes=len(nodes),
            )
            telemetry.metrics.counter("sched_attempts_started_total").inc()
        if self.preflight is not None and self.preflight.applies_to(job.n_nodes):
            # Hold the allocation while the hardware battery runs; the
            # gang only begins real work once every node passes.
            job.end_event = self.engine.schedule_after(
                self.preflight.duration,
                lambda j=job: self._finish_preflight(j),
                label=f"preflight:{job.job_id}",
            )
            self.event_log.emit(
                now,
                "sched.preflight_start",
                f"job-{job.job_id}",
                job_id=job.job_id,
                nodes=len(nodes),
            )
            return
        self._begin_execution(job, now)

    def _begin_execution(self, job: Job, now: float) -> None:
        natural = job.remaining_work
        limit = job.spec.time_limit
        if natural <= limit:
            job.end_event = self.engine.schedule_after(
                natural, lambda j=job: self._natural_end(j), label=f"end:{job.job_id}"
            )
        else:
            job.end_event = self.engine.schedule_after(
                limit, lambda j=job: self._timeout_end(j), label=f"timeout:{job.job_id}"
            )
        self.event_log.emit(
            now,
            "sched.job_start",
            f"job-{job.job_id}",
            job_id=job.job_id,
            attempt=job.attempt,
            n_gpus=job.n_gpus,
            nodes=len(job.node_ids),
        )

    def _finish_preflight(self, job: Job) -> None:
        """Resolve a gang's hardware battery: start clean, or flag & retry."""
        now = self.engine.now
        rng = self._rng
        flagged: List[Node] = []
        for node_id in job.node_ids:
            node = self.cluster.nodes[node_id]
            rate = self.cluster.hazards.total_rate(node_id, now)
            if self.preflight.node_fails_battery(node, rate, rng):
                flagged.append(node)
        if not flagged:
            # Re-baseline: the battery is start latency, not training time.
            job.start_time = now
            self._begin_execution(job, now)
            return
        # Tear the reservation down without recording a run attempt —
        # the job never executed.  Flagged nodes go to remediation.
        node_ids = list(job.node_ids)
        job.state = JobState.PENDING
        job.start_time = None
        job.node_ids = []
        job.end_event = None
        self.running.discard(job.job_id)
        self.quotas.release(job.spec.project, job.n_gpus)
        for node_id in node_ids:
            self.cluster.release_job(node_id, job.job_id)
            self.index.refresh(node_id)
        from repro.cluster.components import FailureClass
        from repro.cluster.failures import FailureIncident
        from repro.cluster.health import CheckSeverity

        for node in flagged:
            incident = FailureIncident(
                incident_id=self.cluster.monitor.new_incident_id(),
                node_id=node.node_id,
                component=self.cluster.hazards.sample_component(
                    node.node_id, now, rng
                ),
                failure_class=FailureClass.TRANSIENT,
                time=now,
                severity=CheckSeverity.HIGH,
            )
            self.event_log.emit(
                now,
                "sched.preflight_failed",
                node.name,
                node_id=node.node_id,
                job_id=job.job_id,
            )
            if node.state is not NodeState.REMEDIATION:
                self.cluster.remediation.begin_remediation(node, incident)
            self.index.remove(node.node_id)
        job.reenqueue(now)
        job.attempt -= 1  # the reservation was not an attempt
        self.pending.append(job)
        self._request_pass()

    def _finish_attempt(self, job: Job, record: JobAttemptRecord) -> None:
        """Common bookkeeping once an attempt's record exists."""
        self.records.append(record)
        if self.on_record is not None:
            self.on_record(record)
        self.running.discard(job.job_id)
        self.quotas.release(job.spec.project, job.n_gpus)
        for node_id in record.node_ids:
            self.cluster.release_job(node_id, job.job_id)
            self.index.refresh(node_id)
        self.event_log.emit(
            record.end_time,
            "sched.job_end",
            f"job-{job.job_id}",
            job_id=job.job_id,
            attempt=record.attempt,
            state=record.state.value,
            n_gpus=record.n_gpus,
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.emit(
                "sched.finish",
                f"job-{job.job_id}",
                self.engine.now,
                job_id=job.job_id,
                attempt=record.attempt,
                state=record.state.value,
                n_gpus=record.n_gpus,
            )
            telemetry.metrics.counter(
                "sched_attempts_total", state=record.state.value
            ).inc()
        self._request_pass()

    def _natural_end(self, job: Job) -> None:
        now = self.engine.now
        job.remaining_work -= job.running_elapsed(now)
        state = FINAL_OUTCOME_BY_INTENT[job.spec.intended_outcome]
        record = job.close_attempt(end_time=now, state=state)
        self._finish_attempt(job, record)
        if state is JobState.COMPLETED and self.on_job_completed is not None:
            self.on_job_completed(job, record)

    def _timeout_end(self, job: Job) -> None:
        now = self.engine.now
        job.remaining_work -= job.running_elapsed(now)
        record = job.close_attempt(end_time=now, state=JobState.TIMEOUT)
        self._finish_attempt(job, record)

    def _interrupt(
        self,
        job: Job,
        state: JobState,
        hw_component: Optional[str] = None,
        hw_incident_id: Optional[int] = None,
        hw_attributed: bool = False,
        failing_node_id: Optional[int] = None,
        instigator_job_id: Optional[int] = None,
    ) -> JobAttemptRecord:
        """Tear down a running attempt (preemption or node failure)."""
        now = self.engine.now
        if job.end_event is not None:
            job.end_event.cancel()
        job.remaining_work -= job.running_elapsed(now)
        # Progress is credited fully here; checkpoint-gap and restart losses
        # are applied analytically downstream (Section II-D treats them as
        # free parameters, exactly as we do).
        record = job.close_attempt(
            end_time=now,
            state=state,
            hw_component=hw_component,
            hw_incident_id=hw_incident_id,
            hw_attributed=hw_attributed,
            failing_node_id=failing_node_id,
            instigator_job_id=instigator_job_id,
        )
        self._finish_attempt(job, record)
        return record

    # ------------------------------------------------------------------
    # cluster callbacks
    # ------------------------------------------------------------------
    def _on_node_down(self, node: Node, incident: FailureIncident) -> None:
        """High-severity incident: kill every resident job, maybe requeue."""
        now = self.engine.now
        for job_id in list(node.running_jobs):
            job = self.jobs[job_id]
            if incident.heartbeat_only:
                state = JobState.NODE_FAIL
            elif self._rng.random() < self.requeued_status_probability:
                state = JobState.REQUEUED
            else:
                state = JobState.FAILED
            if job.spec.is_single_node():
                node.counters.single_node_node_fails += 1
            else:
                node.counters.multi_node_node_fails += 1
            job.hw_interruptions += 1
            self._interrupt(
                job,
                state=state,
                hw_component=incident.component.value,
                hw_incident_id=incident.incident_id,
                hw_attributed=incident.attributed,
                failing_node_id=node.node_id,
            )
            if self._rng.random() < self.exclude_probability:
                job.excluded_nodes.add(node.node_id)
                node.record_exclusion(job.job_id)
            if job.can_requeue():
                job.requeues_used += 1
                job.reenqueue(now)
                self.pending.append(job)
                telemetry = self.telemetry
                if telemetry is not None and telemetry.enabled:
                    telemetry.tracer.emit(
                        "sched.requeue",
                        f"job-{job.job_id}",
                        now,
                        job_id=job.job_id,
                        failing_node_id=node.node_id,
                        requeues_used=job.requeues_used,
                    )
                    telemetry.metrics.counter("sched_requeues_total").inc()
        self.index.remove(node.node_id)
        self._request_pass()

    def _on_node_available(self, node: Node) -> None:
        self.index.refresh(node.node_id)
        self._request_pass()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return len(self.pending)

    def running_gpus(self) -> int:
        return sum(self.jobs[jid].n_gpus for jid in self.running)

    def stop(self) -> None:
        """Stop periodic passes (end of campaign)."""
        self._ticker.stop()
