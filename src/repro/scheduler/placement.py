"""Topology-aware gang placement over GPU slots.

Two regimes, as in the real cluster:

* **Sub-server jobs** (1-7 GPUs) pack onto partially used nodes, best-fit,
  so whole servers stay free for gangs.
* **Server-and-larger jobs** take whole nodes.  Placement is rail/pod
  aware: it fills from the pods with the most free servers, minimizing the
  number of pods a gang spans (the paper's Slurm "attempts to co-locate
  tasks given the physical network topology").

The :class:`FreeNodeIndex` keeps allocation queries O(1)-ish.  It tolerates
stale entries (a node that drained or failed since insertion) by
re-validating against the live node object at pop time — cheaper and less
error-prone than keeping every state transition synchronously mirrored.
"""

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.cluster.components import GPUS_PER_NODE
from repro.cluster.node import Node


class FreeNodeIndex:
    """Tracks free GPU capacity: per-free-count buckets + per-pod full nodes."""

    def __init__(self, nodes: Dict[int, Node]):
        self._nodes = nodes
        # bucket[k] = node ids believed to have exactly k free GPUs (1..8)
        self._buckets: List[Set[int]] = [set() for _ in range(GPUS_PER_NODE + 1)]
        self._bucket_of: Dict[int, int] = {}
        self._full_by_pod: Dict[int, Set[int]] = defaultdict(set)
        for node in nodes.values():
            self.refresh(node.node_id)

    def refresh(self, node_id: int) -> None:
        """Re-index a node after any capacity or state change."""
        node = self._nodes[node_id]
        old = self._bucket_of.pop(node_id, None)
        if old is not None:
            self._buckets[old].discard(node_id)
            if old == GPUS_PER_NODE:
                self._full_by_pod[node.pod_id].discard(node_id)
        if not node.is_schedulable() or node.free_gpus == 0:
            return
        k = node.free_gpus
        self._buckets[k].add(node_id)
        self._bucket_of[node_id] = k
        if k == GPUS_PER_NODE:
            self._full_by_pod[node.pod_id].add(node_id)

    def remove(self, node_id: int) -> None:
        """Drop a node from the index (failed, draining, or quarantined)."""
        node = self._nodes[node_id]
        old = self._bucket_of.pop(node_id, None)
        if old is not None:
            self._buckets[old].discard(node_id)
            if old == GPUS_PER_NODE:
                self._full_by_pod[node.pod_id].discard(node_id)

    def _validated(self, node_id: int, gpus: int) -> Optional[Node]:
        node = self._nodes[node_id]
        if node.can_host(gpus):
            return node
        self.refresh(node_id)  # drop/reposition the stale entry
        return None

    def find_partial(self, gpus: int, excluded: Set[int]) -> Optional[Node]:
        """Best-fit node for a sub-server job (smallest adequate bucket)."""
        for k in range(gpus, GPUS_PER_NODE + 1):
            for node_id in sorted(self._buckets[k]):
                if node_id in excluded:
                    continue
                node = self._validated(node_id, gpus)
                if node is not None:
                    return node
        return None

    def find_full_nodes(
        self, n_nodes: int, excluded: Set[int]
    ) -> Optional[List[Node]]:
        """Pick ``n_nodes`` fully free servers, packing the fullest pods."""
        pods = sorted(
            self._full_by_pod.items(),
            key=lambda item: (-len(item[1]), item[0]),
        )
        chosen: List[Node] = []
        for _pod_id, node_ids in pods:
            for node_id in sorted(node_ids):
                if node_id in excluded:
                    continue
                node = self._validated(node_id, GPUS_PER_NODE)
                if node is not None:
                    chosen.append(node)
                    if len(chosen) == n_nodes:
                        return chosen
        return None

    def free_full_node_count(self) -> int:
        """Upper bound on fully free servers (may include stale entries)."""
        return sum(len(s) for s in self._full_by_pod.values())

    def full_node_candidates(self, excluded: Set[int]) -> List[Node]:
        """All validated fully-free servers (for custom selection orders)."""
        out: List[Node] = []
        for node_ids in self._full_by_pod.values():
            for node_id in sorted(node_ids):
                if node_id in excluded:
                    continue
                node = self._validated(node_id, GPUS_PER_NODE)
                if node is not None:
                    out.append(node)
        return out


@dataclass
class PlacementPolicy:
    """Stateless placement decisions over a :class:`FreeNodeIndex`."""

    def place(
        self, index: FreeNodeIndex, n_gpus: int, excluded: Set[int]
    ) -> Optional[List[Node]]:
        """Return the nodes for a gang, or ``None`` if it cannot fit now."""
        if n_gpus < GPUS_PER_NODE:
            node = index.find_partial(n_gpus, excluded)
            return None if node is None else [node]
        if n_gpus % GPUS_PER_NODE != 0:
            raise ValueError(
                f"multi-server jobs must use whole servers (got {n_gpus})"
            )
        return index.find_full_nodes(n_gpus // GPUS_PER_NODE, excluded)

    def pods_spanned(self, nodes: Iterable[Node]) -> int:
        return len({n.pod_id for n in nodes})
