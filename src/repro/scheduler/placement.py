"""Topology-aware gang placement over GPU slots.

Two regimes, as in the real cluster:

* **Sub-server jobs** (1-7 GPUs) pack onto partially used nodes, best-fit,
  so whole servers stay free for gangs.
* **Server-and-larger jobs** take whole nodes.  Placement is rail/pod
  aware: it fills from the pods with the most free servers, minimizing the
  number of pods a gang spans (the paper's Slurm "attempts to co-locate
  tasks given the physical network topology").

The :class:`FreeNodeIndex` keeps allocation queries O(1)-ish.  It tolerates
stale entries (a node that drained or failed since insertion) by
re-validating against the live node object at query time — cheaper and less
error-prone than keeping every state transition synchronously mirrored.

Iteration order is part of the determinism contract: buckets yield node
ids ascending, and pods yield by (most free servers, lowest pod id).  The
default (incremental) mode maintains those orders as sorted structures
updated on refresh/remove, so no ``sorted()`` runs inside the allocation
loop; ``incremental=False`` preserves the original per-query ``sorted()``
reference path, which the order-regression tests and benchmarks compare
against — both modes must make identical choices.
"""

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.components import GPUS_PER_NODE
from repro.cluster.node import Node
from repro.core.indices import SortedIntSet


class FreeNodeIndex:
    """Tracks free GPU capacity: per-free-count buckets + per-pod full nodes."""

    def __init__(self, nodes: Dict[int, Node], incremental: bool = True):
        self._nodes = nodes
        self._incremental = incremental
        if incremental:
            # bucket[k] = node ids with exactly k free GPUs, kept sorted
            self._buckets: List = [SortedIntSet() for _ in range(GPUS_PER_NODE + 1)]
            # pod id -> its fully free nodes, kept sorted; keys pre-seeded
            # in ascending pod order so plain dict iteration matches the
            # legacy first-touch (node-id) order.
            self._full_by_pod: Dict[int, SortedIntSet] = {}
            for node in nodes.values():
                self._full_by_pod.setdefault(node.pod_id, SortedIntSet())
            # (-free_count, pod_id) tuples, sorted — the pod fill order —
            # for pods with at least one fully free node.
            self._pod_order: List[Tuple[int, int]] = []
            self._full_count = 0
        else:
            self._buckets = [set() for _ in range(GPUS_PER_NODE + 1)]
            self._full_by_pod = defaultdict(set)
        self._bucket_of: Dict[int, int] = {}
        for node in nodes.values():
            self.refresh(node.node_id)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _pod_count_changed(self, pod_id: int, old: int, new: int) -> None:
        """Re-slot a pod in the fill order after its full-count changed."""
        order = self._pod_order
        if old > 0:
            order.remove((-old, pod_id))
        if new > 0:
            insort(order, (-new, pod_id))

    def _drop_full(self, node: Node) -> None:
        pod = self._full_by_pod[node.pod_id]
        if self._incremental:
            old = len(pod)
            pod.discard(node.node_id)
            if len(pod) != old:
                self._full_count -= 1
                self._pod_count_changed(node.pod_id, old, old - 1)
        else:
            pod.discard(node.node_id)

    def _add_full(self, node: Node) -> None:
        pod = self._full_by_pod[node.pod_id]
        if self._incremental:
            old = len(pod)
            pod.add(node.node_id)
            if len(pod) != old:
                self._full_count += 1
                self._pod_count_changed(node.pod_id, old, old + 1)
        else:
            pod.add(node.node_id)

    def refresh(self, node_id: int) -> None:
        """Re-index a node after any capacity or state change."""
        node = self._nodes[node_id]
        old = self._bucket_of.pop(node_id, None)
        if old is not None:
            self._buckets[old].discard(node_id)
            if old == GPUS_PER_NODE:
                self._drop_full(node)
        if not node.is_schedulable() or node.free_gpus == 0:
            return
        k = node.free_gpus
        self._buckets[k].add(node_id)
        self._bucket_of[node_id] = k
        if k == GPUS_PER_NODE:
            self._add_full(node)

    def remove(self, node_id: int) -> None:
        """Drop a node from the index (failed, draining, or quarantined)."""
        node = self._nodes[node_id]
        old = self._bucket_of.pop(node_id, None)
        if old is not None:
            self._buckets[old].discard(node_id)
            if old == GPUS_PER_NODE:
                self._drop_full(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _iter_bucket(self, k: int) -> Iterable[int]:
        """Bucket ``k``'s node ids, ascending (pre-sorted in incremental
        mode; sorted per call on the legacy path)."""
        bucket = self._buckets[k]
        return bucket if self._incremental else sorted(bucket)

    def _iter_pods(self) -> List[Tuple[int, Iterable[int]]]:
        """(pod_id, full node ids ascending) by (most free, lowest pod)."""
        if self._incremental:
            return [
                (pod_id, self._full_by_pod[pod_id])
                for _neg_count, pod_id in list(self._pod_order)
            ]
        return [
            (pod_id, sorted(node_ids))
            for pod_id, node_ids in sorted(
                self._full_by_pod.items(),
                key=lambda item: (-len(item[1]), item[0]),
            )
        ]

    def _flush_stale(self, stale: Optional[List[int]]) -> None:
        """Re-index entries found invalid during a query.

        Queries iterate the live sorted structures, so repositioning is
        deferred to the end of each scan instead of mutating mid-iteration
        (the legacy path iterated throwaway ``sorted()`` snapshots, which
        made immediate refresh safe; the choice sequence is identical).
        """
        if stale:
            for node_id in stale:
                self.refresh(node_id)

    def find_partial(self, gpus: int, excluded: Set[int]) -> Optional[Node]:
        """Best-fit node for a sub-server job (smallest adequate bucket)."""
        nodes = self._nodes
        for k in range(gpus, GPUS_PER_NODE + 1):
            found = None
            stale: Optional[List[int]] = None
            for node_id in self._iter_bucket(k):
                if node_id in excluded:
                    continue
                node = nodes[node_id]
                if node.can_host(gpus):
                    found = node
                    break
                if stale is None:
                    stale = []
                stale.append(node_id)
            self._flush_stale(stale)
            if found is not None:
                return found
        return None

    def find_full_nodes(
        self, n_nodes: int, excluded: Set[int]
    ) -> Optional[List[Node]]:
        """Pick ``n_nodes`` fully free servers, packing the fullest pods."""
        nodes = self._nodes
        chosen: List[Node] = []
        stale: Optional[List[int]] = None
        for _pod_id, node_ids in self._iter_pods():
            for node_id in node_ids:
                if node_id in excluded:
                    continue
                node = nodes[node_id]
                if not node.can_host(GPUS_PER_NODE):
                    if stale is None:
                        stale = []
                    stale.append(node_id)
                    continue
                chosen.append(node)
                if len(chosen) == n_nodes:
                    self._flush_stale(stale)
                    return chosen
        self._flush_stale(stale)
        return None

    def free_full_node_count(self) -> int:
        """Upper bound on fully free servers (may include stale entries)."""
        if self._incremental:
            return self._full_count
        return sum(len(s) for s in self._full_by_pod.values())

    def full_node_candidates(self, excluded: Set[int]) -> List[Node]:
        """All validated fully-free servers (for custom selection orders).

        Pods iterate in ascending pod id (dict order: pre-seeded in
        incremental mode, first-touch on the legacy path — identical for
        id-ordered fleets), nodes ascending within each pod.
        """
        nodes = self._nodes
        out: List[Node] = []
        stale: Optional[List[int]] = None
        for pod in self._full_by_pod.values():
            for node_id in pod if self._incremental else sorted(pod):
                if node_id in excluded:
                    continue
                node = nodes[node_id]
                if not node.can_host(GPUS_PER_NODE):
                    if stale is None:
                        stale = []
                    stale.append(node_id)
                    continue
                out.append(node)
        self._flush_stale(stale)
        return out


@dataclass
class PlacementPolicy:
    """Stateless placement decisions over a :class:`FreeNodeIndex`."""

    def place(
        self, index: FreeNodeIndex, n_gpus: int, excluded: Set[int]
    ) -> Optional[List[Node]]:
        """Return the nodes for a gang, or ``None`` if it cannot fit now."""
        if n_gpus < GPUS_PER_NODE:
            node = index.find_partial(n_gpus, excluded)
            return None if node is None else [node]
        if n_gpus % GPUS_PER_NODE != 0:
            raise ValueError(
                f"multi-server jobs must use whole servers (got {n_gpus})"
            )
        return index.find_full_nodes(n_gpus // GPUS_PER_NODE, excluded)

    def pods_spanned(self, nodes: Iterable[Node]) -> int:
        return len({n.pod_id for n in nodes})
