"""Multifactor priority, after Slurm's priority/multifactor plugin.

The paper: "the scheduler attempts to schedule jobs based on priority
order, which is a function of many variables, including the project's
allocation and the job's age".  We implement the three factors that drive
the dynamics the paper measures: QoS tier (dominant — large training runs
are high priority), job age (so nothing starves), and a small size factor
(Slurm's job-size factor, which nudges large gangs forward so they do not
wait forever behind trickles of small jobs).
"""

import math
from dataclasses import dataclass

from repro.scheduler.job import Job
from repro.sim.timeunits import DAY


@dataclass(frozen=True)
class PriorityPolicy:
    """Weights for the multifactor priority sum.

    ``age_norm`` is the age at which the age factor saturates at 1.0
    (Slurm's PriorityMaxAge, typically a few days).
    """

    qos_weight: float = 1000.0
    age_weight: float = 100.0
    size_weight: float = 20.0
    age_norm: float = 2 * DAY

    def __post_init__(self):
        if self.age_norm <= 0:
            raise ValueError("age_norm must be positive")
        if min(self.qos_weight, self.age_weight, self.size_weight) < 0:
            raise ValueError("priority weights must be non-negative")

    def priority(self, job: Job, now: float) -> float:
        """Compute the job's current priority (higher schedules first)."""
        age = max(0.0, now - job.enqueue_time)
        age_factor = min(age / self.age_norm, 1.0)
        size_factor = math.log2(job.n_gpus) / 12.0  # 4096 GPUs -> 1.0
        return (
            self.qos_weight * int(job.qos)
            + self.age_weight * age_factor
            + self.size_weight * size_factor
        )

    def sort_pending(self, jobs, now: float):
        """Priority order with deterministic job-id tie-breaking."""
        return sorted(jobs, key=lambda j: (-self.priority(j, now), j.job_id))
