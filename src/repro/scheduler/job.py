"""Job runtime state and the per-attempt trace record.

A logical job keeps its id across requeues (the paper's infrastructure
guarantee); every scheduling *attempt* produces one
:class:`JobAttemptRecord`, which is the row format the analysis layer
consumes — the equivalent of one Slurm accounting entry.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.sim.engine import ScheduledEvent
from repro.jobtypes import (
    FINAL_OUTCOME_BY_INTENT,
    INTERRUPTION_STATES,
    IntendedOutcome,
    JobAttemptRecord,
    JobState,
    QosTier,
)
from repro.workload.spec import JobSpec


class Job:
    """Mutable scheduler-side state of one logical job."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.state = JobState.PENDING
        self.attempt = 0
        self.remaining_work = spec.effective_work
        self.enqueue_time = spec.submit_time
        self.start_time: Optional[float] = None
        self.node_ids: List[int] = []
        self.end_event: Optional[ScheduledEvent] = None
        self.records: List[JobAttemptRecord] = []
        self.requeues_used = 0
        self.hw_interruptions = 0
        self.excluded_nodes: Set[int] = set(spec.exclude_nodes)

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def qos(self) -> QosTier:
        return self.spec.qos

    @property
    def n_gpus(self) -> int:
        return self.spec.n_gpus

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    def running_elapsed(self, now: float) -> float:
        if self.state is not JobState.RUNNING or self.start_time is None:
            raise RuntimeError(f"job {self.job_id} is not running")
        return now - self.start_time

    def can_requeue(self) -> bool:
        return (
            self.requeues_used < self.spec.max_requeues
            and self.remaining_work > 0
        )

    def close_attempt(
        self,
        end_time: float,
        state: JobState,
        hw_component: Optional[str] = None,
        hw_incident_id: Optional[int] = None,
        hw_attributed: bool = False,
        failing_node_id: Optional[int] = None,
        instigator_job_id: Optional[int] = None,
    ) -> JobAttemptRecord:
        """Record the end of the current attempt and return its row."""
        if self.start_time is None:
            raise RuntimeError(f"job {self.job_id} has no running attempt to close")
        record = JobAttemptRecord(
            job_id=self.job_id,
            attempt=self.attempt,
            jobrun_id=self.spec.jobrun_id,
            project=self.spec.project,
            qos=self.spec.qos,
            n_gpus=self.spec.n_gpus,
            n_nodes=self.spec.n_nodes,
            enqueue_time=self.enqueue_time,
            start_time=self.start_time,
            end_time=end_time,
            state=state,
            node_ids=tuple(self.node_ids),
            hw_component=hw_component,
            hw_incident_id=hw_incident_id,
            hw_attributed=hw_attributed,
            failing_node_id=failing_node_id,
            instigator_job_id=instigator_job_id,
        )
        self.records.append(record)
        self.state = state
        self.start_time = None
        self.node_ids = []
        self.end_event = None
        return record

    def reenqueue(self, now: float) -> None:
        """Return the job to the pending queue for a fresh attempt."""
        self.attempt += 1
        self.state = JobState.PENDING
        self.enqueue_time = now

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, gpus={self.n_gpus}, qos={self.qos.name}, "
            f"state={self.state.value}, attempt={self.attempt})"
        )
