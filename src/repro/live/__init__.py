"""repro.live — streaming reliability analytics over the event stream.

The online counterpart of ``repro.analysis``: a bounded event bus, a
deterministic trace replay, and a set of incrementally-updated
estimators (rolling failure rates, per-size MTTF, ETTR forecasts, lemon
scores, fleet gauges) whose answers are cross-validated against the
batch analyses — bit-identical where the math permits, within
documented tolerance otherwise.  See ``docs/STREAMING.md``.

Two ways in:

* **Replay** a finished trace::

      from repro.live import LiveAnalytics, LiveConfig, replay_trace

      analytics = LiveAnalytics(LiveConfig.for_trace(trace))
      replay_trace(trace, analytics)
      print(analytics.report().render())

* **Tap** a running campaign::

      from repro.live import live_campaign

      trace, analytics, bus = live_campaign(config)

Sessions checkpoint with ``analytics.snapshot()`` /
``LiveAnalytics.from_snapshot`` (exact resume), and the ``repro live``
CLI subcommand wraps both modes.
"""

from repro.live.analytics import (
    LIVE_SNAPSHOT_VERSION,
    LiveAnalytics,
    LiveConfig,
    LiveReport,
)
from repro.live.bus import (
    CHANNEL_EVENT,
    CHANNEL_JOB,
    CHANNEL_NODE,
    CHANNELS,
    CHANNEL_RANK,
    BusOverflow,
    BusStats,
    EventBus,
    StreamItem,
)
from repro.live.estimators import (
    ETTRForecaster,
    FleetGauges,
    LiveLemonEstimator,
    OnlineMTTFEstimator,
    RollingFailureRateEstimator,
)
from repro.live.replay import iter_trace_stream, replay_trace
from repro.live.tap import CampaignTap, live_campaign

__all__ = [
    "LIVE_SNAPSHOT_VERSION",
    "LiveAnalytics",
    "LiveConfig",
    "LiveReport",
    "CHANNELS",
    "CHANNEL_JOB",
    "CHANNEL_EVENT",
    "CHANNEL_NODE",
    "CHANNEL_RANK",
    "BusOverflow",
    "BusStats",
    "EventBus",
    "StreamItem",
    "ETTRForecaster",
    "FleetGauges",
    "LiveLemonEstimator",
    "OnlineMTTFEstimator",
    "RollingFailureRateEstimator",
    "iter_trace_stream",
    "replay_trace",
    "CampaignTap",
    "live_campaign",
]
