"""Online reliability estimators over the live stream.

Each estimator consumes stream items incrementally and can answer at any
watermark; each also round-trips its full state through a JSON-safe
``state_dict()`` / ``load_state()`` pair (the snapshot format — see
``docs/STREAMING.md``).  Exactness contracts versus the batch analyses:

* :class:`RollingFailureRateEstimator` — **bit-identical** to
  ``analysis.failure_rate_timeline`` (same window arithmetic, same grid
  values, same count-over-exposure division).
* :class:`OnlineMTTFEstimator` — per-size-bucket MTTF inputs and Gamma
  CIs **bit-identical** to ``core.mttf.empirical_mttf_by_size`` (the
  per-bucket runtime sums accumulate in record order, exactly like the
  rowwise loop — and the columnar ``np.bincount`` path is documented
  bit-identical to that loop).  The r_f estimate is bit-identical when
  ``min_gpus`` is pinned; the auto-floor mode regroups the sum by job
  size and agrees within ~1e-9 relative (see STREAMING.md).
* :class:`ETTRForecaster` — the measured per-bucket series (means and
  bootstrap CIs) is **bit-identical** to ``analysis.ettr_comparison``;
  the expected (Eq. 1) series inherits the r_f tolerance.
* :class:`LiveLemonEstimator` — provisional per-node scores update
  incrementally from the job stream; once the end-of-stream node records
  land, the flagged cohort is **exactly** the batch
  ``analysis.lemon_analysis`` cohort.
* :class:`FleetGauges` — delivered GPU-seconds are bit-identical to the
  rowwise ``sum(r.gpu_seconds)``; availability tracks remediation
  tickets and quarantine events.
"""

import math
from bisect import bisect_right, insort
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ettr import ETTRParameters, expected_ettr, expected_ettr_simple
from repro.core.lemon import LemonDetector, LemonPolicy
from repro.core.mttf import MTTFBucket, size_bucket
from repro.jobtypes import JobAttemptRecord, JobState
from repro.sim.events import EventRecord
from repro.sim.timeunits import DAY, HOUR
from repro.stats.bootstrap import bootstrap_mean_ci
from repro.stats.fitting import estimate_rate
from repro.workload.trace import NodeTraceRecord


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


# ----------------------------------------------------------------------
# Rolling attributed failure rates (streaming Fig. 4/5)
# ----------------------------------------------------------------------
class RollingFailureRateEstimator:
    """Trailing-window incident rates on the Fig. 5 grid, online.

    Grid point ``t_i = start + i*step`` finalizes once the watermark
    passes ``t_i + allowed_lateness``; the rate is
    ``#incidents in (t_i - window, t_i] / (window * exposure)`` — the
    exact ``stats.rolling.rolling_rate`` arithmetic.  Incident times
    older than the next grid point's window are evicted, so live memory
    is O(window incidents), not O(campaign).

    **Lateness.**  ``cluster.incident`` events are *backdated*: they
    carry the incident's true occurrence time but are appended to the
    event log at the moment a health check detects them, minutes later.
    The stream therefore delivers them after the watermark may already
    have passed their timestamp.  ``allowed_lateness`` (default: one
    window) holds each grid point open long enough for every backdated
    event to land; pending times are kept sorted under ``insort``, which
    matches the batch path bit for bit (``rolling_rate`` sorts its input
    array).  An event that arrives after its grid point finalized anyway
    is counted in :attr:`late_events` — the cross-validation tests
    assert it stays zero, so a lateness violation is loud, not silent.
    """

    def __init__(
        self,
        window: float,
        step: float,
        exposure_per_time: float,
        start: float = 0.0,
        allowed_lateness: Optional[float] = None,
    ):
        _require(window > 0, f"window must be positive, got {window}")
        _require(step > 0, f"step must be positive, got {step}")
        _require(exposure_per_time > 0, "exposure_per_time must be positive")
        self.window = float(window)
        self.step = float(step)
        self.exposure_per_time = float(exposure_per_time)
        self.start = float(start)
        self.lateness = (
            float(allowed_lateness)
            if allowed_lateness is not None
            else self.window
        )
        _require(self.lateness >= 0, "allowed_lateness must be >= 0")
        self.late_events = 0
        self._grid_index = 0  # next grid point to finalize
        # overall + per-component pending incident times (ascending)
        self._times: List[float] = []
        self._times_by_component: Dict[str, List[float]] = {}
        # finalized rate series; per-component series are backfilled with
        # zeros for grid points emitted before the component first fired
        # (an empty trailing window has rate exactly 0.0, as in batch).
        self.overall: List[float] = []
        self.by_component: Dict[str, List[float]] = {}
        self.first_fire: Dict[str, float] = {}

    # -- ingestion -----------------------------------------------------
    def observe_event(self, event: EventRecord) -> None:
        if event.kind == "cluster.incident":
            if self._grid_index > 0 and event.time <= self.grid_time(
                self._grid_index - 1
            ):
                # A finalized point should have counted this; raise the
                # allowed lateness if this ever fires.
                self.late_events += 1
            insort(self._times, event.time)
            component = event.data.get("component", "?")
            series = self._times_by_component.get(component)
            if series is None:
                series = self._times_by_component[component] = []
                self.by_component.setdefault(
                    component, [0.0] * len(self.overall)
                )
            insort(series, event.time)
        elif event.kind == "health.check_failed":
            check = event.data.get("check")
            if check not in self.first_fire:
                self.first_fire[check] = event.time

    # -- watermark advancement -----------------------------------------
    def grid_time(self, index: int) -> float:
        """The ``np.arange`` value for grid slot ``index``."""
        return self.start + index * self.step

    def _finalize_one(self) -> None:
        t = self.grid_time(self._grid_index)
        denom = self.window * self.exposure_per_time
        lower = t - self.window
        self.overall.append(self._rate(self._times, t, lower, denom))
        for component, times in self._times_by_component.items():
            self.by_component[component].append(
                self._rate(times, t, lower, denom)
            )
        self._grid_index += 1
        # Evict times no future grid point can see: the next point's
        # trailing window is (t + step - window, t + step].
        evict_below = self.grid_time(self._grid_index) - self.window
        self._evict(self._times, evict_below)
        for times in self._times_by_component.values():
            self._evict(times, evict_below)

    @staticmethod
    def _rate(times: List[float], t: float, lower: float, denom: float) -> float:
        # count in (lower, t]: searchsorted(side="right") on both ends.
        count = float(bisect_right(times, t) - bisect_right(times, lower))
        return count / denom

    @staticmethod
    def _evict(times: List[float], below: float) -> None:
        keep_from = bisect_right(times, below)
        if keep_from:
            del times[:keep_from]

    def advance(self, watermark: float) -> None:
        """Finalize every grid point the watermark has safely cleared.

        A point ``t`` finalizes only once ``t + lateness < watermark``
        (strict, since items share timestamps): events at or before
        ``t`` may still be in flight up to ``lateness`` behind the
        watermark (backdated incidents — see the class docstring).
        """
        while self.grid_time(self._grid_index) + self.lateness < watermark:
            self._finalize_one()

    def finish(self, end: float) -> None:
        """Flush the remaining grid, matching ``np.arange(start, end +
        step/2, step)``'s point count exactly."""
        n_points = max(
            0, math.ceil((end + self.step / 2 - self.start) / self.step)
        )
        _require(
            self._grid_index <= n_points,
            "watermark advanced beyond the stream end",
        )
        while self._grid_index < n_points:
            self._finalize_one()

    # -- queries -------------------------------------------------------
    @property
    def window_days(self) -> float:
        return self.window / DAY

    def times_days(self) -> np.ndarray:
        grid = np.asarray(
            [self.grid_time(i) for i in range(len(self.overall))]
        )
        return grid / DAY

    def overall_series(self) -> np.ndarray:
        return np.asarray(self.overall, dtype=float)

    def component_series(self) -> Dict[str, np.ndarray]:
        return {
            name: np.asarray(series, dtype=float)
            for name, series in sorted(self.by_component.items())
        }

    def current_rate(self) -> float:
        """Most recent finalized overall rate (0 before the first point)."""
        return self.overall[-1] if self.overall else 0.0

    def check_introductions(self) -> Dict[str, float]:
        """First-firing days of the introduced checks (Fig. 5 markers)."""
        out = {}
        for check in ("filesystem_mounts", "ipmi_critical_interrupt"):
            if check in self.first_fire:
                out[check] = self.first_fire[check] / DAY
        return out

    # -- snapshot ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "step": self.step,
            "exposure_per_time": self.exposure_per_time,
            "start": self.start,
            "allowed_lateness": self.lateness,
            "late_events": self.late_events,
            "grid_index": self._grid_index,
            "times": list(self._times),
            "times_by_component": {
                k: list(v) for k, v in self._times_by_component.items()
            },
            "overall": list(self.overall),
            "by_component": {k: list(v) for k, v in self.by_component.items()},
            "first_fire": dict(self.first_fire),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RollingFailureRateEstimator":
        est = cls(
            window=state["window"],
            step=state["step"],
            exposure_per_time=state["exposure_per_time"],
            start=state["start"],
            allowed_lateness=state["allowed_lateness"],
        )
        est.late_events = int(state["late_events"])
        est._grid_index = int(state["grid_index"])
        est._times = [float(t) for t in state["times"]]
        est._times_by_component = {
            k: [float(t) for t in v]
            for k, v in state["times_by_component"].items()
        }
        est.overall = [float(r) for r in state["overall"]]
        est.by_component = {
            k: [float(r) for r in v] for k, v in state["by_component"].items()
        }
        est.first_fire = {k: float(v) for k, v in state["first_fire"].items()}
        return est


# ----------------------------------------------------------------------
# Online per-size MTTF + r_f (streaming Fig. 7)
# ----------------------------------------------------------------------
class OnlineMTTFEstimator:
    """Incremental Gamma-fit inputs for Fig. 7.

    Per-size-bucket ``(records, failures, runtime-hours)`` accumulate in
    arrival order — identical floating-point order to the batch rowwise
    loop, so ``buckets()`` is bit-identical to
    ``empirical_mttf_by_size``.  For r_f the exposure accumulates per
    distinct ``n_gpus`` value, so the ``n_gpus > floor`` filter can be
    applied at query time even though the auto floor (half the largest
    observed job) moves as larger jobs arrive; regrouping reassociates
    the sum, hence the documented ~1e-9 relative tolerance.  Pinning
    ``rf_min_gpus`` keeps one sequential accumulator and is exact.
    """

    def __init__(
        self,
        use_ground_truth: bool = True,
        confidence: float = 0.90,
        rf_min_gpus: Optional[int] = None,
    ):
        self.use_ground_truth = use_ground_truth
        self.confidence = float(confidence)
        self.rf_min_gpus = rf_min_gpus
        # size bucket -> [n_records, failures, runtime_hours]
        self._buckets: Dict[int, List[float]] = {}
        # exact n_gpus -> [node_days, failures] (for query-time floors)
        self._by_gpus: Dict[int, List[float]] = {}
        self._largest = 0
        # sequential accumulators for the pinned floor (exact path)
        self._pinned_node_days = 0.0
        self._pinned_failures = 0

    def _is_hw_failure(self, record: JobAttemptRecord) -> bool:
        if self.use_ground_truth:
            return record.is_hw_interruption
        if record.state is JobState.NODE_FAIL:
            return True
        return (
            record.state in (JobState.FAILED, JobState.REQUEUED)
            and record.hw_attributed
        )

    def observe_job(self, record: JobAttemptRecord) -> None:
        failed = self._is_hw_failure(record)
        bucket = self._buckets.setdefault(
            size_bucket(record.n_gpus), [0, 0, 0.0]
        )
        bucket[0] += 1
        if failed:
            bucket[1] += 1
        bucket[2] += record.runtime / HOUR
        group = self._by_gpus.setdefault(record.n_gpus, [0.0, 0])
        group[0] += record.runtime / DAY * record.n_nodes
        if failed:
            group[1] += 1
        if record.n_gpus > self._largest:
            self._largest = record.n_gpus
        if self.rf_min_gpus is not None and record.n_gpus > self.rf_min_gpus:
            self._pinned_node_days += record.runtime / DAY * record.n_nodes
            if failed:
                self._pinned_failures += 1

    # -- queries -------------------------------------------------------
    @property
    def largest_gpus(self) -> int:
        return self._largest

    @property
    def n_records(self) -> int:
        return sum(int(b[0]) for b in self._buckets.values())

    def buckets(self, min_records: int = 1) -> List[MTTFBucket]:
        """The Fig. 7 empirical buckets at the current watermark."""
        out = []
        for bucket in sorted(self._buckets):
            n, failures, hours = self._buckets[bucket]
            if n < min_records or hours <= 0:
                continue
            out.append(
                MTTFBucket(
                    gpus=bucket,
                    n_records=int(n),
                    failures=int(failures),
                    runtime_hours=hours,
                    estimate=estimate_rate(
                        int(failures), hours, confidence=self.confidence
                    ),
                )
            )
        return out

    def auto_floor(self, default: int = 128) -> int:
        """``mttf_analysis``'s floor rule: half the largest job when the
        campaign never reaches ``default`` GPUs."""
        if self._largest <= default:
            return max(8, self._largest // 2)
        return default

    def ettr_floor(self) -> int:
        """``ettr_comparison``'s floor: ``min(128, max(8, largest//2))``."""
        return min(128, max(8, self._largest // 2))

    def rf_inputs(self, min_gpus: Optional[int] = None) -> Tuple[int, float]:
        """(failures, node_days) over jobs with ``n_gpus > min_gpus``."""
        if min_gpus is None:
            min_gpus = self.rf_min_gpus
            if min_gpus is not None:
                return self._pinned_failures, self._pinned_node_days
            min_gpus = self.auto_floor()
        if min_gpus == self.rf_min_gpus:
            return self._pinned_failures, self._pinned_node_days
        node_days = 0.0
        failures = 0
        for gpus in sorted(self._by_gpus):
            if gpus <= min_gpus:
                continue
            group = self._by_gpus[gpus]
            node_days += group[0]
            failures += int(group[1])
        return failures, node_days

    def failure_rate(self, min_gpus: Optional[int] = None):
        """r_f per node-day as a ``RateEstimate``; see ``rf_inputs``."""
        failures, node_days = self.rf_inputs(min_gpus)
        if node_days <= 0:
            raise ValueError(
                "no runtime from jobs above the GPU floor yet; "
                "wait for larger jobs or lower min_gpus"
            )
        return estimate_rate(failures, node_days, confidence=self.confidence)

    # -- snapshot ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "use_ground_truth": self.use_ground_truth,
            "confidence": self.confidence,
            "rf_min_gpus": self.rf_min_gpus,
            "buckets": [
                [k, v[0], v[1], v[2]] for k, v in sorted(self._buckets.items())
            ],
            "by_gpus": [
                [k, v[0], v[1]] for k, v in sorted(self._by_gpus.items())
            ],
            "largest": self._largest,
            "pinned_node_days": self._pinned_node_days,
            "pinned_failures": self._pinned_failures,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "OnlineMTTFEstimator":
        est = cls(
            use_ground_truth=bool(state["use_ground_truth"]),
            confidence=state["confidence"],
            rf_min_gpus=state["rf_min_gpus"],
        )
        est._buckets = {
            int(k): [int(n), int(f), float(h)]
            for k, n, f, h in state["buckets"]
        }
        est._by_gpus = {
            int(k): [float(nd), int(f)] for k, nd, f in state["by_gpus"]
        }
        est._largest = int(state["largest"])
        est._pinned_node_days = float(state["pinned_node_days"])
        est._pinned_failures = int(state["pinned_failures"])
        return est


# ----------------------------------------------------------------------
# ETTR forecaster (streaming Fig. 9 / Eq. 1-2)
# ----------------------------------------------------------------------
class ETTRForecaster:
    """Re-evaluates Eq. 1/2 and the measured job-run series as jobs land.

    Accumulates a compact per-attempt tuple per job run (start, runtime,
    queue wait, gpus, qos) — enough to rebuild Fig. 9's cohort exactly:
    run ordering, attempt ordering, filters, per-run ETTR arithmetic,
    and the seeded bootstrap all replicate ``analysis.ettr_comparison``
    operation-for-operation, so the measured series is bit-identical.
    The expected series takes r_f as an input (from
    :class:`OnlineMTTFEstimator`).
    """

    def __init__(
        self,
        checkpoint_interval: float = 1 * HOUR,
        restart_overhead: float = 5 * 60.0,
        min_total_runtime: float = 24 * HOUR,
        qos: Optional[int] = None,
        min_runs_per_bucket: int = 2,
    ):
        _require(checkpoint_interval > 0, "checkpoint_interval must be > 0")
        _require(restart_overhead >= 0, "restart_overhead must be >= 0")
        self.checkpoint_interval = float(checkpoint_interval)
        self.restart_overhead = float(restart_overhead)
        self.min_total_runtime = float(min_total_runtime)
        self.qos = qos  # int value of QosTier, or None for all tiers
        self.min_runs_per_bucket = int(min_runs_per_bucket)
        # jobrun_id -> [[start, runtime, queue_wait, n_gpus, qos], ...]
        # in arrival (record) order; dict insertion order is first-arrival
        # order, the same tie-break ``group_job_runs``'s stable sort sees.
        self._runs: Dict[int, List[List[float]]] = {}

    def observe_job(self, record: JobAttemptRecord) -> None:
        self._runs.setdefault(record.jobrun_id, []).append(
            [
                record.start_time,
                record.runtime,
                record.queue_wait,
                record.n_gpus,
                int(record.qos),
            ]
        )

    # -- the Fig. 9 cohort, rebuilt exactly ----------------------------
    def _cohort_by_bucket(self) -> Dict[int, List[List[List[float]]]]:
        runs = [
            sorted(attempts, key=lambda a: a[0])
            for attempts in self._runs.values()
        ]
        runs.sort(key=lambda attempts: attempts[0][0])
        by_bucket: Dict[int, List[List[List[float]]]] = {}
        for attempts in runs:
            total_runtime = sum(a[1] for a in attempts)
            if total_runtime < self.min_total_runtime:
                continue
            if self.qos is not None and attempts[0][4] != self.qos:
                continue
            by_bucket.setdefault(size_bucket(int(attempts[0][3])), []).append(
                attempts
            )
        return by_bucket

    def _run_ettr(self, attempts: List[List[float]]) -> float:
        # core.metrics.job_run_ettr's arithmetic, term for term.
        u0 = self.restart_overhead
        cp_loss = self.checkpoint_interval / 2
        unproductive = 0.0
        for i, attempt in enumerate(attempts):
            loss = u0 if i == 0 else u0 + cp_loss
            unproductive += min(loss, attempt[1])
        productive = max(0.0, sum(a[1] for a in attempts) - unproductive)
        queue = sum(a[2] for a in attempts)
        wallclock = productive + unproductive + queue
        if wallclock <= 0:
            return 0.0
        return productive / wallclock

    def forecast(self, n_gpus: int, rf: float, queue_time: float,
                 productive_runtime: float, simple: bool = False) -> float:
        """Eq. 1 (or Eq. 2 with ``simple=True``) for one hypothetical run.

        ``rf`` is failures per node-day — a float or anything with a
        ``.rate`` attribute (e.g. ``OnlineMTTFEstimator.failure_rate()``).
        """
        rf = getattr(rf, "rate", rf)
        params = ETTRParameters(
            n_nodes=max(1, n_gpus // 8),
            failure_rate_per_node_day=rf,
            checkpoint_interval=self.checkpoint_interval,
            restart_overhead=self.restart_overhead,
            queue_time=max(1.0, queue_time),
            productive_runtime=max(HOUR, productive_runtime),
        )
        try:
            if simple:
                return expected_ettr_simple(params)
            return expected_ettr(params)
        except ValueError:
            return 0.0

    def comparison(self, rf: float) -> List[Dict[str, float]]:
        """Fig. 9's rows at the current watermark.

        Returns dicts with keys ``gpus, n_runs, measured_mean,
        measured_lo, measured_hi, expected, mean_queue_seconds``.
        """
        rows = []
        by_bucket = self._cohort_by_bucket()
        for gpus in sorted(by_bucket):
            cohort = by_bucket[gpus]
            if len(cohort) < self.min_runs_per_bucket:
                continue
            ettrs = [self._run_ettr(attempts) for attempts in cohort]
            mean, lo, hi = bootstrap_mean_ci(ettrs, confidence=0.90)
            # mean_requeue_wait: non-first attempts' queue waits (0 if none)
            queue_waits = [
                (
                    sum(a[2] for a in attempts[1:]) / (len(attempts) - 1)
                    if len(attempts) > 1
                    else 0.0
                )
                for attempts in cohort
            ]
            initial_waits = [attempts[0][2] for attempts in cohort]
            mean_q = float(np.mean(queue_waits + initial_waits))
            mean_runtime = float(
                np.mean([sum(a[1] for a in attempts) for attempts in cohort])
            )
            rows.append(
                {
                    "gpus": gpus,
                    "n_runs": len(cohort),
                    "measured_mean": mean,
                    "measured_lo": lo,
                    "measured_hi": hi,
                    "expected": self.forecast(gpus, rf, mean_q, mean_runtime),
                    "mean_queue_seconds": mean_q,
                }
            )
        return rows

    @property
    def n_runs_seen(self) -> int:
        return len(self._runs)

    # -- snapshot ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "checkpoint_interval": self.checkpoint_interval,
            "restart_overhead": self.restart_overhead,
            "min_total_runtime": self.min_total_runtime,
            "qos": self.qos,
            "min_runs_per_bucket": self.min_runs_per_bucket,
            # insertion order is load-bearing (run tie-break order), so
            # runs serialize as an ordered pair list, not a JSON object.
            "runs": [[k, v] for k, v in self._runs.items()],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ETTRForecaster":
        est = cls(
            checkpoint_interval=state["checkpoint_interval"],
            restart_overhead=state["restart_overhead"],
            min_total_runtime=state["min_total_runtime"],
            qos=state["qos"],
            min_runs_per_bucket=int(state["min_runs_per_bucket"]),
        )
        est._runs = {
            int(run_id): [
                [float(a[0]), float(a[1]), float(a[2]), int(a[3]), int(a[4])]
                for a in attempts
            ]
            for run_id, attempts in state["runs"]
        }
        return est


# ----------------------------------------------------------------------
# Live lemon scores (streaming Section IV-A)
# ----------------------------------------------------------------------
class LiveLemonEstimator:
    """Per-node lemon signals, updated as the stream flows.

    Mid-stream, three of the paper's seven signals are exactly
    reconstructible from the job stream (``single_node_node_fails``,
    ``multi_node_node_fails`` via ``failing_node_id``, and the derived
    failure rate; jobs-seen approximates the node counter because
    attempts still running at campaign end never produce records) —
    plus ticket counts from remediation events.  ``provisional_scores``
    votes over those with the paper's default thresholds.  The
    authoritative :class:`NodeTraceRecord`s arrive at end of stream;
    ``report()`` then reproduces the batch Fig. 11 cohort exactly.
    """

    #: live-signal thresholds: the subset of the paper's defaults that
    #: the stream reconstructs before node records arrive.
    LIVE_THRESHOLDS = {
        "tickets": 4,
        "multi_node_node_fails": 4,
        "single_node_node_fails": 2,
        "single_node_node_failure_rate": 0.02,
    }

    def __init__(self, min_signals: int = 2):
        self.min_signals = int(min_signals)
        # node_id -> [jobs_seen, single_fails, multi_fails, tickets]
        self._counters: Dict[int, List[int]] = {}
        self._node_rows: List[Dict[str, Any]] = []

    def _bump(self, node_id: int, slot: int) -> None:
        counters = self._counters.setdefault(node_id, [0, 0, 0, 0])
        counters[slot] += 1

    def observe_job(self, record: JobAttemptRecord) -> None:
        if record.n_nodes == 1 and record.node_ids:
            self._bump(record.node_ids[0], 0)
        if record.failing_node_id is not None:
            slot = 1 if record.n_nodes == 1 else 2
            self._bump(record.failing_node_id, slot)

    def observe_event(self, event: EventRecord) -> None:
        if event.kind == "remediation.ticket_opened":
            node_id = event.data.get("node_id")
            if node_id is not None:
                self._bump(int(node_id), 3)

    def observe_node(self, record: NodeTraceRecord) -> None:
        from dataclasses import asdict

        self._node_rows.append(asdict(record))

    # -- queries -------------------------------------------------------
    @property
    def node_records_complete(self) -> bool:
        return bool(self._node_rows)

    def live_signals(self, node_id: int) -> Dict[str, float]:
        jobs, single, multi, tickets = self._counters.get(
            node_id, [0, 0, 0, 0]
        )
        return {
            "tickets": float(tickets),
            "multi_node_node_fails": float(multi),
            "single_node_node_fails": float(single),
            "single_node_node_failure_rate": (
                single / jobs if jobs else 0.0
            ),
        }

    def provisional_scores(self) -> Dict[int, int]:
        """node_id -> live threshold votes (nodes with >= 1 vote)."""
        out = {}
        for node_id in sorted(self._counters):
            signals = self.live_signals(node_id)
            votes = sum(
                1
                for name, cut in self.LIVE_THRESHOLDS.items()
                if signals[name] >= cut
            )
            if votes:
                out[node_id] = votes
        return out

    def suspects(self) -> List[int]:
        """Nodes whose live votes already meet the policy minimum."""
        return sorted(
            node_id
            for node_id, votes in self.provisional_scores().items()
            if votes >= self.min_signals
        )

    def _node_records(self) -> List[NodeTraceRecord]:
        return [NodeTraceRecord(**row) for row in self._node_rows]

    def report(
        self,
        policy: Optional[LemonPolicy] = None,
        cdf_percentile: float = 99.0,
    ):
        """The batch ``LemonReport``, once node records have arrived."""
        records = self._node_records()
        if not records:
            raise ValueError(
                "node records have not arrived yet (they close the "
                "stream); use provisional_scores() mid-stream"
            )
        if policy is None:
            policy = LemonPolicy.from_cdf(records, percentile=cdf_percentile)
        return LemonDetector(policy).evaluate(records)

    # -- snapshot ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "min_signals": self.min_signals,
            "counters": [[k, v] for k, v in sorted(self._counters.items())],
            "node_rows": list(self._node_rows),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "LiveLemonEstimator":
        est = cls(min_signals=int(state["min_signals"]))
        est._counters = {
            int(k): [int(x) for x in v] for k, v in state["counters"]
        }
        est._node_rows = [dict(row) for row in state["node_rows"]]
        return est


# ----------------------------------------------------------------------
# Fleet availability / goodput gauges
# ----------------------------------------------------------------------
class FleetGauges:
    """Whole-fleet live gauges: capacity out, quarantine, goodput.

    Down-node tracking follows remediation tickets
    (``remediation.ticket_opened``/``ticket_closed``); drains that reach
    remediation without a ticket are invisible until their ticket opens,
    so the down set is a (tight) lower bound.  Delivered GPU-seconds sum
    ``record.gpu_seconds`` in record order — bit-identical to the
    rowwise batch total.
    """

    def __init__(self, n_nodes: int, n_gpus: int):
        _require(n_nodes > 0 and n_gpus > 0, "fleet must be non-empty")
        self.n_nodes = int(n_nodes)
        self.n_gpus = int(n_gpus)
        self.gpu_seconds = 0.0
        self.jobs_by_state: Dict[str, int] = {}
        self.hw_interruptions = 0
        self._down: List[int] = []  # sorted node ids in remediation
        self._quarantined: List[int] = []
        self.tickets_opened = 0
        self.tickets_closed = 0

    @staticmethod
    def _set_add(ids: List[int], node_id: int) -> None:
        pos = bisect_right(ids, node_id)
        if pos == 0 or ids[pos - 1] != node_id:
            ids.insert(pos, node_id)

    @staticmethod
    def _set_discard(ids: List[int], node_id: int) -> None:
        pos = bisect_right(ids, node_id)
        if pos and ids[pos - 1] == node_id:
            del ids[pos - 1]

    def observe_job(self, record: JobAttemptRecord) -> None:
        self.gpu_seconds += record.gpu_seconds
        state = record.state.value
        self.jobs_by_state[state] = self.jobs_by_state.get(state, 0) + 1
        if record.is_hw_interruption:
            self.hw_interruptions += 1

    def observe_event(self, event: EventRecord) -> None:
        kind = event.kind
        if kind == "remediation.ticket_opened":
            node_id = event.data.get("node_id")
            if node_id is not None:
                self._set_add(self._down, int(node_id))
                self.tickets_opened += 1
        elif kind == "remediation.ticket_closed":
            node_id = event.data.get("node_id")
            if node_id is not None:
                self._set_discard(self._down, int(node_id))
                self.tickets_closed += 1
        elif kind == "lemon.quarantined":
            node_id = event.data.get("node_id")
            if node_id is not None:
                self._set_add(self._quarantined, int(node_id))

    # -- queries -------------------------------------------------------
    @property
    def nodes_down(self) -> int:
        return len(self._down)

    @property
    def nodes_quarantined(self) -> int:
        return len(self._quarantined)

    def availability(self) -> float:
        """Fraction of the fleet not known to be out of capacity."""
        return 1.0 - self.nodes_down / self.n_nodes

    def utilization(self, watermark: float) -> float:
        """Delivered GPU-time over fleet capacity up to the watermark."""
        if watermark <= 0:
            return 0.0
        return self.gpu_seconds / (self.n_gpus * watermark)

    # -- snapshot ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "n_nodes": self.n_nodes,
            "n_gpus": self.n_gpus,
            "gpu_seconds": self.gpu_seconds,
            "jobs_by_state": dict(self.jobs_by_state),
            "hw_interruptions": self.hw_interruptions,
            "down": list(self._down),
            "quarantined": list(self._quarantined),
            "tickets_opened": self.tickets_opened,
            "tickets_closed": self.tickets_closed,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "FleetGauges":
        est = cls(n_nodes=int(state["n_nodes"]), n_gpus=int(state["n_gpus"]))
        est.gpu_seconds = float(state["gpu_seconds"])
        est.jobs_by_state = {
            k: int(v) for k, v in state["jobs_by_state"].items()
        }
        est.hw_interruptions = int(state["hw_interruptions"])
        est._down = [int(x) for x in state["down"]]
        est._quarantined = [int(x) for x in state["quarantined"]]
        est.tickets_opened = int(state["tickets_opened"])
        est.tickets_closed = int(state["tickets_closed"])
        return est
