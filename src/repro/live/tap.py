"""Tap a running campaign into the live bus.

The tap attaches to a :class:`~repro.campaign.Campaign`'s two production
hooks — the scheduler's ``on_record`` (fires as each accounting row is
appended) and the event log's ``listener`` (fires on every emitted
event) — publishes each fact onto the bus, and flushes whenever the
queue reaches the batch size, so the bounded bus never overflows while
the simulation runs.  After the run it feeds the end-of-campaign node
records and closes the stream.

Because both hooks fire at the exact code points the trace lists are
built from, the tapped stream carries the same items, in the same
per-channel order, as a later replay of the finished trace — the
estimator-state-equivalence test in ``tests/live/test_tap.py`` holds
the two ingestion modes to bit-identical final snapshots.
"""

from typing import Callable, Optional, Tuple

from repro.campaign import Campaign, CampaignConfig
from repro.live.analytics import LiveAnalytics, LiveConfig
from repro.live.bus import CHANNEL_EVENT, CHANNEL_JOB, CHANNEL_NODE, EventBus
from repro.sim.timeunits import DAY
from repro.workload.trace import Trace


class CampaignTap:
    """Wires one campaign's hooks to one bus and one analytics session."""

    def __init__(
        self,
        campaign: Campaign,
        analytics: LiveAnalytics,
        bus: Optional[EventBus] = None,
        batch_size: int = 4096,
        on_batch: Optional[Callable[[], None]] = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.campaign = campaign
        self.analytics = analytics
        self.bus = bus if bus is not None else EventBus(
            capacity=max(batch_size, 2)
        )
        self.batch_size = batch_size
        self.on_batch = on_batch
        self.bus.subscribe(analytics.ingest)
        self._attached = False

    # ------------------------------------------------------------------
    # hook plumbing
    # ------------------------------------------------------------------
    def attach(self) -> "CampaignTap":
        if self._attached:
            return self
        if self.campaign.scheduler.on_record is not None:
            raise RuntimeError("scheduler.on_record is already taken")
        if self.campaign.event_log.listener is not None:
            raise RuntimeError("event_log.listener is already taken")
        self.campaign.scheduler.on_record = self._on_record
        self.campaign.event_log.listener = self._on_event
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self.campaign.scheduler.on_record = None
        self.campaign.event_log.listener = None
        self._attached = False

    def _on_record(self, record) -> None:
        self.bus.publish(record.end_time, CHANNEL_JOB, record)
        self._maybe_flush()

    def _on_event(self, event) -> None:
        self.bus.publish(event.time, CHANNEL_EVENT, event)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self.bus.depth >= self.batch_size:
            self.bus.flush()
            if self.on_batch is not None:
                self.on_batch()

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Run the campaign with the tap attached; close the stream."""
        self.attach()
        try:
            trace = self.campaign.run()
        finally:
            self.detach()
        for node in trace.node_records:
            self.bus.publish(trace.end, CHANNEL_NODE, node)
            self._maybe_flush()
        self.bus.flush()
        if self.on_batch is not None:
            self.on_batch()
        self.analytics.finish(trace.end)
        return trace


def live_campaign(
    config: CampaignConfig,
    telemetry=None,
    batch_size: int = 4096,
    on_batch: Optional[Callable[[], None]] = None,
    **analytics_overrides,
) -> Tuple[Trace, LiveAnalytics, EventBus]:
    """Run a fresh campaign with live analytics attached.

    Returns ``(trace, analytics, bus)``; ``analytics_overrides`` forward
    to :class:`LiveConfig` (``window_days``, ``rf_min_gpus``, ...).
    """
    spec = config.cluster_spec
    live_config = LiveConfig(
        cluster_name=spec.name,
        n_nodes=spec.n_nodes,
        n_gpus=spec.n_gpus,
        span_seconds=config.duration_days * DAY,
        **analytics_overrides,
    )
    analytics = LiveAnalytics(live_config, telemetry=telemetry)
    campaign = Campaign(config, telemetry=telemetry)
    tap = CampaignTap(
        campaign,
        analytics,
        batch_size=batch_size,
        on_batch=on_batch,
    )
    trace = tap.run()
    return trace, analytics, tap.bus
