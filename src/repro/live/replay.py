"""Deterministic replay: turn a finished trace into the live stream.

``iter_trace_stream`` yields the exact item sequence a live tap would
have published: job rows at their ``end_time``, events at their time,
node records at end of stream.  Both job and event lists are
time-ordered by construction (the scheduler closes attempts and emits
events at the engine's current time, and the engine executes in
non-decreasing time), so the merge is a two-pointer walk that preserves
each channel's internal order — which is what makes the online
estimators' floating-point accumulations bit-identical to the batch
analyses' record-order loops.

Tie-break at equal timestamps: job items before event items, mirroring
the live production order (``_finish_attempt`` appends the accounting
record before emitting ``sched.job_end``).  Node items always come last.

The stream is *production*-ordered, not globally timestamp-ordered:
``cluster.incident`` events are backdated (they carry the incident's
occurrence time but were appended at detection time, minutes later), so
an event item's time may dip below the preceding item's.  The merge
still reproduces the live tap's order exactly, because every backdated
event sits directly behind its detecting health event in the event
list — which carries the detection time and therefore gates the merge
at the same point the live scheduler produced both.  Estimators handle
the backdating via the rolling estimator's allowed-lateness window.

Accepts either a row :class:`~repro.workload.trace.Trace` or a
:class:`~repro.core.columns.ColumnarTrace`; the two yield identical
sequences (columnar round trips are exact), which
``tests/live/test_replay_order.py`` enforces.
"""

from typing import Callable, Iterator, Optional, Union

from repro.core.columns import ColumnarTrace
from repro.live.bus import (
    CHANNEL_EVENT,
    CHANNEL_JOB,
    CHANNEL_NODE,
    EventBus,
)
from repro.workload.trace import Trace

TraceLike = Union[Trace, ColumnarTrace]


def _as_trace(source: TraceLike) -> Trace:
    if isinstance(source, Trace):
        return source
    if isinstance(source, ColumnarTrace):
        return source.to_trace()
    raise TypeError(
        f"expected Trace or ColumnarTrace, got {type(source).__name__}"
    )


def iter_trace_stream(source: TraceLike):
    """Yield ``(time, channel, payload)`` triples in stream order.

    Sequence numbers are assigned by whichever bus the triples are
    published to; the triple order itself is the contract.
    """
    trace = _as_trace(source)
    jobs = trace.job_records
    events = trace.events
    i = j = 0
    n_jobs, n_events = len(jobs), len(events)
    while i < n_jobs and j < n_events:
        # Equal timestamps: the job row precedes its own (and any other)
        # event — the live scheduler appends the record first.
        if jobs[i].end_time <= events[j].time:
            yield jobs[i].end_time, CHANNEL_JOB, jobs[i]
            i += 1
        else:
            yield events[j].time, CHANNEL_EVENT, events[j]
            j += 1
    while i < n_jobs:
        yield jobs[i].end_time, CHANNEL_JOB, jobs[i]
        i += 1
    while j < n_events:
        yield events[j].time, CHANNEL_EVENT, events[j]
        j += 1
    # Node counters are end-of-campaign snapshots; they close the stream.
    for node in trace.node_records:
        yield trace.end, CHANNEL_NODE, node


def replay_trace(
    source: TraceLike,
    analytics,
    bus: Optional[EventBus] = None,
    batch_size: int = 4096,
    on_batch: Optional[Callable[[], None]] = None,
) -> EventBus:
    """Push a trace through a bus into a :class:`LiveAnalytics`.

    Items are published in stream order and flushed every ``batch_size``
    publishes (and at the end), so the bounded bus never overflows.
    ``on_batch`` runs after each flush — the CLI uses it for periodic
    reports.  If ``analytics`` has already ingested part of this stream
    (a restored snapshot), the already-seen prefix of each channel is
    skipped, which resumes the replay exactly where the snapshot left
    off.  Returns the bus (with its traffic stats).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if bus is None:
        bus = EventBus(capacity=max(batch_size, 2))
    bus.subscribe(analytics.ingest)
    skip = dict(analytics.counts)  # per-channel items already ingested
    trace = _as_trace(source)
    for time, channel, payload in iter_trace_stream(trace):
        if skip.get(channel, 0) > 0:
            skip[channel] -= 1
            continue
        bus.publish(time, channel, payload)
        if bus.depth >= batch_size:
            bus.flush()
            if on_batch is not None:
                on_batch()
    bus.flush()
    if on_batch is not None:
        on_batch()
    analytics.finish(trace.end)
    return bus
