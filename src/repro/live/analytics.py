"""`LiveAnalytics`: the estimator bundle behind one live session.

One instance subscribes to a bus (its ``ingest`` method is the
consumer), routes each stream item to every estimator, tracks the
watermark, and serves snapshots, reports, and telemetry.  Snapshots are
plain JSON documents; ``LiveAnalytics.from_snapshot`` restores an
instance whose continued ingestion is bit-identical to one that never
stopped (test-enforced; Python's JSON round-trips finite floats
exactly).
"""

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.analysis.report import render_table
from repro.analysis.rolling_failures import FailureRateTimeline
from repro.live.bus import CHANNEL_EVENT, CHANNEL_JOB, CHANNEL_NODE, StreamItem
from repro.live.estimators import (
    ETTRForecaster,
    FleetGauges,
    LiveLemonEstimator,
    OnlineMTTFEstimator,
    RollingFailureRateEstimator,
)
from repro.obs.health import FleetHealthScorer, HealthReport, HealthSignals
from repro.sim.timeunits import DAY, HOUR

#: Bump when the snapshot document shape changes; restore rejects
#: mismatches rather than guessing.
LIVE_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class LiveConfig:
    """Static facts a live session needs up front.

    ``span_seconds`` and fleet sizes are known before the first item in
    both modes (a campaign config declares them; a trace header carries
    them); the rolling window defaults to the batch Fig. 5 rule
    (30 days scaled by span/330).
    """

    cluster_name: str
    n_nodes: int
    n_gpus: int
    span_seconds: float
    window_days: Optional[float] = None
    step_days: float = 1.0
    rf_min_gpus: Optional[int] = None
    use_ground_truth: bool = True
    ettr_min_total_runtime: float = 24 * HOUR
    #: Fig. 9 cohort priority filter; defaults to QosTier.HIGH (3) to
    #: match ``analysis.ettr_comparison``.  ``None`` admits every tier.
    ettr_qos: Optional[int] = 3
    ettr_min_runs_per_bucket: int = 2

    def resolved_window_days(self) -> float:
        if self.window_days is not None:
            return self.window_days
        span_days = self.span_seconds / DAY
        return max(1.0, span_days * (30.0 / 330.0))

    @classmethod
    def for_trace(cls, trace, **overrides) -> "LiveConfig":
        return cls(
            cluster_name=trace.cluster_name,
            n_nodes=trace.n_nodes,
            n_gpus=trace.n_gpus,
            span_seconds=trace.span_seconds,
            **overrides,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cluster_name": self.cluster_name,
            "n_nodes": self.n_nodes,
            "n_gpus": self.n_gpus,
            "span_seconds": self.span_seconds,
            "window_days": self.window_days,
            "step_days": self.step_days,
            "rf_min_gpus": self.rf_min_gpus,
            "use_ground_truth": self.use_ground_truth,
            "ettr_min_total_runtime": self.ettr_min_total_runtime,
            "ettr_qos": self.ettr_qos,
            "ettr_min_runs_per_bucket": self.ettr_min_runs_per_bucket,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LiveConfig":
        return cls(**payload)


class LiveAnalytics:
    """All online estimators behind one ingest point."""

    def __init__(
        self,
        config: LiveConfig,
        telemetry=None,
        strict: bool = True,
        options: Optional["RunOptions"] = None,
    ):
        if telemetry is None and options is not None:
            telemetry = options.telemetry
        self.config = config
        self.telemetry = telemetry
        #: ``strict=True`` (default) raises on malformed stream items —
        #: in-process taps are bug-free by construction, so corruption
        #: there is a programming error.  ``strict=False`` is the
        #: posture for untrusted transports (and chaos injection): a
        #: malformed or unroutable item is counted and dropped, never
        #: allowed to poison estimator state.
        self.strict = strict
        self.malformed = 0
        self.watermark = 0.0
        self.finished = False
        self.counts: Dict[str, int] = {
            CHANNEL_JOB: 0,
            CHANNEL_EVENT: 0,
            CHANNEL_NODE: 0,
        }
        self.rolling = RollingFailureRateEstimator(
            window=config.resolved_window_days() * DAY,
            step=config.step_days * DAY,
            exposure_per_time=config.n_nodes / DAY / 1000.0,
        )
        self.mttf = OnlineMTTFEstimator(
            use_ground_truth=config.use_ground_truth,
            rf_min_gpus=config.rf_min_gpus,
        )
        self.ettr = ETTRForecaster(
            min_total_runtime=config.ettr_min_total_runtime,
            qos=config.ettr_qos,
            min_runs_per_bucket=config.ettr_min_runs_per_bucket,
        )
        self.lemons = LiveLemonEstimator()
        self.fleet = FleetGauges(n_nodes=config.n_nodes, n_gpus=config.n_gpus)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _reject(self, item, why: str) -> None:
        if self.strict:
            raise ValueError(why)
        self.malformed += 1
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.metrics.counter("live_malformed_total").inc()

    def ingest(self, item: StreamItem) -> None:
        """Consume one stream item (the bus subscriber).

        In strict mode (default) a malformed item raises ``ValueError``;
        otherwise it is counted in ``self.malformed`` and dropped before
        it can touch any estimator or the watermark.
        """
        channel = getattr(item, "channel", None)
        if channel not in self.counts:
            self._reject(item, f"unknown stream channel {channel!r}")
            return
        payload = item.payload
        time = item.time
        if payload is None or not isinstance(time, (int, float)):
            self._reject(
                item, f"malformed stream item on channel {channel!r}"
            )
            return
        self.counts[channel] += 1
        if time > self.watermark:
            self.watermark = time
            self.rolling.advance(self.watermark)
        if channel == CHANNEL_JOB:
            record = payload
            self.mttf.observe_job(record)
            self.ettr.observe_job(record)
            self.lemons.observe_job(record)
            self.fleet.observe_job(record)
        elif channel == CHANNEL_EVENT:
            event = payload
            self.rolling.observe_event(event)
            self.lemons.observe_event(event)
            self.fleet.observe_event(event)
        else:
            self.lemons.observe_node(payload)
        self._publish_metrics(channel)

    def finish(self, end: Optional[float] = None) -> None:
        """Close the stream: flush the rolling grid to the span end."""
        if end is None:
            end = self.config.span_seconds
        self.watermark = max(self.watermark, float(end))
        self.rolling.finish(float(end))
        self.finished = True
        self._publish_metrics(None)

    # ------------------------------------------------------------------
    # telemetry (obs.metrics)
    # ------------------------------------------------------------------
    def _publish_metrics(self, channel: Optional[str]) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        metrics = telemetry.metrics
        if channel is not None:
            metrics.counter("live_items_total", channel=channel).inc()
        metrics.gauge("live_watermark_days").set(self.watermark / DAY)
        metrics.gauge("live_nodes_down").set(self.fleet.nodes_down)
        metrics.gauge("live_nodes_quarantined").set(
            self.fleet.nodes_quarantined
        )
        metrics.gauge("live_utilization").set(
            self.fleet.utilization(self.watermark)
        )
        metrics.gauge("live_incident_rate_per_1k_node_days").set(
            self.rolling.current_rate()
        )
        if channel is None:
            # Published at finish() only: scoring walks every estimator,
            # which is too heavy for the per-item path.
            metrics.gauge("live_health_score").set(self.health().score)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe checkpoint of the full session state."""
        return {
            "schema": LIVE_SNAPSHOT_VERSION,
            "config": self.config.to_dict(),
            "watermark": self.watermark,
            "finished": self.finished,
            "counts": dict(self.counts),
            # Additive since v1 (absent in old snapshots => 0); the
            # schema version only bumps on incompatible changes.
            "malformed": self.malformed,
            "estimators": {
                "rolling": self.rolling.state_dict(),
                "mttf": self.mttf.state_dict(),
                "ettr": self.ettr.state_dict(),
                "lemons": self.lemons.state_dict(),
                "fleet": self.fleet.state_dict(),
            },
        }

    @classmethod
    def from_snapshot(
        cls, payload: Dict[str, Any], telemetry=None
    ) -> "LiveAnalytics":
        schema = payload.get("schema")
        if schema != LIVE_SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot schema {schema!r} does not match "
                f"LIVE_SNAPSHOT_VERSION={LIVE_SNAPSHOT_VERSION}"
            )
        analytics = cls(
            LiveConfig.from_dict(payload["config"]), telemetry=telemetry
        )
        analytics.watermark = float(payload["watermark"])
        analytics.finished = bool(payload["finished"])
        analytics.counts = {k: int(v) for k, v in payload["counts"].items()}
        analytics.malformed = int(payload.get("malformed", 0))
        est = payload["estimators"]
        analytics.rolling = RollingFailureRateEstimator.from_state(
            est["rolling"]
        )
        analytics.mttf = OnlineMTTFEstimator.from_state(est["mttf"])
        analytics.ettr = ETTRForecaster.from_state(est["ettr"])
        analytics.lemons = LiveLemonEstimator.from_state(est["lemons"])
        analytics.fleet = FleetGauges.from_state(est["fleet"])
        return analytics

    def save_snapshot(self, path: Union[str, Path]) -> Path:
        """Write the snapshot atomically (tmp + rename).

        A reader — or a process killed mid-write — can only ever observe
        the previous complete document or the new complete document,
        never a torn prefix.  This is the property the serve layer's
        shutdown path relies on.
        """
        import os
        import tempfile

        path = Path(path)
        payload = json.dumps(self.snapshot()) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load_snapshot(
        cls, path: Union[str, Path], telemetry=None
    ) -> "LiveAnalytics":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_snapshot(payload, telemetry=telemetry)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def timeline(self) -> FailureRateTimeline:
        """The streaming Fig. 5 object (batch-compatible type)."""
        return FailureRateTimeline(
            cluster_name=self.config.cluster_name,
            times_days=self.rolling.times_days(),
            overall=self.rolling.overall_series(),
            by_component=self.rolling.component_series(),
            check_introductions=self.rolling.check_introductions(),
            window_days=self.rolling.window_days,
        )

    def health(
        self,
        scorer: Optional[FleetHealthScorer] = None,
        stale_after_days: Optional[float] = None,
    ) -> HealthReport:
        """Score the fleet's current health (PVC ``getClusterHealth``).

        Folds every live estimator into a :class:`HealthSignals` bundle
        and runs it through a :class:`FleetHealthScorer` (pass one to
        customize the delta map).  ``stale_after_days`` additionally
        penalizes a watermark that stopped short of the configured span.
        """
        if scorer is None:
            scorer = FleetHealthScorer()
        return scorer.score(
            HealthSignals.from_analytics(
                self, stale_after_days=stale_after_days
            )
        )

    def report(self) -> "LiveReport":
        return LiveReport(self)


class LiveReport:
    """Point-in-time rendering of a live session's estimator state."""

    def __init__(self, analytics: LiveAnalytics):
        self.analytics = analytics

    def rows(self):
        a = self.analytics
        day = a.watermark / DAY
        rows = [
            ("watermark", f"day {day:.2f}"),
            (
                "items ingested",
                f"{a.counts['job']} jobs, {a.counts['event']} events, "
                f"{a.counts['node']} nodes",
            ),
            (
                "incident rate",
                f"{a.rolling.current_rate():.2f} /1k node-days "
                f"({a.rolling.window_days:.1f}d window)",
            ),
            ("availability", f"{a.fleet.availability():.1%}"),
            ("utilization", f"{a.fleet.utilization(a.watermark):.1%}"),
            ("hw interruptions", str(a.fleet.hw_interruptions)),
        ]
        try:
            rf = a.mttf.failure_rate()
            rows.append(
                (
                    "r_f",
                    f"{rf.rate * 1000:.2f} /1k node-days "
                    f"(>{a.mttf.rf_min_gpus if a.mttf.rf_min_gpus is not None else a.mttf.auto_floor()} GPUs)",
                )
            )
        except ValueError:
            rows.append(("r_f", "n/a (no large-job runtime yet)"))
        buckets = a.mttf.buckets()
        if buckets:
            largest = buckets[-1]
            rows.append(
                (
                    f"MTTF @ {largest.gpus} GPUs",
                    f"{largest.mttf_hours:.1f} h "
                    f"({largest.failures} failures / "
                    f"{largest.runtime_hours:.0f} h)",
                )
            )
        suspects = a.lemons.suspects()
        rows.append(
            (
                "lemon suspects",
                ", ".join(str(n) for n in suspects) if suspects else "none",
            )
        )
        health = a.health()
        rows.append(
            (
                "fleet health",
                f"{health.score:.0f}/100"
                + ("" if health.healthy else f" ({len(health.messages)} conditions)"),
            )
        )
        return rows

    def render(self) -> str:
        a = self.analytics
        return render_table(
            ["signal", "value"],
            self.rows(),
            title=(
                f"live reliability state ({a.config.cluster_name}, "
                f"day {a.watermark / DAY:.1f})"
            ),
        )
