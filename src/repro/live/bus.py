"""The live event bus: bounded, backpressure-safe fan-out of stream items.

The bus is the seam between producers (a running campaign's tap, or a
trace replay) and consumers (the online estimators).  It is deliberately
small and deterministic:

* **Bounded.**  ``capacity`` caps the number of undelivered items.  A
  producer that outruns its consumers either fails fast
  (``on_overflow="error"``, the default — backpressure surfaces as an
  exception at the publish site instead of unbounded memory growth) or
  sheds the oldest items (``on_overflow="drop_oldest"``, counted in
  :attr:`BusStats.dropped` so loss is observable, never silent).
* **FIFO.**  ``flush()`` delivers in publish order; subscribers are
  invoked in subscription order.  Delivery order is therefore a pure
  function of publish order, which is what makes live-tap and replay
  ingestion produce identical estimator states.
* **Synchronous.**  There are no threads; ``flush()`` runs in the caller.
  "Backpressure" means the producer decides when to flush (the tap
  flushes whenever ``depth`` reaches its batch size).

Stream items carry one of three payload channels:

* ``"job"``  — a :class:`~repro.jobtypes.JobAttemptRecord`, timestamped
  at its ``end_time`` (the moment the accounting row exists);
* ``"event"`` — an :class:`~repro.sim.events.EventRecord` at its time;
* ``"node"`` — a :class:`~repro.workload.trace.NodeTraceRecord`,
  delivered at end of stream (node counters are end-of-campaign facts).

Within one timestamp, job items precede event items — the same order a
live scheduler produces them (``_finish_attempt`` appends the accounting
row before emitting ``sched.job_end``) — and node items come last.  See
``docs/STREAMING.md`` for the full ordering contract.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional

#: Channel names, in deterministic tie-break order (see module docstring).
CHANNEL_JOB = "job"
CHANNEL_EVENT = "event"
CHANNEL_NODE = "node"
CHANNELS = (CHANNEL_JOB, CHANNEL_EVENT, CHANNEL_NODE)

#: channel -> rank used to break same-timestamp ties during replay.
CHANNEL_RANK = {name: rank for rank, name in enumerate(CHANNELS)}


@dataclass(frozen=True, slots=True)
class StreamItem:
    """One element of the live stream.

    Attributes:
        time: Simulation time in seconds (``end_time`` for job items).
        channel: ``"job"``, ``"event"``, or ``"node"``.
        seq: Global publish sequence number, assigned by the bus.
        payload: The underlying record object.
    """

    time: float
    channel: str
    seq: int
    payload: Any


class BusOverflow(RuntimeError):
    """Raised by ``publish`` when the bus is full and policy is "error"."""


@dataclass
class BusStats:
    """Counters describing one bus's lifetime traffic."""

    published: int = 0
    delivered: int = 0
    dropped: int = 0
    flushes: int = 0
    max_depth: int = 0

    def as_dict(self) -> dict:
        return {
            "published": self.published,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "flushes": self.flushes,
            "max_depth": self.max_depth,
        }


class EventBus:
    """Bounded FIFO fan-out bus for :class:`StreamItem`s."""

    def __init__(self, capacity: int = 65536, on_overflow: str = "error"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if on_overflow not in ("error", "drop_oldest"):
            raise ValueError(
                f"on_overflow must be 'error' or 'drop_oldest', "
                f"got {on_overflow!r}"
            )
        self.capacity = capacity
        self.on_overflow = on_overflow
        self.stats = BusStats()
        self._queue: Deque[StreamItem] = deque()
        self._subscribers: List[Callable[[StreamItem], None]] = []
        self._seq = 0
        self._watermark = float("-inf")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def subscribe(self, consumer: Callable[[StreamItem], None]) -> None:
        """Register a consumer; called once per item, in publish order."""
        self._subscribers.append(consumer)

    # ------------------------------------------------------------------
    # producing
    # ------------------------------------------------------------------
    def publish(self, time: float, channel: str, payload: Any) -> StreamItem:
        """Enqueue one item; returns it (with its sequence number)."""
        if channel not in CHANNEL_RANK:
            raise ValueError(f"unknown channel {channel!r}")
        if len(self._queue) >= self.capacity:
            if self.on_overflow == "error":
                raise BusOverflow(
                    f"bus full ({self.capacity} undelivered items); "
                    "flush more often or raise capacity"
                )
            self._queue.popleft()
            self.stats.dropped += 1
        item = StreamItem(
            time=time, channel=channel, seq=self._seq, payload=payload
        )
        self._seq += 1
        self._queue.append(item)
        self.stats.published += 1
        if len(self._queue) > self.stats.max_depth:
            self.stats.max_depth = len(self._queue)
        return item

    # ------------------------------------------------------------------
    # consuming
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Undelivered items currently queued."""
        return len(self._queue)

    @property
    def watermark(self) -> float:
        """Highest item time delivered so far (-inf before any delivery)."""
        return self._watermark

    def flush(self, max_items: Optional[int] = None) -> int:
        """Deliver queued items to every subscriber; returns the count."""
        delivered = 0
        while self._queue and (max_items is None or delivered < max_items):
            item = self._queue.popleft()
            for consumer in self._subscribers:
                consumer(item)
            if item.time > self._watermark:
                self._watermark = item.time
            delivered += 1
        self.stats.delivered += delivered
        if delivered:
            self.stats.flushes += 1
        return delivered
