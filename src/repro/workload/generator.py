"""The workload generator: profile + arrivals -> a stream of JobSpecs.

Arrival rate is *calibrated to a utilization target*: given the profile's
mean GPU-seconds per job and the cluster's GPU count, the generator derives
the submission rate that loads the cluster to the requested fraction
(the paper's clusters run at 83-85%).  This keeps the same profile usable
across cluster scales — the benchmark clusters are scaled-down replicas.
"""

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.cluster.components import GPUS_PER_NODE
from repro.sim.rng import RngStreams
from repro.sim.timeunits import DAY, HOUR
from repro.workload.arrivals import ArrivalProcess
from repro.workload.profiles import WorkloadProfile
from repro.workload.spec import IntendedOutcome, JobSpec, MAX_JOB_LIFETIME


class WorkloadGenerator:
    """Generates submission-ordered :class:`JobSpec` streams.

    Large high-priority jobs occasionally represent *long training runs*
    whose total work exceeds the 7-day job lifetime: they are emitted as a
    chain of segments sharing one ``jobrun_id``.  The first segment enters
    the arrival stream; each later segment is held in
    :attr:`continuations` and is meant to be submitted when its
    predecessor completes (the campaign runner wires this through the
    scheduler's completion callback).  This realizes the paper's "a
    multi-week LLM pretraining run may consist of multiple different
    jobs" — the unit Fig. 9 measures ETTR over.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        rngs: RngStreams,
        cluster_gpus: int,
        target_utilization: float = 1.0,
        diurnal_amplitude: float = 0.3,
        max_job_fraction_of_cluster: float = 0.5,
        first_job_id: int = 1,
        long_run_probability: float = 0.25,
        long_run_min_gpus: int = 128,
    ):
        if cluster_gpus < GPUS_PER_NODE:
            raise ValueError("cluster must have at least one server of GPUs")
        if not 0 < target_utilization <= 1.5:
            # Values above 1 deliberately over-offer load so the queue stays
            # fed despite sampling lulls (the paper's clusters are "fully
            # loaded" with persistent queues).
            raise ValueError("target_utilization must be in (0, 1.5]")
        if not 0 < max_job_fraction_of_cluster <= 1:
            raise ValueError("max_job_fraction_of_cluster must be in (0, 1]")
        max_size = max(
            GPUS_PER_NODE, int(cluster_gpus * max_job_fraction_of_cluster)
        )
        self.profile = profile.restricted_to_max_size(max_size)
        self.cluster_gpus = cluster_gpus
        self.target_utilization = target_utilization
        if not 0 <= long_run_probability <= 1:
            raise ValueError("long_run_probability must be in [0, 1]")
        self.long_run_probability = long_run_probability
        self.long_run_min_gpus = long_run_min_gpus
        self._calibration_rng = rngs.stream(f"workload.calibration.{profile.name}")
        rate = self._calibrated_rate_per_day()
        self.arrivals = ArrivalProcess(
            rate_per_day=rate, diurnal_amplitude=diurnal_amplitude
        )
        self._rng = rngs.stream(f"workload.{profile.name}")
        self._job_ids = itertools.count(first_job_id)
        #: predecessor job_id -> the next segment of its training run
        self.continuations: dict = {}

    def _calibrated_rate_per_day(self, n_samples: int = 20_000) -> float:
        """Jobs/day such that offered load = target_utilization * capacity.

        Calibrated by Monte Carlo over the profile's *effective* work (the
        runtime until the job's own intent resolves it), because duration
        truncation at the 7-day cap and early user failures/cancellations
        push realized load well below the untruncated analytic mean.
        """
        rng = self._calibration_rng
        total = 0.0
        for _ in range(n_samples):
            size = self.profile.sample_size(rng)
            work = self.profile.sample_work_seconds(size, rng)
            outcome = self.profile.sample_outcome(rng)
            effective = work
            if outcome in (
                IntendedOutcome.FAILED_USER,
                IntendedOutcome.CANCELLED,
            ):
                effective = work * float(rng.uniform(0.05, 1.0))
            elif outcome is IntendedOutcome.OOM:
                effective = work * float(rng.uniform(0.01, 0.3))
            elif outcome is IntendedOutcome.TIMEOUT:
                effective = work * float(rng.uniform(0.4, 0.9))
            total += size * effective
            # Long-run continuations add segments beyond the arrival
            # stream; fold their expected load into the calibration.  Only
            # about half of that load is realized within a finite campaign
            # (chains started late are cut off by the horizon), hence the
            # discount.
            if (
                outcome is IntendedOutcome.COMPLETED
                and size >= self.long_run_min_gpus
                and rng.random() < self.long_run_probability
            ):
                for _segment in range(int(rng.integers(1, 4))):
                    total += 0.6 * size * self.profile.sample_work_seconds(size, rng)
        mean_gpu_seconds = total / n_samples
        capacity_gpu_seconds_per_day = self.cluster_gpus * DAY
        return (
            self.target_utilization * capacity_gpu_seconds_per_day / mean_gpu_seconds
        )

    @property
    def jobs_per_day(self) -> float:
        return self.arrivals.rate_per_day

    def generate(self, start: float, end: float) -> List[JobSpec]:
        """All job specs submitted in ``[start, end)``, in time order."""
        times = self.arrivals.sample_times(start, end, self._rng)
        return [self._make_spec(t) for t in times]

    def _make_spec(self, submit_time: float) -> JobSpec:
        rng = self._rng
        job_id = next(self._job_ids)
        size = self.profile.sample_size(rng)
        work = self.profile.sample_work_seconds(size, rng)
        qos = self.profile.sample_qos(size, rng)
        outcome = self.profile.sample_outcome(rng)
        outcome_fraction = 1.0
        time_limit = MAX_JOB_LIFETIME
        if outcome in (
            IntendedOutcome.FAILED_USER,
            IntendedOutcome.CANCELLED,
            IntendedOutcome.OOM,
        ):
            # User-level events strike partway through the intended run;
            # OOMs skew early (they usually hit in warmup/data loading).
            outcome_fraction = (
                float(rng.uniform(0.01, 0.3))
                if outcome is IntendedOutcome.OOM
                else float(rng.uniform(0.05, 1.0))
            )
        elif outcome is IntendedOutcome.TIMEOUT:
            # The user under-provisioned the limit relative to the work;
            # the limit stays strictly below the work so the timeout fires.
            time_limit = max(60.0, work * float(rng.uniform(0.4, 0.9)))
            time_limit = min(time_limit, work * 0.95)
        spec = JobSpec(
            job_id=job_id,
            jobrun_id=job_id,
            project=self.profile.sample_project(rng),
            n_gpus=size,
            qos=qos,
            submit_time=submit_time,
            work_seconds=work,
            time_limit=time_limit,
            intended_outcome=outcome,
            outcome_fraction=outcome_fraction,
        )
        if (
            outcome is IntendedOutcome.COMPLETED
            and size >= self.long_run_min_gpus
            and rng.random() < self.long_run_probability
        ):
            self._extend_to_long_run(spec, rng)
        return spec

    def _extend_to_long_run(self, first: JobSpec, rng) -> None:
        """Chain 1-3 follow-on segments onto ``first`` (same jobrun_id)."""
        n_extra = int(rng.integers(1, 4))
        predecessor = first
        for _ in range(n_extra):
            job_id = next(self._job_ids)
            segment = JobSpec(
                job_id=job_id,
                jobrun_id=first.jobrun_id,
                project=first.project,
                n_gpus=first.n_gpus,
                qos=first.qos,
                # Placeholder; the continuation is submitted at the
                # predecessor's completion time by the campaign runner.
                submit_time=first.submit_time,
                work_seconds=self.profile.sample_work_seconds(
                    first.n_gpus, rng
                ),
                intended_outcome=IntendedOutcome.COMPLETED,
            )
            self.continuations[predecessor.job_id] = segment
            predecessor = segment
