"""Workload profiles: the calibrated stand-ins for RSC-1 and RSC-2 logs.

Each profile declares the marginal distributions the paper publishes:

* **Size mixture** (Fig. 6): >40% 1-GPU jobs; RSC-1 leans 8-GPU and hosts
  the largest jobs (to 4096 GPUs, <1% of jobs, ~12% of GPU time); RSC-2
  leans 1-GPU and tops out around 1k GPUs.  Over 90% of jobs are at most
  one server but draw <10% of GPU time; 256+ GPU jobs draw ~66% (RSC-1) /
  ~52% (RSC-2).
* **Durations** by size: log-normal, larger jobs run longer, truncated at
  6.5 days (the 7-day lifetime cap forces anything longer to be submitted
  as a chain of jobs).
* **Intended outcomes** (Fig. 3): most jobs complete; ~a quarter fail from
  user bugs; cancellations, OOMs, and timeouts are the small remainder.
  PREEMPTED / REQUEUED / NODE_FAIL are *not* sampled — they emerge from
  scheduler and failure dynamics.
* **QoS**: large jobs run high priority (the paper: "large jobs tend to be
  higher priority and small jobs are the lowest priority").
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.stats.distributions import MixtureSpec, sample_lognormal
from repro.workload.spec import IntendedOutcome, QosTier
from repro.sim.timeunits import HOUR, DAY

#: Hard cap on sampled work; keeps every job under the 7-day lifetime.
MAX_WORK_SECONDS = 6.5 * DAY


@dataclass(frozen=True)
class SizeDurationSpec:
    """Log-normal duration parameters for one job-size class."""

    median_hours: float
    sigma: float

    def __post_init__(self):
        if self.median_hours <= 0:
            raise ValueError("median_hours must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def mean_hours(self) -> float:
        """Untruncated log-normal mean (used for arrival-rate calibration)."""
        return self.median_hours * float(np.exp(self.sigma**2 / 2))


@dataclass(frozen=True)
class WorkloadProfile:
    """Declarative generator parameters for one cluster's workload."""

    name: str
    size_mixture: MixtureSpec
    durations: Dict[int, SizeDurationSpec]
    outcome_probabilities: Dict[IntendedOutcome, float]
    #: (low, normal, high) QoS probabilities by size class boundary
    qos_small_probs: Tuple[float, float, float] = (0.60, 0.40, 0.0)
    qos_medium_probs: Tuple[float, float, float] = (0.0, 0.70, 0.30)
    qos_large_probs: Tuple[float, float, float] = (0.0, 0.0, 1.0)
    medium_size_threshold: int = 64
    large_size_threshold: int = 512
    n_projects: int = 30

    def __post_init__(self):
        sizes = set(int(v) for v in self.size_mixture.values())
        missing = sizes - set(self.durations)
        if missing:
            raise ValueError(f"profile {self.name}: no duration spec for sizes {missing}")
        total = sum(self.outcome_probabilities.values())
        if not 0.999 < total < 1.001:
            raise ValueError(
                f"profile {self.name}: outcome probabilities sum to {total}, expected 1"
            )
        for probs in (self.qos_small_probs, self.qos_medium_probs, self.qos_large_probs):
            if len(probs) != 3 or not 0.999 < sum(probs) < 1.001:
                raise ValueError(f"QoS probabilities must be a 3-tuple summing to 1: {probs}")

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_size(self, rng: np.random.Generator) -> int:
        return int(self.size_mixture.sample(rng, 1)[0])

    def sample_work_seconds(self, size: int, rng: np.random.Generator) -> float:
        spec = self.durations[size]
        hours = sample_lognormal(
            rng,
            median=spec.median_hours,
            sigma=spec.sigma,
            minimum=1.0 / 60.0,  # at least a minute of work
            maximum=MAX_WORK_SECONDS / HOUR,
        )[0]
        return float(hours * HOUR)

    def sample_qos(self, size: int, rng: np.random.Generator) -> QosTier:
        if size >= self.large_size_threshold:
            probs = self.qos_large_probs
        elif size >= self.medium_size_threshold:
            probs = self.qos_medium_probs
        else:
            probs = self.qos_small_probs
        tier = rng.choice(3, p=np.asarray(probs))
        return (QosTier.LOW, QosTier.NORMAL, QosTier.HIGH)[int(tier)]

    def sample_outcome(self, rng: np.random.Generator) -> IntendedOutcome:
        outcomes = list(self.outcome_probabilities)
        probs = np.asarray([self.outcome_probabilities[o] for o in outcomes])
        return outcomes[int(rng.choice(len(outcomes), p=probs / probs.sum()))]

    def sample_project(self, rng: np.random.Generator) -> str:
        # Zipf-ish project popularity: a few teams dominate submissions.
        ranks = np.arange(1, self.n_projects + 1, dtype=float)
        probs = ranks**-1.2
        probs /= probs.sum()
        return f"project-{int(rng.choice(self.n_projects, p=probs)):02d}"

    # ------------------------------------------------------------------
    # analytic expectations (for calibration and Fig. 6's model series)
    # ------------------------------------------------------------------
    def mean_gpu_seconds_per_job(self) -> float:
        """E[size * duration] under the profile (untruncated means)."""
        total = 0.0
        for size, prob in zip(self.size_mixture.values(), self.size_mixture.probabilities()):
            total += prob * int(size) * self.durations[int(size)].mean_hours() * HOUR
        return float(total)

    def expected_compute_fraction_by_size(self) -> Dict[int, float]:
        """Analytic Fig. 6 'fraction of compute' series."""
        weights: Dict[int, float] = {}
        for size, prob in zip(self.size_mixture.values(), self.size_mixture.probabilities()):
            size = int(size)
            weights[size] = prob * size * self.durations[size].mean_hours()
        total = sum(weights.values())
        return {s: w / total for s, w in sorted(weights.items())}

    def expected_job_fraction_by_size(self) -> Dict[int, float]:
        """Analytic Fig. 6 'fraction of jobs' series."""
        return {
            int(s): float(p)
            for s, p in zip(
                self.size_mixture.values(), self.size_mixture.probabilities()
            )
        }

    def max_size(self) -> int:
        return int(max(self.size_mixture.values()))

    def restricted_to_max_size(self, max_gpus: int) -> "WorkloadProfile":
        """Drop sizes above ``max_gpus`` (for scaled-down clusters)."""
        kept = {
            int(v): w
            for (v, w) in self.size_mixture.weights
            if int(v) <= max_gpus
        }
        if not kept:
            raise ValueError(f"no job sizes fit within {max_gpus} GPUs")
        return WorkloadProfile(
            name=self.name,
            size_mixture=MixtureSpec.from_dict(kept),
            durations=self.durations,
            outcome_probabilities=self.outcome_probabilities,
            qos_small_probs=self.qos_small_probs,
            qos_medium_probs=self.qos_medium_probs,
            qos_large_probs=self.qos_large_probs,
            medium_size_threshold=self.medium_size_threshold,
            large_size_threshold=self.large_size_threshold,
            n_projects=self.n_projects,
        )


_COMMON_OUTCOMES = {
    IntendedOutcome.COMPLETED: 0.688,
    IntendedOutcome.FAILED_USER: 0.262,
    IntendedOutcome.CANCELLED: 0.040,
    IntendedOutcome.OOM: 0.0025,
    IntendedOutcome.TIMEOUT: 0.0075,
}

# Sigmas are moderate: heavy (sigma >= 1.5) tails make a month's offered
# load swing wildly around its mean, which would make scaled-down campaign
# utilization uncontrollable.
_SMALL_DURATIONS = {
    1: SizeDurationSpec(0.4, 1.2),
    2: SizeDurationSpec(0.6, 1.2),
    4: SizeDurationSpec(0.8, 1.2),
    8: SizeDurationSpec(1.5, 1.2),
    16: SizeDurationSpec(3.0, 1.2),
    32: SizeDurationSpec(5.0, 1.2),
    64: SizeDurationSpec(8.0, 1.0),
}


def rsc1_profile() -> WorkloadProfile:
    """RSC-1: general ML (LLM-heavy), largest jobs, 8-GPU tilt."""
    mixture = MixtureSpec.from_dict(
        {
            1: 0.4405,
            2: 0.12,
            4: 0.11,
            8: 0.24,
            16: 0.03,
            32: 0.02,
            64: 0.015,
            128: 0.01,
            256: 0.008,
            512: 0.0035,
            1024: 0.0013,
            2048: 0.0005,
            4096: 0.0002,
        }
    )
    durations = dict(_SMALL_DURATIONS)
    durations.update(
        {
            128: SizeDurationSpec(12.0, 1.0),
            256: SizeDurationSpec(9.0, 1.0),
            512: SizeDurationSpec(12.0, 0.8),
            1024: SizeDurationSpec(16.0, 0.8),
            2048: SizeDurationSpec(20.0, 0.8),
            4096: SizeDurationSpec(22.0, 0.8),
        }
    )
    return WorkloadProfile(
        name="RSC-1",
        size_mixture=mixture,
        durations=durations,
        outcome_probabilities=dict(_COMMON_OUTCOMES),
    )


def rsc2_profile() -> WorkloadProfile:
    """RSC-2: vision-focused, strong 1-GPU tilt, jobs up to ~1k GPUs."""
    mixture = MixtureSpec.from_dict(
        {
            1: 0.592,
            2: 0.10,
            4: 0.08,
            8: 0.14,
            16: 0.035,
            32: 0.02,
            64: 0.012,
            128: 0.01,
            256: 0.007,
            512: 0.003,
            1024: 0.001,
        }
    )
    durations = dict(_SMALL_DURATIONS)
    durations.update(
        {
            128: SizeDurationSpec(12.0, 1.0),
            256: SizeDurationSpec(9.0, 1.0),
            512: SizeDurationSpec(12.0, 0.8),
            1024: SizeDurationSpec(16.0, 0.8),
        }
    )
    return WorkloadProfile(
        name="RSC-2",
        size_mixture=mixture,
        durations=durations,
        outcome_probabilities=dict(_COMMON_OUTCOMES),
    )
