"""Job arrival processes.

Submissions follow a Poisson process with an optional diurnal modulation
(research clusters see day/night swings in interactive submissions).
Non-homogeneous sampling uses standard thinning against the peak rate.
"""

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sim.timeunits import DAY


@dataclass(frozen=True)
class ArrivalProcess:
    """Poisson arrivals at ``rate_per_day`` with sinusoidal diurnality.

    ``diurnal_amplitude`` of 0 is homogeneous; 0.5 means the instantaneous
    rate swings +/-50% around the mean over each simulated day.
    """

    rate_per_day: float
    diurnal_amplitude: float = 0.3

    def __post_init__(self):
        if self.rate_per_day <= 0:
            raise ValueError(f"rate_per_day must be positive, got {self.rate_per_day}")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    def instantaneous_rate(self, t: float) -> float:
        """Arrivals per day at simulation time ``t`` (seconds)."""
        phase = 2 * np.pi * (t % DAY) / DAY
        return self.rate_per_day * (1 + self.diurnal_amplitude * np.sin(phase))

    def sample_times(
        self, start: float, end: float, rng: np.random.Generator
    ) -> List[float]:
        """All arrival times in [start, end), via thinning."""
        if end <= start:
            raise ValueError(f"end ({end}) must exceed start ({start})")
        peak = self.rate_per_day * (1 + self.diurnal_amplitude)
        peak_per_second = peak / DAY
        times: List[float] = []
        t = start
        while True:
            t += rng.exponential(1.0 / peak_per_second)
            if t >= end:
                break
            accept_prob = self.instantaneous_rate(t) / peak
            if rng.random() < accept_prob:
                times.append(t)
        return times
