"""Job intent: what a user asked for, before the cluster has its say.

A :class:`JobSpec` captures the submission-time parameters plus the job's
*intended* fate — what would happen on perfectly reliable hardware.  The
scheduler overlays reality: preemptions, timeouts, node failures, requeues.
Keeping intent separate from outcome is what lets the analysis layer ask
"which failures were infrastructure's fault?" the same way the paper does.
"""

import enum
import math
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.cluster.components import GPUS_PER_NODE
from repro.jobtypes import IntendedOutcome, MAX_JOB_LIFETIME, QosTier

@dataclass(frozen=True)
class JobSpec:
    """Submission-time description of one logical job.

    Attributes:
        job_id: Unique id; requeues keep it (matching the paper's
            same-job-ID guarantee) and bump the attempt counter instead.
        jobrun_id: Groups retry chains of the same logical training run for
            ETTR analysis; many specs are singleton runs.
        project: Owning project/team (quota bookkeeping).
        n_gpus: Requested GPUs.  Sub-server jobs share nodes; larger jobs
            take ``ceil(n_gpus / 8)`` whole servers.
        qos: Priority tier.
        submit_time: Simulation time of first submission.
        work_seconds: Productive compute the job needs to finish.
        time_limit: Per-attempt wallclock limit (<= 7 days).
        intended_outcome: Fate absent infrastructure failures.
        outcome_fraction: For FAILED_USER / CANCELLED / OOM, the fraction of
            ``work_seconds`` at which the user-level event strikes.
        max_requeues: Cap on automatic requeues after interruptions.
        exclude_nodes: Node ids the submitter blacklisted.
    """

    job_id: int
    jobrun_id: int
    project: str
    n_gpus: int
    qos: QosTier
    submit_time: float
    work_seconds: float
    time_limit: float = MAX_JOB_LIFETIME
    intended_outcome: IntendedOutcome = IntendedOutcome.COMPLETED
    outcome_fraction: float = 1.0
    max_requeues: int = 10
    exclude_nodes: FrozenSet[int] = frozenset()

    def __post_init__(self):
        if self.n_gpus <= 0:
            raise ValueError(f"job {self.job_id}: n_gpus must be positive")
        if self.n_gpus > GPUS_PER_NODE and self.n_gpus % GPUS_PER_NODE != 0:
            raise ValueError(
                f"job {self.job_id}: multi-server jobs must use whole servers "
                f"(got {self.n_gpus} GPUs)"
            )
        if self.work_seconds <= 0:
            raise ValueError(f"job {self.job_id}: work_seconds must be positive")
        if not 0 < self.time_limit <= MAX_JOB_LIFETIME:
            raise ValueError(
                f"job {self.job_id}: time_limit must be in (0, {MAX_JOB_LIFETIME}]"
            )
        if not 0 < self.outcome_fraction <= 1:
            raise ValueError(
                f"job {self.job_id}: outcome_fraction must be in (0, 1]"
            )
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: submit_time must be >= 0")
        if self.max_requeues < 0:
            raise ValueError(f"job {self.job_id}: max_requeues must be >= 0")

    @property
    def n_nodes(self) -> int:
        """Servers the gang allocation spans (sub-server jobs use one)."""
        return max(1, math.ceil(self.n_gpus / GPUS_PER_NODE))

    @property
    def gpus_per_node(self) -> int:
        """GPUs held on each allocated node."""
        return self.n_gpus if self.n_gpus < GPUS_PER_NODE else GPUS_PER_NODE

    @property
    def effective_work(self) -> float:
        """Seconds of runtime until the job's own intent resolves it."""
        if self.intended_outcome in (
            IntendedOutcome.FAILED_USER,
            IntendedOutcome.CANCELLED,
            IntendedOutcome.OOM,
        ):
            return self.work_seconds * self.outcome_fraction
        return self.work_seconds

    def is_single_node(self) -> bool:
        return self.n_nodes == 1
