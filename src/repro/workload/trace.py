"""The campaign trace: the repo's equivalent of 11 months of cluster logs.

A :class:`Trace` bundles everything the paper's analyses read:

* per-attempt job records (the Slurm accounting log),
* per-node end-of-campaign records (counters, swaps, lemon ground truth),
* the health/cluster event stream (check firings, incidents, tickets).

Traces serialize to JSONL so campaigns can be generated once and analyzed
many times.  For analysis hot paths, :attr:`Trace.columns` exposes the
same content as typed NumPy column blocks (built lazily, cached) — see
:mod:`repro.core.columns`.
"""

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.jobtypes import JobAttemptRecord, JobState
from repro.sim.events import EventLog, EventRecord
from repro.jobtypes import QosTier

#: Bump whenever the serialized shape of a trace changes.  The runtime
#: trace cache stores this stamp and treats any mismatch as a miss, so a
#: schema change can never resurface stale campaign results.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class NodeTraceRecord:
    """End-of-campaign snapshot of one node's reliability counters."""

    node_id: int
    rack_id: int
    pod_id: int
    gpu_swaps: int
    is_lemon_truth: bool
    lemon_component: Optional[str]
    excl_jobid_count: int
    xid_cnt: int
    tickets: int
    out_count: int
    multi_node_node_fails: int
    single_node_node_fails: int
    single_node_jobs_seen: int

    @property
    def single_node_node_failure_rate(self) -> float:
        if self.single_node_jobs_seen == 0:
            return 0.0
        return self.single_node_node_fails / self.single_node_jobs_seen

    def signal(self, name: str) -> float:
        """Fetch a lemon-detection signal by its paper name."""
        if name == "single_node_node_failure_rate":
            return self.single_node_node_failure_rate
        if not hasattr(self, name):
            raise KeyError(f"unknown lemon signal {name!r}")
        return float(getattr(self, name))


@dataclass
class Trace:
    """One campaign's complete observable record."""

    cluster_name: str
    n_nodes: int
    n_gpus: int
    start: float
    end: float
    job_records: List[JobAttemptRecord] = field(default_factory=list)
    node_records: List[NodeTraceRecord] = field(default_factory=list)
    events: List[EventRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("trace end must exceed start")
        if self.n_nodes <= 0 or self.n_gpus <= 0:
            raise ValueError("trace must describe a non-empty cluster")

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def span_seconds(self) -> float:
        return self.end - self.start

    @property
    def columns(self):
        """Lazily-built :class:`~repro.core.columns.ColumnarTrace` view.

        Built once from the row records on first access and cached; traces
        that were materialized *from* columnar form (npz cache hits) carry
        their blocks along and never rebuild.  The columns are a read-only
        view: mutating ``job_records``/``events`` after the first access
        leaves the cached blocks stale (campaign traces are append-once,
        so this never happens on the production path).
        """
        cached = getattr(self, "_columns", None)
        if cached is None:
            from repro.core.columns import ColumnarTrace

            cached = ColumnarTrace.from_trace(self)
            self._columns = cached
        return cached

    def records_by_state(self, state: JobState) -> List[JobAttemptRecord]:
        return [r for r in self.job_records if r.state is state]

    def hw_failure_records(self) -> List[JobAttemptRecord]:
        """Attempts terminated by infrastructure (the (HW) rows of Fig. 3)."""
        return [r for r in self.job_records if r.is_hw_interruption]

    def health_events(self, kind: str = "health.") -> List[EventRecord]:
        return [e for e in self.events if e.kind.startswith(kind)]

    def events_log(self) -> EventLog:
        log = EventLog()
        for event in self.events:
            log.append(event)
        return log

    def total_gpu_seconds(self) -> float:
        cached = getattr(self, "_columns", None)
        if cached is not None:
            return float(cached.jobs.gpu_seconds.sum())
        return sum(r.gpu_seconds for r in self.job_records)

    def node_record(self, node_id: int) -> NodeTraceRecord:
        for record in self.node_records:
            if record.node_id == node_id:
                return record
        raise KeyError(f"node {node_id} not in trace")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _header_row(self) -> Dict[str, Any]:
        return {
            "cluster_name": self.cluster_name,
            "n_nodes": self.n_nodes,
            "n_gpus": self.n_gpus,
            "start": self.start,
            "end": self.end,
            "metadata": self.metadata,
        }

    @staticmethod
    def _job_row(rec: JobAttemptRecord) -> Dict[str, Any]:
        row = asdict(rec)
        row["state"] = rec.state.value
        row["qos"] = int(rec.qos)
        row["node_ids"] = list(rec.node_ids)
        return row

    @staticmethod
    def _job_from_row(row: Dict[str, Any]) -> JobAttemptRecord:
        row = dict(row)
        row["state"] = JobState(row["state"])
        row["qos"] = QosTier(row["qos"])
        row["node_ids"] = tuple(row["node_ids"])
        return JobAttemptRecord(**row)

    @staticmethod
    def _event_row(event: EventRecord) -> Dict[str, Any]:
        return {
            "time": event.time,
            "kind": event.kind,
            "subject": event.subject,
            "data": event.data,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Exact, JSON-compatible representation (see ``from_dict``).

        The round trip ``Trace.from_dict(trace.to_dict())`` reproduces the
        trace bit-for-bit — the runtime trace cache and the determinism
        tests rely on this being lossless.
        """
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "header": self._header_row(),
            "jobs": [self._job_row(rec) for rec in self.job_records],
            "nodes": [asdict(node) for node in self.node_records],
            "events": [self._event_row(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Trace":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema {schema!r} does not match "
                f"TRACE_SCHEMA_VERSION={TRACE_SCHEMA_VERSION}"
            )
        header = payload["header"]
        return cls(
            cluster_name=header["cluster_name"],
            n_nodes=header["n_nodes"],
            n_gpus=header["n_gpus"],
            start=header["start"],
            end=header["end"],
            job_records=[cls._job_from_row(row) for row in payload["jobs"]],
            node_records=[NodeTraceRecord(**row) for row in payload["nodes"]],
            events=[EventRecord(**row) for row in payload["events"]],
            metadata=header.get("metadata", {}),
        )

    def save(self, path) -> None:
        """Write the trace as JSONL: header, jobs, nodes, events."""
        path = Path(path)

        def line(kind: str, row: Dict[str, Any]) -> str:
            return json.dumps({"type": kind, **row}) + "\n"

        with path.open("w") as fh:
            fh.write(line("header", self._header_row()))
            for rec in self.job_records:
                fh.write(line("job", self._job_row(rec)))
            for node in self.node_records:
                fh.write(line("node", asdict(node)))
            for event in self.events:
                fh.write(line("event", self._event_row(event)))

    @classmethod
    def load(cls, path) -> "Trace":
        path = Path(path)
        header = None
        jobs: List[JobAttemptRecord] = []
        nodes: List[NodeTraceRecord] = []
        events: List[EventRecord] = []
        with path.open() as fh:
            for line in fh:
                row = json.loads(line)
                kind = row.pop("type")
                if kind == "header":
                    header = row
                elif kind == "job":
                    jobs.append(cls._job_from_row(row))
                elif kind == "node":
                    nodes.append(NodeTraceRecord(**row))
                elif kind == "event":
                    events.append(EventRecord(**row))
                else:
                    raise ValueError(f"unknown trace row type {kind!r}")
        if header is None:
            raise ValueError(f"{path} has no header row")
        return cls(
            cluster_name=header["cluster_name"],
            n_nodes=header["n_nodes"],
            n_gpus=header["n_gpus"],
            start=header["start"],
            end=header["end"],
            job_records=jobs,
            node_records=nodes,
            events=events,
            metadata=header.get("metadata", {}),
        )
