"""Job runs: chains of attempts belonging to one logical training task.

"A job run consists of one or more scheduler jobs related to the same
logical job" (Section II-D).  In our traces the chain is explicit — every
attempt row carries a ``jobrun_id`` — so grouping is exact rather than the
heuristic reconstruction the paper had to perform on raw Slurm logs.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.jobtypes import JobAttemptRecord, JobState
from repro.jobtypes import QosTier


@dataclass
class JobRun:
    """All attempts of one logical job, in time order."""

    jobrun_id: int
    attempts: List[JobAttemptRecord]

    def __post_init__(self):
        if not self.attempts:
            raise ValueError(f"job run {self.jobrun_id} has no attempts")
        self.attempts = sorted(self.attempts, key=lambda r: r.start_time)

    @property
    def n_gpus(self) -> int:
        return self.attempts[0].n_gpus

    @property
    def n_nodes(self) -> int:
        return self.attempts[0].n_nodes

    @property
    def qos(self) -> QosTier:
        return self.attempts[0].qos

    @property
    def total_runtime(self) -> float:
        """Total scheduled (wallclock-on-nodes) seconds across attempts."""
        return sum(a.runtime for a in self.attempts)

    @property
    def total_queue_time(self) -> float:
        """Wait before the first attempt plus waits between attempts."""
        return sum(a.queue_wait for a in self.attempts)

    @property
    def wallclock(self) -> float:
        """First-eligible to final end (queue + scheduled time)."""
        return self.attempts[-1].end_time - self.attempts[0].enqueue_time

    @property
    def n_interruptions(self) -> int:
        """Attempts that ended without resolving the job's own intent."""
        interrupting = {
            JobState.NODE_FAIL,
            JobState.REQUEUED,
            JobState.PREEMPTED,
        }
        count = sum(1 for a in self.attempts if a.state in interrupting)
        # A FAILED attempt followed by another attempt was an interruption
        # too (hardware-attributed app crash that auto-requeued).
        for attempt in self.attempts[:-1]:
            if attempt.state is JobState.FAILED and attempt.is_hw_interruption:
                count += 1
        return count

    @property
    def n_hw_interruptions(self) -> int:
        return sum(1 for a in self.attempts if a.is_hw_interruption)

    @property
    def final_state(self) -> JobState:
        return self.attempts[-1].state

    def mean_requeue_wait(self) -> float:
        """Average queue wait of non-first attempts (0 if none)."""
        waits = [a.queue_wait for a in self.attempts[1:]]
        return sum(waits) / len(waits) if waits else 0.0


def group_job_runs(records: Iterable[JobAttemptRecord]) -> List[JobRun]:
    """Group attempt rows into job runs, ordered by first start time."""
    by_run: Dict[int, List[JobAttemptRecord]] = {}
    for record in records:
        by_run.setdefault(record.jobrun_id, []).append(record)
    runs = [JobRun(jobrun_id=rid, attempts=atts) for rid, atts in by_run.items()]
    runs.sort(key=lambda run: run.attempts[0].start_time)
    return runs


def filter_runs(
    runs: Sequence[JobRun],
    min_total_runtime: float = 0.0,
    qos: QosTier = None,
    min_gpus: int = 1,
) -> List[JobRun]:
    """The paper's Fig. 9 cohort filter: long, high-priority runs."""
    out = []
    for run in runs:
        if run.total_runtime < min_total_runtime:
            continue
        if qos is not None and run.qos is not qos:
            continue
        if run.n_gpus < min_gpus:
            continue
        out.append(run)
    return out
