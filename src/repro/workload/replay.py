"""Trace-driven workload replay.

Turn a saved :class:`~repro.workload.trace.Trace` back into a submission
stream: each logical job's first attempt becomes a
:class:`~repro.workload.spec.JobSpec` with the same size, QoS, submit
time, and realized work.  This supports the classic what-if loop —
"replay last quarter's workload against a cluster with half the failure
rate / a different placement policy" — without access to the original
generator or its seed.

Interruption-driven attempts are folded back into their job's total work;
intent is reconstructed from the final state of the chain.
"""

from typing import Dict, List, Optional

from repro.jobtypes import IntendedOutcome, JobAttemptRecord, JobState, MAX_JOB_LIFETIME
from repro.workload.spec import JobSpec
from repro.workload.trace import Trace

#: Final chain states mapped back to the intent that produced them.
_INTENT_BY_FINAL_STATE = {
    JobState.COMPLETED: IntendedOutcome.COMPLETED,
    JobState.CANCELLED: IntendedOutcome.CANCELLED,
    JobState.OUT_OF_MEMORY: IntendedOutcome.OOM,
    JobState.TIMEOUT: IntendedOutcome.TIMEOUT,
    JobState.FAILED: IntendedOutcome.FAILED_USER,
}


def specs_from_trace(
    trace: Trace,
    keep_infrastructure_cutoffs: bool = False,
) -> List[JobSpec]:
    """Reconstruct submission specs from a trace's attempt records.

    Each job id yields one spec whose ``work_seconds`` is the job's total
    scheduled runtime (its realized demand).  Jobs whose chains ended in an
    infrastructure interruption (NODE_FAIL/REQUEUED/PREEMPTED at the
    horizon) are truncated observations; they are replayed as COMPLETED
    jobs of the observed length unless ``keep_infrastructure_cutoffs`` —
    then they are skipped entirely.
    """
    by_job: Dict[int, List[JobAttemptRecord]] = {}
    for record in trace.job_records:
        by_job.setdefault(record.job_id, []).append(record)

    specs: List[JobSpec] = []
    for job_id, records in sorted(by_job.items()):
        records.sort(key=lambda r: r.start_time)
        first, last = records[0], records[-1]
        total_work = sum(r.runtime for r in records)
        if total_work <= 0:
            continue
        intent = _INTENT_BY_FINAL_STATE.get(last.state)
        if intent is None:  # chain cut off by the horizon / infra
            if keep_infrastructure_cutoffs:
                continue
            intent = IntendedOutcome.COMPLETED
        time_limit = MAX_JOB_LIFETIME
        if intent is IntendedOutcome.TIMEOUT:
            # The observed runtime *is* the limit the user set.
            time_limit = min(MAX_JOB_LIFETIME, max(60.0, last.runtime))
            total_work = max(total_work, time_limit * 1.1)
        specs.append(
            JobSpec(
                job_id=job_id,
                jobrun_id=first.jobrun_id,
                project=first.project,
                n_gpus=first.n_gpus,
                qos=first.qos,
                submit_time=first.enqueue_time,
                work_seconds=min(total_work, MAX_JOB_LIFETIME * 0.95),
                time_limit=time_limit,
                intended_outcome=intent,
                outcome_fraction=1.0,
            )
        )
    specs.sort(key=lambda s: s.submit_time)
    return specs


def replay_trace(
    trace: Trace,
    cluster_spec,
    seed: int = 0,
    **campaign_kwargs,
) -> Trace:
    """Re-run a trace's workload on a (possibly different) cluster.

    Builds a campaign around ``cluster_spec``, replaces its generated
    stream with the replayed specs, and runs for the original span.
    """
    from repro.campaign import Campaign, CampaignConfig
    from repro.sim.timeunits import DAY

    duration_days = trace.span_seconds / DAY
    config = CampaignConfig(
        cluster_spec=cluster_spec,
        duration_days=duration_days,
        seed=seed,
        **campaign_kwargs,
    )
    campaign = Campaign(config)
    for spec in specs_from_trace(trace):
        campaign.scheduler.submit(spec)
    campaign.cluster.start()
    campaign.engine.run_until(
        trace.span_seconds, max_events=config.max_events
    )
    campaign.scheduler.stop()
    return campaign._build_trace(trace.span_seconds)
