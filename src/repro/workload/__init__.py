"""Synthetic workload: the stand-in for the paper's proprietary job logs.

The generator produces streams of :class:`~repro.workload.spec.JobSpec`
whose marginal distributions (size mixture, duration by size, QoS tiers,
intended outcomes, arrival rate) are calibrated so the resulting traces
match the published shapes of Fig. 3 (status mix) and Fig. 6 (size vs
compute share).  Multi-job retry chains ("job runs") mirror the paper's
ETTR unit of analysis.
"""

from repro.workload.spec import IntendedOutcome, JobSpec, QosTier
from repro.workload.profiles import WorkloadProfile, rsc1_profile, rsc2_profile
from repro.workload.arrivals import ArrivalProcess
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import NodeTraceRecord, Trace
from repro.workload.jobruns import JobRun, group_job_runs

__all__ = [
    "IntendedOutcome",
    "JobSpec",
    "QosTier",
    "WorkloadProfile",
    "rsc1_profile",
    "rsc2_profile",
    "ArrivalProcess",
    "WorkloadGenerator",
    "NodeTraceRecord",
    "Trace",
    "JobRun",
    "group_job_runs",
]
