"""The asyncio server around a :class:`ReliabilityService`.

:class:`ReliabilityServer` owns the listening socket and the
per-connection protocol loop (HTTP/1.1 keep-alive with an idle
timeout); :func:`serve_until_shutdown` adds the operational contract the
CLI exposes:

* **ephemeral binding** — ``port=0`` binds a kernel-assigned port and
  the bound address is reported through ``on_bound`` before any request
  is accepted (the CLI prints it as its only stdout line);
* **graceful shutdown** — on SIGTERM/SIGINT the listener closes,
  in-flight requests get a bounded grace period, stragglers are
  cancelled, and a final versioned :class:`~repro.live.LiveAnalytics`
  snapshot is written *atomically* (tmp + rename, via
  ``LiveAnalytics.save_snapshot``) before the loop exits — a kill can
  never leave a torn snapshot behind.

:class:`BackgroundServer` runs the same server on a dedicated event-loop
thread, which is how tests and the load benchmark drive a real socket
without blocking the caller.
"""

import asyncio
import logging
import signal
import threading
from pathlib import Path
from typing import Optional, Set

from repro.serve.http11 import HttpError, read_request
from repro.serve.service import ReliabilityService

logger = logging.getLogger("repro.serve")

#: Idle keep-alive connections are reaped after this many seconds.
DEFAULT_KEEP_ALIVE_TIMEOUT = 30.0
#: In-flight requests get this long to finish during shutdown.
DEFAULT_GRACE_S = 1.0


class ReliabilityServer:
    """One listening socket serving one :class:`ReliabilityService`."""

    def __init__(
        self,
        service: ReliabilityService,
        host: str = "127.0.0.1",
        port: int = 8000,
        snapshot_out: Optional[str] = None,
        keep_alive_timeout: float = DEFAULT_KEEP_ALIVE_TIMEOUT,
        grace_s: float = DEFAULT_GRACE_S,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.snapshot_out = snapshot_out
        self.keep_alive_timeout = float(keep_alive_timeout)
        self.grace_s = float(grace_s)
        self.bound_host: Optional[str] = None
        self.bound_port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task"] = set()

    @property
    def address(self) -> str:
        """``http://host:port`` of the *bound* socket (post-``start``)."""
        if self.bound_port is None:
            raise RuntimeError("server is not started")
        return f"http://{self.bound_host}:{self.bound_port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.bound_host, self.bound_port = sockname[0], sockname[1]
        logger.info("listening on %s", self.address)

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.service.metrics.counter("serve_connections_total").inc()
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), timeout=self.keep_alive_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except HttpError as err:
                    # Protocol-level failure: answer if the pipe is still
                    # up, then drop the connection (framing is suspect).
                    writer.write(err.response().encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:  # clean EOF between requests
                    break
                keep_alive = request.keep_alive
                response = await self.service.dispatch(request)
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def stop(self) -> None:
        """Graceful shutdown: drain, cancel stragglers, final snapshot.

        The snapshot write is last and atomic, so whatever was on disk
        before the kill (e.g. the warm-start snapshot the server resumed
        from) is never torn — either the old bytes or the complete new
        document survive.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.grace_s
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
                logger.info(
                    "cancelled %d in-flight request(s) after %.1fs grace",
                    len(still_pending),
                    self.grace_s,
                )
        self.write_final_snapshot()

    def write_final_snapshot(self) -> Optional[Path]:
        """Atomically persist the live session (tmp + rename); idempotent."""
        if self.snapshot_out is None:
            return None
        path = self.service.analytics.save_snapshot(self.snapshot_out)
        logger.info("final snapshot: %s", path)
        return path


async def serve_until_shutdown(
    service: ReliabilityService,
    host: str = "127.0.0.1",
    port: int = 8000,
    snapshot_out: Optional[str] = None,
    keep_alive_timeout: float = DEFAULT_KEEP_ALIVE_TIMEOUT,
    grace_s: float = DEFAULT_GRACE_S,
    on_bound=None,
    shutdown_event: Optional["asyncio.Event"] = None,
) -> ReliabilityServer:
    """Run the server until SIGTERM/SIGINT (or ``shutdown_event``).

    ``on_bound(server)`` fires after binding, before the first request —
    the CLI's hook for printing the bound address.  An explicit
    ``shutdown_event`` substitutes for signals where handlers cannot be
    installed (tests, nested loops, non-main threads).
    """
    server = ReliabilityServer(
        service,
        host=host,
        port=port,
        snapshot_out=snapshot_out,
        keep_alive_timeout=keep_alive_timeout,
        grace_s=grace_s,
    )
    await server.start()
    if on_bound is not None:
        on_bound(server)
    stop = shutdown_event if shutdown_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    if shutdown_event is None:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                # Non-POSIX loop or non-main thread: rely on the caller.
                pass
    try:
        await stop.wait()
        logger.info("shutdown requested; draining")
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.stop()
    return server


class BackgroundServer:
    """A :class:`ReliabilityServer` on its own event-loop thread.

    Context-manager shape for tests and benchmarks::

        with BackgroundServer(service) as server:
            conn = http.client.HTTPConnection(server.bound_host,
                                              server.bound_port)
            ...

    Startup errors (e.g. a busy port) re-raise in ``__enter__``; exit
    runs the same graceful-shutdown path as a signal would.
    """

    def __init__(
        self,
        service: ReliabilityService,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_out: Optional[str] = None,
        grace_s: float = DEFAULT_GRACE_S,
    ):
        self.server = ReliabilityServer(
            service,
            host=host,
            port=port,
            snapshot_out=snapshot_out,
            grace_s=grace_s,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def bound_host(self) -> str:
        return self.server.bound_host

    @property
    def bound_port(self) -> int:
        return self.server.bound_port

    @property
    def address(self) -> str:
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as err:  # surfaced in __enter__
            self._startup_error = err
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.server.stop())
            # Let the executor's threads finish (a cancelled what-if's
            # simulation keeps running there briefly).
            loop.run_until_complete(loop.shutdown_default_executor())
        finally:
            loop.close()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
