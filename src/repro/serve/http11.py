"""Hand-rolled HTTP/1.1 over asyncio streams — no runtime dependencies.

The serving layer deliberately avoids a web framework: the protocol
subset a reliability API needs (GET/POST, JSON bodies, keep-alive,
Content-Length framing) fits in a page of code, and owning the parser
means the server's failure modes are the repository's own — bounded
header/body sizes return 431/413 instead of exhausting memory, a
malformed request line returns 400 instead of a traceback, and every
response carries an exact ``Content-Length`` so clients never hang on a
half-framed body.

Two halves:

* :func:`read_request` — parse one request off an ``asyncio.StreamReader``
  into a :class:`Request` (``None`` on clean EOF between requests).
* :class:`Response` — status + body + headers, encoded to wire bytes
  with :meth:`Response.encode`.  :meth:`Response.json` renders payloads
  with ``sort_keys=True`` so identical payloads produce *bit-identical*
  bodies — the property the what-if response cache asserts.

:class:`HttpError` is the control-flow exception handlers raise for
client-visible failures; the dispatcher converts it into a JSON error
response (with ``Retry-After`` for 503s, per the degradation contract).
"""

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Protocol limits: past these the request is rejected, never buffered.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 1 << 20

SERVER_NAME = "repro-serve/1"

#: The status subset this server emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A client-visible failure with an HTTP status.

    Handlers raise this for anything the client caused or must react to
    (bad payloads, overload, open breaker); the dispatcher renders it as
    a JSON error body.  ``retry_after`` adds a ``Retry-After`` header —
    the degradation contract for 503s.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        headers: Tuple[Tuple[str, str], ...] = (),
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.headers = tuple(headers)

    def response(self) -> "Response":
        headers = self.headers
        if self.retry_after is not None:
            headers = headers + (
                ("Retry-After", f"{max(0, int(round(self.retry_after)))}"),
            )
        return Response.json(
            {"error": self.message, "status": self.status},
            status=self.status,
            headers=headers,
        )


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent connections."""
        connection = self.headers.get("connection", "").lower()
        if self.http_version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """Parse the body as JSON; raises :class:`HttpError` 400."""
        if not self.body:
            raise HttpError(400, "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise HttpError(400, f"malformed JSON body: {err}") from None

    # -- typed query-parameter helpers ---------------------------------
    def str_param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.query.get(name, default)

    def int_param(self, name: str, default: Optional[int] = None) -> Optional[int]:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(
                400, f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None

    def float_param(
        self, name: str, default: Optional[float] = None
    ) -> Optional[float]:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise HttpError(
                400, f"query parameter {name!r} must be a number, got {raw!r}"
            ) from None

    def bool_param(self, name: str, default: bool = False) -> bool:
        raw = self.query.get(name)
        if raw is None:
            return default
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise HttpError(
            400, f"query parameter {name!r} must be a boolean, got {raw!r}"
        )


def _coerce_scalar(obj: Any) -> Any:
    """json.dumps fallback: numpy scalars expose ``item()``."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"object of type {type(obj).__name__} is not JSON serializable"
    )


def canonical_json(payload: Any) -> bytes:
    """Sorted-key JSON bytes: equal payloads encode bit-identically."""
    return (
        json.dumps(payload, sort_keys=True, default=_coerce_scalar) + "\n"
    ).encode("utf-8")


@dataclass
class Response:
    """Status + body + headers; :meth:`encode` produces the wire bytes."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json; charset=utf-8"
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "Response":
        """JSON response with a canonical (sorted-key) body.

        Sorted keys make equal payloads encode to *identical bytes*,
        which is what lets the what-if cache promise bit-identical
        responses for identical queries.  Numpy scalars (which estimator
        rows legitimately carry) are coerced via their ``item()``.
        """
        return cls(
            status=status, body=canonical_json(payload), headers=tuple(headers)
        )

    def encode(self, keep_alive: bool = True) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Server: {SERVER_NAME}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    """One CRLF- (or LF-) terminated line, bounded by ``limit`` bytes."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise HttpError(431, "request line or header too long") from None
    if len(line) > limit:
        raise HttpError(431, "request line or header too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF before any bytes.

    Raises :class:`HttpError` on malformed or over-limit input — the
    connection handler encodes it and closes the connection.
    """
    line = await _read_line(reader, MAX_REQUEST_LINE)
    if not line:
        return None
    try:
        request_line = line.decode("latin-1").rstrip("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await _read_line(reader, MAX_REQUEST_LINE)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "truncated request (EOF inside headers)")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "request headers too large")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise HttpError(400, "undecodable header") from None
        if not _:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        # Chunked framing is not part of this server's subset; refusing
        # is safer than guessing the body boundary.
        raise HttpError(501, "transfer-encoding is not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=parts.path or "/",
        query=query,
        headers=headers,
        body=body,
        http_version=version,
    )
