"""Config-digest keyed, bounded-LRU response cache for what-if queries.

The serving layer's answer to "a million identical queries must cost one
simulation" has two tiers:

1. this cache — rendered response *bodies* keyed by the SHA-256 of the
   canonicalized request payload, so an identical query is answered
   without recomputing anything (and bit-identically, because bodies are
   stored bytes);
2. the content-addressed :class:`repro.runtime.TraceCache` underneath —
   even after an LRU eviction, the expensive part (the campaign
   simulation) is still served from disk and only the cheap sweep
   arithmetic reruns.

Eviction is deterministic: strictly least-recently-used (``get`` and
``put`` both refresh recency), with ties impossible because the ordered
dict records one slot per digest.  ``tests/serve/test_cache.py`` pins
the exact eviction order.
"""

import hashlib
import json
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.runtime.hashing import canonicalize


def payload_digest(payload: Any) -> str:
    """Stable SHA-256 of a request payload (the response-cache key).

    Runs through :func:`repro.runtime.hashing.canonicalize`, so frozen
    dataclasses, enums, tuples, and numpy scalars all hash stably, and
    two payloads that would compute identically hash identically.
    """
    canonical = json.dumps(canonicalize(payload), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResponseCache:
    """Bounded LRU of response bodies with hit/miss/eviction accounting."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> Optional[bytes]:
        """The cached body for ``digest`` (refreshing recency), or None."""
        body = self._entries.get(digest)
        if body is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return body

    def put(self, digest: str, body: bytes) -> None:
        """Store ``body``; evicts the least-recently-used entry on overflow."""
        if not isinstance(body, (bytes, bytearray)):
            raise TypeError("response cache stores rendered bytes")
        self._entries[digest] = bytes(body)
        self._entries.move_to_end(digest)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __contains__(self, digest: str) -> bool:
        """Membership probe: no recency refresh, no miss accounting."""
        return digest in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"ResponseCache({len(self._entries)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
