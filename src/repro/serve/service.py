"""`ReliabilityService`: the endpoint layer over the live estimators.

One service instance wraps one warm :class:`repro.live.LiveAnalytics`
session (restored from a snapshot, replayed from a trace, or tapped off
a fresh simulation) and answers the reliability questions the paper
computes offline:

=========================================  =====================================
``GET /v1/health``                         fleet health score + attributed
                                           messages (``FleetHealthScorer``)
``GET /v1/ettr``                           measured-vs-expected ETTR rows and
                                           an Eq. 1/2 forecast for one run
``GET /v1/mttf``                           per-size MTTF buckets + r_f
``GET /v1/lemons``                         per-node lemon scores and signals
``GET /v1/snapshot``                       the versioned LiveAnalytics snapshot
``GET /metrics``                           Prometheus text exposition
``POST /v1/whatif/checkpoint-cadence``     Fig. 10 as an interactive query,
                                           optionally simulating a campaign
``GET /v1/ping``                           liveness probe
=========================================  =====================================

What-if queries are keyed by the SHA-256 of their canonicalized payload
(``config_digest`` discipline) into a bounded-LRU
:class:`~repro.serve.cache.ResponseCache`, layered on the
content-addressed :class:`~repro.runtime.TraceCache` — a million
identical queries cost one simulation, and concurrent identical queries
collapse onto a single in-flight computation (single-flight).

Degradation is explicit: simulation failures feed the resilience
layer's :class:`~repro.resilience.CircuitBreaker`; once open, uncached
what-if queries get ``503 + Retry-After`` while cached responses (pure
functions of the request) keep serving.  More in-flight what-if
computations than ``max_concurrent_whatif`` is overload: also
``503 + Retry-After``, before any work is queued.

Every request is measured: a ``serve.request`` span (when telemetry is
enabled) plus per-endpoint latency histograms and request counters in
the service's :class:`~repro.obs.metrics.MetricsRegistry` — which is
exactly what ``/metrics`` exports.
"""

import asyncio
import logging
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.spans import maybe_span
from repro.obs.telemetry import Telemetry
from repro.resilience import Backoff, CircuitBreaker, RetryPolicy
from repro.runtime.cache import TraceCache
from repro.serve.cache import ResponseCache, payload_digest
from repro.serve.http11 import (
    HttpError,
    Request,
    Response,
    canonical_json,
)
from repro.sim.timeunits import DAY, HOUR, MINUTE

logger = logging.getLogger("repro.serve")

#: Bump when any endpoint's response document shape changes.
SERVE_SCHEMA_VERSION = 1

_WHATIF_KEYS = frozenset(
    {
        "n_gpus",
        "failure_rates_per_1k",
        "intervals_minutes",
        "targets",
        "restart_overhead_minutes",
        "campaign",
    }
)
_CAMPAIGN_KEYS = frozenset({"cluster", "nodes", "days", "seed"})


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise HttpError(400, message)


@dataclass(frozen=True)
class WhatIfCampaign:
    """The on-demand campaign block of a what-if payload."""

    cluster: str
    nodes: int
    days: float
    seed: int = 0

    @classmethod
    def from_payload(cls, payload: Any) -> "WhatIfCampaign":
        _require(
            isinstance(payload, dict), "whatif 'campaign' must be an object"
        )
        unknown = set(payload) - _CAMPAIGN_KEYS
        _require(
            not unknown,
            f"unknown campaign field(s): {', '.join(sorted(unknown))}",
        )
        cluster = payload.get("cluster", "rsc1")
        _require(
            cluster in ("rsc1", "rsc2"),
            f"campaign cluster must be 'rsc1' or 'rsc2', got {cluster!r}",
        )
        try:
            nodes = int(payload.get("nodes", 16))
            days = float(payload.get("days", 5.0))
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError):
            raise HttpError(
                400, "campaign nodes/days/seed must be numeric"
            ) from None
        _require(1 <= nodes <= 4096, "campaign nodes must be in [1, 4096]")
        _require(0 < days <= 366, "campaign days must be in (0, 366]")
        return cls(cluster=cluster, nodes=nodes, days=days, seed=seed)

    def to_config(self):
        """The fully-resolved CampaignConfig this block names."""
        from repro import CampaignConfig, ClusterSpec

        if self.cluster == "rsc2":
            spec = ClusterSpec.rsc2_like(
                n_nodes=self.nodes, campaign_days=self.days
            )
        else:
            spec = ClusterSpec.rsc1_like(
                n_nodes=self.nodes, campaign_days=self.days
            )
        return CampaignConfig(
            cluster_spec=spec, duration_days=self.days, seed=self.seed
        )


@dataclass(frozen=True)
class WhatIfSpec:
    """A validated, canonical checkpoint-cadence what-if query.

    Being a frozen dataclass of plain tuples, the spec canonicalizes
    stably through :func:`~repro.serve.cache.payload_digest`; any field
    difference (a different seed, one more interval) produces a
    different digest and therefore a cache miss.
    """

    n_gpus: int = 100_000
    failure_rates_per_1k: Tuple[float, ...] = ()
    intervals_minutes: Tuple[float, ...] = (2, 5, 7, 10, 21, 30, 60)
    targets: Tuple[float, ...] = (0.5, 0.9)
    restart_overhead_minutes: float = 5.0
    campaign: Optional[WhatIfCampaign] = None

    @classmethod
    def from_payload(cls, payload: Any) -> "WhatIfSpec":
        _require(isinstance(payload, dict), "whatif payload must be an object")
        unknown = set(payload) - _WHATIF_KEYS
        _require(
            not unknown,
            f"unknown whatif field(s): {', '.join(sorted(unknown))}",
        )
        campaign = None
        if payload.get("campaign") is not None:
            campaign = WhatIfCampaign.from_payload(payload["campaign"])
        try:
            n_gpus = int(payload.get("n_gpus", 100_000))
            rates = tuple(
                float(r) for r in payload.get("failure_rates_per_1k", ())
            )
            intervals = tuple(
                float(m)
                for m in payload.get(
                    "intervals_minutes", cls.intervals_minutes
                )
            )
            targets = tuple(float(t) for t in payload.get("targets", cls.targets))
            restart = float(payload.get("restart_overhead_minutes", 5.0))
        except (TypeError, ValueError):
            raise HttpError(400, "whatif fields must be numeric") from None
        _require(n_gpus >= 8, "n_gpus must be >= 8")
        _require(
            all(r > 0 for r in rates),
            "failure_rates_per_1k must be positive",
        )
        _require(len(rates) <= 16, "at most 16 failure rates per query")
        _require(
            bool(intervals) and all(m > 0 for m in intervals),
            "intervals_minutes must be positive and non-empty",
        )
        _require(len(intervals) <= 64, "at most 64 intervals per query")
        _require(
            all(0 < t < 1 for t in targets),
            "targets must be ETTR fractions in (0, 1)",
        )
        _require(restart >= 0, "restart_overhead_minutes must be >= 0")
        if campaign is None and not rates:
            # The paper's two measured cluster rates (Fig. 10's axes).
            rates = (6.5, 2.34)
        return cls(
            n_gpus=n_gpus,
            failure_rates_per_1k=rates,
            intervals_minutes=intervals,
            targets=targets,
            restart_overhead_minutes=restart,
            campaign=campaign,
        )

    def digest(self) -> str:
        return payload_digest(self)


class ReliabilityService:
    """Routes + handlers + caching + degradation over one live session."""

    def __init__(
        self,
        analytics,
        telemetry: Optional[Telemetry] = None,
        trace_cache: Optional[TraceCache] = None,
        whatif_cache_size: int = 256,
        max_concurrent_whatif: int = 2,
        breaker: Optional[CircuitBreaker] = None,
        retry: Optional[RetryPolicy] = None,
        retry_after_s: float = 30.0,
        whatif_runner: Optional[Callable[[WhatIfSpec], Dict[str, Any]]] = None,
        stale_after_days: Optional[float] = None,
        run_options=None,
    ):
        if max_concurrent_whatif < 1:
            raise ValueError("max_concurrent_whatif must be >= 1")
        self.analytics = analytics
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        #: The registry behind ``/metrics``; always live (the registry
        #: never perturbs simulation state), even when the tracer is off.
        self.metrics = self.telemetry.metrics
        self.trace_cache = trace_cache if trace_cache is not None else TraceCache()
        self.whatif_cache = ResponseCache(whatif_cache_size)
        self.max_concurrent_whatif = int(max_concurrent_whatif)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(
                max_attempts=2, backoff=Backoff(base_s=0.05, max_s=0.5)
            )
        )
        self.retry_after_s = float(retry_after_s)
        #: Injectable what-if computation (tests and chaos drills swap in
        #: failing or counting runners); the retry/breaker/caching
        #: plumbing around it is identical either way.
        self.whatif_runner = (
            whatif_runner if whatif_runner is not None else self._compute_whatif
        )
        self.stale_after_days = stale_after_days
        #: Optional repro.RunOptions selecting how what-if campaigns
        #: execute (notably ``backend=``/``backend_options=`` — a serve
        #: deployment can dispatch simulations to a shared work queue
        #: instead of its own process).  ``None`` keeps the historical
        #: in-process cached path.
        self.run_options = run_options
        #: digest -> in-flight Task; concurrent identical queries await
        #: the same computation (single-flight).
        self._inflight: Dict[str, "asyncio.Task"] = {}
        self._routes: Dict[Tuple[str, str], Callable[[Request], Any]] = {
            ("GET", "/v1/ping"): self._ping,
            ("GET", "/v1/health"): self._health,
            ("GET", "/v1/ettr"): self._ettr,
            ("GET", "/v1/mttf"): self._mttf,
            ("GET", "/v1/lemons"): self._lemons,
            ("GET", "/v1/snapshot"): self._snapshot,
            ("GET", "/metrics"): self._metrics_endpoint,
            ("POST", "/v1/whatif/checkpoint-cadence"): self._whatif,
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _endpoint_label(self, path: str) -> str:
        """Bounded-cardinality endpoint label for metrics."""
        if any(known == path for _, known in self._routes):
            return path
        return "unknown"

    async def dispatch(self, request: Request) -> Response:
        """Route one request to its handler; never raises."""
        endpoint = self._endpoint_label(request.path)
        started = time.perf_counter()
        with maybe_span(
            self.telemetry,
            "serve.request",
            method=request.method,
            path=endpoint,
        ):
            response = await self._dispatch_inner(request)
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            "serve_request_seconds", endpoint=endpoint
        ).observe(elapsed)
        self.metrics.counter(
            "serve_requests_total",
            endpoint=endpoint,
            status=str(response.status),
        ).inc()
        return response

    async def _dispatch_inner(self, request: Request) -> Response:
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            allowed = sorted(
                method
                for method, path in self._routes
                if path == request.path
            )
            if allowed:
                return HttpError(
                    405,
                    f"{request.method} not allowed on {request.path}",
                    headers=(("Allow", ", ".join(allowed)),),
                ).response()
            return HttpError(404, f"no such endpoint {request.path!r}").response()
        try:
            result = handler(request)
            if asyncio.iscoroutine(result) or isinstance(result, Awaitable):
                result = await result
            return result
        except HttpError as err:
            return err.response()
        except Exception:
            logger.exception(
                "unhandled error serving %s %s", request.method, request.path
            )
            self.metrics.counter("serve_errors_total").inc()
            return HttpError(500, "internal server error").response()

    # ------------------------------------------------------------------
    # read-only endpoints
    # ------------------------------------------------------------------
    def _ping(self, request: Request) -> Response:
        return Response.json({"ok": True, "schema": SERVE_SCHEMA_VERSION})

    def _base_payload(self) -> Dict[str, Any]:
        a = self.analytics
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "cluster": a.config.cluster_name,
            "n_nodes": a.config.n_nodes,
            "n_gpus": a.config.n_gpus,
            "watermark_days": a.watermark / DAY,
        }

    def _health(self, request: Request) -> Response:
        report = self.analytics.health(stale_after_days=self.stale_after_days)
        self.metrics.gauge("serve_health_score").set(report.score)
        payload = self._base_payload()
        payload.update(report.to_dict())
        payload["healthy"] = report.healthy
        return Response.json(payload)

    def _measured_rf(self):
        """The live r_f estimate, or None before enough large-job runtime."""
        try:
            return self.analytics.mttf.failure_rate()
        except ValueError:
            return None

    def _ettr(self, request: Request) -> Response:
        rf = self._measured_rf()
        payload = self._base_payload()
        payload["rf_per_1k_node_days"] = (
            rf.rate * 1000.0 if rf is not None else None
        )
        payload["comparison"] = (
            self.analytics.ettr.comparison(rf) if rf is not None else []
        )
        gpus = request.int_param("gpus")
        if gpus is not None:
            _require(gpus >= 8, "gpus must be >= 8")
            rf_override = request.float_param("rf_per_1k")
            rate = rf_override / 1000.0 if rf_override is not None else None
            if rate is None and rf is not None:
                rate = rf.rate
            if rate is None:
                raise HttpError(
                    400,
                    "no measured r_f yet (not enough large-job runtime); "
                    "pass rf_per_1k= explicitly",
                )
            queue_hours = request.float_param("queue_hours", 1.0)
            runtime_hours = request.float_param("runtime_hours", 24.0)
            simple = request.bool_param("simple", False)
            value = self.analytics.ettr.forecast(
                gpus,
                rate,
                queue_hours * HOUR,
                runtime_hours * HOUR,
                simple=simple,
            )
            payload["forecast"] = {
                "gpus": gpus,
                "rf_per_1k_node_days": rate * 1000.0,
                "queue_hours": queue_hours,
                "runtime_hours": runtime_hours,
                "equation": "eq2_simple" if simple else "eq1",
                "ettr": value,
            }
        return Response.json(payload)

    def _mttf(self, request: Request) -> Response:
        min_records = request.int_param("min_records", 1)
        estimator = self.analytics.mttf
        rf = self._measured_rf()
        payload = self._base_payload()
        payload.update(
            {
                "n_records": estimator.n_records,
                "largest_gpus": estimator.largest_gpus,
                "rf_per_1k_node_days": (
                    rf.rate * 1000.0 if rf is not None else None
                ),
                "rf_floor_gpus": (
                    estimator.rf_min_gpus
                    if estimator.rf_min_gpus is not None
                    else estimator.auto_floor()
                ),
                "buckets": [
                    {
                        "gpus": bucket.gpus,
                        "n_records": bucket.n_records,
                        "failures": bucket.failures,
                        "runtime_hours": bucket.runtime_hours,
                        "mttf_hours": _json_safe(bucket.mttf_hours),
                        "mttf_hours_lo": _json_safe(bucket.mttf_hours_lo),
                        "mttf_hours_hi": _json_safe(bucket.mttf_hours_hi),
                    }
                    for bucket in estimator.buckets(min_records=min_records)
                ],
            }
        )
        return Response.json(payload)

    def _lemons(self, request: Request) -> Response:
        lemons = self.analytics.lemons
        scores = lemons.provisional_scores()
        payload = self._base_payload()
        payload.update(
            {
                "min_signals": lemons.min_signals,
                "suspects": lemons.suspects(),
                "scores": {str(node): votes for node, votes in scores.items()},
                "signals": {
                    str(node): lemons.live_signals(node) for node in scores
                },
                "node_records_complete": lemons.node_records_complete,
            }
        )
        return Response.json(payload)

    def _snapshot(self, request: Request) -> Response:
        # The versioned LiveAnalytics document itself (carries "schema").
        return Response.json(self.analytics.snapshot())

    def _metrics_endpoint(self, request: Request) -> Response:
        for name, value in self.whatif_cache.stats().items():
            self.metrics.gauge(f"serve_whatif_cache_{name}").set(value)
        for name, value in self.trace_cache.stats().items():
            self.metrics.gauge(f"serve_trace_cache_{name}").set(value)
        self.metrics.gauge("serve_breaker_open").set(int(self.breaker.open))
        body = self.metrics.render_prometheus().encode("utf-8")
        return Response(
            status=200, body=body, content_type=PROMETHEUS_CONTENT_TYPE
        )

    # ------------------------------------------------------------------
    # what-if: Fig. 10 as an interactive query
    # ------------------------------------------------------------------
    async def _whatif(self, request: Request) -> Response:
        spec = WhatIfSpec.from_payload(request.json())
        digest = spec.digest()
        cached = self.whatif_cache.get(digest)
        if cached is not None:
            # Cached bodies are pure functions of the request payload, so
            # they are safe to serve even while the breaker is open.
            self.metrics.counter("serve_whatif_cache_hits_total").inc()
            return Response(
                status=200,
                body=cached,
                headers=(
                    ("X-Repro-Cache", "hit"),
                    ("X-Repro-Config-Digest", digest),
                ),
            )
        if self.breaker.open:
            self.metrics.counter("serve_breaker_rejections_total").inc()
            raise HttpError(
                503,
                "what-if computation degraded (circuit breaker open); "
                "identical cached queries still serve",
                retry_after=self.retry_after_s,
            )
        task = self._inflight.get(digest)
        if task is None:
            if len(self._inflight) >= self.max_concurrent_whatif:
                self.metrics.counter("serve_overload_rejections_total").inc()
                raise HttpError(
                    503,
                    f"what-if capacity exhausted "
                    f"({self.max_concurrent_whatif} in flight)",
                    retry_after=self.retry_after_s,
                )
            task = asyncio.get_running_loop().create_task(
                self._run_whatif(digest, spec)
            )
            self._inflight[digest] = task
        body = await task
        return Response(
            status=200,
            body=body,
            headers=(
                ("X-Repro-Cache", "miss"),
                ("X-Repro-Config-Digest", digest),
            ),
        )

    async def _run_whatif(self, digest: str, spec: WhatIfSpec) -> bytes:
        """Single-flight computation: compute once, cache, settle waiters."""
        loop = asyncio.get_running_loop()
        try:
            with maybe_span(self.telemetry, "serve.whatif", digest=digest[:12]):
                payload = await loop.run_in_executor(
                    None, self._guarded_compute, digest, spec
                )
        except HttpError:
            raise
        except Exception as err:
            opened = self.breaker.record_failure()
            if opened:
                logger.error(
                    "what-if breaker opened after %d consecutive failures",
                    self.breaker.consecutive_failures,
                )
            raise HttpError(500, f"what-if computation failed: {err}") from err
        else:
            self.breaker.record_success()
            body = canonical_json(payload)
            self.whatif_cache.put(digest, body)
            return body
        finally:
            self._inflight.pop(digest, None)

    def _guarded_compute(
        self, digest: str, spec: WhatIfSpec
    ) -> Dict[str, Any]:
        """The retry loop around one what-if computation (executor side)."""
        attempt = 0
        while True:
            try:
                self.metrics.counter("serve_whatif_simulations_total").inc()
                return self.whatif_runner(spec)
            except HttpError:
                raise
            except Exception:
                self.metrics.counter("serve_whatif_failures_total").inc()
                if not self.retry.retryable(attempt):
                    raise
                self.metrics.counter("serve_whatif_retries_total").inc()
                self.retry.backoff.sleep(digest, attempt)
                attempt += 1

    def _compute_whatif(self, spec: WhatIfSpec) -> Dict[str, Any]:
        """Fig. 10 on demand, optionally grounded in a fresh campaign.

        With a ``campaign`` block, the named configuration is simulated
        (through the content-addressed trace cache, so repeats are disk
        reads) and its *measured* r_f leads the sweep's failure-rate
        axis; without one, the sweep is the pure Eq. 1 surface over the
        requested rates.
        """
        from repro.analysis.checkpoint_sweep import checkpoint_sweep
        from repro.analysis.mttf_analysis import mttf_analysis
        from repro.runtime.cache import cached_run_campaign
        from repro.runtime.hashing import config_digest

        rates = [r / 1000.0 for r in spec.failure_rates_per_1k]
        campaign_block: Optional[Dict[str, Any]] = None
        if spec.campaign is not None:
            config = spec.campaign.to_config()
            if self.run_options is not None:
                # Route through the configured execution backend (the
                # cache-first pool path, so repeats are still disk reads).
                from repro.runtime.pool import CampaignPool

                pool = CampaignPool(
                    options=self.run_options.replace(cache=self.trace_cache)
                )
                trace = pool.run([config])[0]
            else:
                trace = cached_run_campaign(config, cache=self.trace_cache)
            analysis = mttf_analysis(trace)
            measured = analysis.failure_rate
            rates = [measured.rate] + [r for r in rates if r != measured.rate]
            campaign_block = {
                "cluster": spec.campaign.cluster,
                "nodes": spec.campaign.nodes,
                "days": spec.campaign.days,
                "seed": spec.campaign.seed,
                # Deliberately no trace provenance here: the response
                # must be a pure function of the payload (bit-identical
                # across evictions), and "simulated" vs "cached" is not.
                "config_digest": config_digest(config),
                "measured_rf_per_1k_node_days": measured.rate * 1000.0,
                "rf_events": measured.events,
                "rf_node_days": measured.exposure,
            }
        sweep = checkpoint_sweep(
            n_gpus=spec.n_gpus,
            failure_rates=tuple(dict.fromkeys(rates)),
            intervals_minutes=spec.intervals_minutes,
            targets=spec.targets,
            restart_overhead=spec.restart_overhead_minutes * MINUTE,
        )
        rows = []
        for rf in sweep.failure_rates:
            required = {}
            for target in spec.targets:
                required[f"{target:g}"] = _interval_label(
                    sweep.required[(rf, float(target))]
                )
            rows.append(
                {
                    "rf_per_1k_node_days": rf * 1000.0,
                    "expected_ettr_by_interval_minutes": {
                        f"{dt / MINUTE:g}": sweep.grid[(rf, dt)]
                        for dt in sweep.intervals
                    },
                    "required_interval_minutes_for_target_ettr": required,
                }
            )
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "n_gpus": spec.n_gpus,
            "intervals_minutes": list(spec.intervals_minutes),
            "targets": list(spec.targets),
            "restart_overhead_minutes": spec.restart_overhead_minutes,
            "campaign": campaign_block,
            "rows": rows,
        }


def _json_safe(value: float) -> Optional[Any]:
    """Map inf/nan (not valid JSON) to serializable sentinels."""
    if value != value:  # nan
        return None
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return value


def _interval_label(dt: float) -> Optional[Any]:
    """Required-interval solution -> JSON: minutes, "any", or None.

    ``inf`` means any cadence meets the target; ``nan`` means the target
    is unreachable even with instant checkpoints (the restart overhead
    alone exceeds the failure budget) — reported as ``None``.
    """
    if dt != dt:  # nan
        return None
    if dt == float("inf"):
        return "any"
    return dt / MINUTE
