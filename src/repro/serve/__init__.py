"""`repro.serve` — reliability-as-a-service over the live estimators.

An asyncio HTTP/1.1 server (stdlib only) that turns the paper's offline
reliability analyses into queryable endpoints: fleet health, MTTF/ETTR
forecasts, lemon suspects, Prometheus metrics, versioned snapshots, and
checkpoint-cadence what-if queries (Fig. 10 on demand) with
config-digest response caching layered on the content-addressed trace
cache.  See ``docs/SERVING.md`` for the endpoint and degradation
contract.
"""

from repro.serve.cache import ResponseCache, payload_digest
from repro.serve.http11 import (
    HttpError,
    Request,
    Response,
    canonical_json,
    read_request,
)
from repro.serve.server import (
    BackgroundServer,
    ReliabilityServer,
    serve_until_shutdown,
)
from repro.serve.service import (
    SERVE_SCHEMA_VERSION,
    ReliabilityService,
    WhatIfCampaign,
    WhatIfSpec,
)

__all__ = [
    "BackgroundServer",
    "HttpError",
    "ReliabilityServer",
    "ReliabilityService",
    "Request",
    "Response",
    "ResponseCache",
    "SERVE_SCHEMA_VERSION",
    "WhatIfCampaign",
    "WhatIfSpec",
    "canonical_json",
    "payload_digest",
    "read_request",
    "serve_until_shutdown",
]
