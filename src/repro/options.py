"""``RunOptions``: the one object that configures *how* things run.

Four PRs of runtime growth left execution knobs scattered across call
sites — ``use_columns=`` on every analysis function, ``telemetry=`` and
``incremental_indices=`` on the campaign runner, ``max_workers=`` /
``cache=`` on the pool, and environment variables for the cache
directory.  :class:`RunOptions` consolidates them behind one frozen,
versioned surface that ``run_campaign``, ``run_campaigns``,
``CampaignPool``, the analysis entry points, and ``repro.live`` all
accept uniformly::

    from repro import RunOptions, run_campaign

    opts = RunOptions(telemetry=tel, workers=4)
    trace = run_campaign(config, options=opts)

**None of these knobs may influence simulated content.**  Every field
here selects an execution strategy (vectorized vs rowwise, pooled vs
inline, cached vs fresh, observed vs dark); the resulting traces are
bit-identical across all settings, which is why ``RunOptions`` never
enters a cache key or a trace digest.

Legacy keyword arguments (``use_columns=``, ``incremental_indices=``,
``telemetry=``, ``max_workers=``, ``cache=``) keep working everywhere
they did before, but emit exactly one :class:`DeprecationWarning` per
call and are merged into the options object by :func:`resolve_options`.
"""

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.obs.telemetry import Telemetry
    from repro.resilience.config import ResilienceConfig
    from repro.runtime.cache import TraceCache


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"

    def __bool__(self) -> bool:
        return False


#: Default value for deprecated keyword parameters: "the caller said
#: nothing", as opposed to an explicit ``None``/``False``.
UNSET = _Unset()

#: Bump when the meaning of an existing field changes (new fields with
#: backward-compatible defaults do not require a bump).
RUN_OPTIONS_VERSION = 1


@dataclass(frozen=True)
class RunOptions:
    """Execution strategy for campaigns, sweeps, analyses, and live sessions.

    Attributes:
        use_columns: Route analyses through the vectorized columnar
            pipeline (default) or the rowwise reference loops.
        incremental_indices: Run the cluster/scheduler on the incremental
            availability indices (default) or the O(N)-scan reference
            path.
        telemetry: Optional :class:`repro.obs.Telemetry` bundle observing
            the run.  Never affects simulated content.
        cache: A :class:`repro.runtime.TraceCache`, ``None`` for the
            default cache (honoring ``REPRO_TRACE_CACHE``), or ``False``
            to disable caching.
        cache_dir: Root directory for the default cache when ``cache``
            is ``None`` (overrides the environment resolution).
        workers: Max worker processes for pooled sweeps (``None`` =
            CPU count, ``1`` = inline).
        resilience: A :class:`repro.resilience.ResilienceConfig`
            controlling retry/backoff, chaos injection, and the circuit
            breaker; ``None`` uses the default policy.
        checkpoint_dir: Directory for crash-safe sweep checkpoints
            (completed-seed manifest + partial results); ``None``
            disables checkpointing.
        backend: Execution backend name for sweeps — ``"local-pool"``
            (process pool on this machine, the default), ``"inline"``
            (serial, in-process), ``"work-queue"`` (filesystem queue
            drained by ``repro worker`` processes on any host), or any
            name registered via
            :func:`repro.backends.register_backend`.  Backends never
            affect simulated content: traces are bit-identical across
            all of them.
        backend_options: Free-form keyword options for the backend
            factory (e.g. ``{"root": "/shared/queue"}`` for
            ``work-queue``); normalized to a plain dict.
    """

    use_columns: bool = True
    incremental_indices: bool = True
    telemetry: Optional["Telemetry"] = None
    cache: Union["TraceCache", bool, None] = None
    cache_dir: Optional[str] = None
    workers: Optional[int] = None
    resilience: Optional["ResilienceConfig"] = None
    checkpoint_dir: Optional[str] = None
    backend: str = "local-pool"
    backend_options: Optional[Mapping[str, Any]] = None

    def __post_init__(self):
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(
                f"backend must be a non-empty backend name, "
                f"got {self.backend!r}"
            )
        if self.backend_options is not None and not isinstance(
            self.backend_options, dict
        ):
            object.__setattr__(
                self, "backend_options", dict(self.backend_options)
            )

    def replace(self, **changes: Any) -> "RunOptions":
        """Frozen-dataclass update (``dataclasses.replace`` convenience)."""
        return replace(self, **changes)

    def resolved_cache(self) -> Optional["TraceCache"]:
        """Materialize the cache these options describe (or ``None``)."""
        from repro.runtime.cache import TraceCache

        if self.cache is False:
            return None
        if self.cache is None or self.cache is True:
            return TraceCache(root=self.cache_dir)
        return self.cache


#: The implicit default everywhere an ``options=None`` is accepted.
DEFAULT_OPTIONS = RunOptions()

_FIELD_NAMES = frozenset(f.name for f in fields(RunOptions))


def resolve_options(
    options: Optional[RunOptions],
    where: str,
    renames: Optional[Dict[str, str]] = None,
    **legacy: Any,
) -> RunOptions:
    """Merge deprecated keyword arguments into a :class:`RunOptions`.

    ``legacy`` maps the *original* keyword names to their passed values
    (``UNSET`` meaning "not passed"); ``renames`` maps original names to
    ``RunOptions`` field names where they differ (``max_workers`` ->
    ``workers``).  If any legacy keyword was passed, exactly one
    :class:`DeprecationWarning` is emitted naming them all, and the
    values override the corresponding ``options`` fields — so the legacy
    path and the options path are the same code path and produce
    identical results by construction.
    """
    passed = {k: v for k, v in legacy.items() if v is not UNSET}
    base = options if options is not None else DEFAULT_OPTIONS
    if not passed:
        return base
    names = ", ".join(f"{k}=" for k in sorted(passed))
    warnings.warn(
        f"{where}: {names} is deprecated; pass repro.RunOptions(...) "
        "via options= instead",
        DeprecationWarning,
        stacklevel=3,
    )
    renames = renames or {}
    updates = {}
    for key, value in passed.items():
        field_name = renames.get(key, key)
        if field_name not in _FIELD_NAMES:  # pragma: no cover - guard
            raise TypeError(
                f"{where}: unknown legacy option {key!r} "
                f"(no RunOptions field {field_name!r})"
            )
        updates[field_name] = value
    return base.replace(**updates)


__all__ = [
    "DEFAULT_OPTIONS",
    "RUN_OPTIONS_VERSION",
    "RunOptions",
    "UNSET",
    "resolve_options",
]
