"""``ArtifactStore``: the shared, content-addressed result store.

Promoted out of :class:`~repro.resilience.checkpoint.CampaignCheckpoint`
(whose partial-result store it used to be): a digest-keyed,
integrity-verified trace store that *any* worker on *any* host can
serve or resume a shard from.  The work-queue backend's drainers write
completed shards here; the dispatcher (or a later resumed sweep, or a
different backend entirely) reads them back — the store, not the
process, is the unit of progress.

Three guarantees, inherited from the trace-cache entry machinery it is
built on and hardened for multi-writer use:

* **Content addressing** — entries are keyed by ``config_digest``: the
  same fully-resolved config maps to the same key from any process on
  any host, so duplicated work converges instead of conflicting.
* **Integrity** — every entry carries the trace's content digest;
  reads recompute and compare, and a failed entry (torn write, bit
  rot, foreign bytes) is quarantined and treated as a miss — a corrupt
  shard re-simulates, it never poisons a resumed sweep.
* **Write safety** — each ``put`` is an atomic temp-file +
  ``os.replace`` *and* holds a per-key advisory ``flock`` (the same
  treatment :func:`repro.runtime.trajectory.record_benchmark` got for
  its append race), so two workers racing the same shard key leave one
  complete, verified entry — never interleaved bytes.  Platforms
  without ``fcntl`` fall back to the unlocked, still-atomic behavior.

Layout (identical to the legacy checkpoint entry store, so checkpoint
directories written by earlier builds keep serving hits)::

    <root>/v<CACHE_FORMAT_VERSION>/<digest[:2]>/<digest>.npz
    <root>/quarantine/...          # failed entries, kept for inspection
"""

import hashlib
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, TYPE_CHECKING, Union

try:  # POSIX advisory locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign import CampaignConfig
    from repro.workload.trace import Trace


@contextmanager
def _key_lock(root: Path, digest: str):
    """Exclusive cross-process lock for one store key's writes.

    The lock file lives in the system temp dir, keyed by the resolved
    store root + digest, so (1) the store directory holds only entries
    and (2) the lock file is never replaced out from under a waiting
    locker (``os.replace`` swaps the entry's inode, not the lock's).
    ``flock`` releases on close even if the holder dies mid-write.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    key = hashlib.sha256(
        f"{Path(root).resolve()}\x1f{digest}".encode("utf-8")
    ).hexdigest()[:16]
    lock_path = Path(tempfile.gettempdir()) / f"repro-artifact-{key}.lock"
    with open(lock_path, "a+", encoding="utf-8") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


class ArtifactStore:
    """Digest-keyed, digest-verified, multi-writer-safe trace store.

    A thin policy layer over the trace cache's entry machinery: the
    cache answers "have I simulated this config before?"; the store
    answers "has *anyone, anywhere* completed this shard?".  It is
    keyed by raw digests (config objects are a convenience, not a
    requirement), never stamps provenance onto loaded traces (callers
    decide what a load *means*), and serializes same-key writes.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        verify: bool = True,
        telemetry=None,
    ):
        from repro.runtime.cache import TraceCache

        self.root = Path(root)
        #: Deliberately the cache's entry machinery: atomic writes,
        #: integrity stamps, quarantine of corrupt entries.  Enabled
        #: unconditionally — a store you constructed is a store you
        #: meant to use, independent of ``REPRO_TRACE_CACHE``.
        self._cache = TraceCache(
            root=self.root,
            enabled=True,
            telemetry=telemetry,
            verify=verify,
            source_label=None,
        )

    # ------------------------------------------------------------------
    # digest-keyed surface (the shared-store contract)
    # ------------------------------------------------------------------
    def get_digest(self, digest: str) -> Optional["Trace"]:
        """Load the trace stored under ``digest``, or None.

        A torn, stale, or integrity-failed entry is quarantined and
        reported as a miss — the caller re-simulates.
        """
        return self._cache.get_by_digest(digest)

    def put_digest(self, digest: str, trace: "Trace") -> Optional[Path]:
        """Store ``trace`` under ``digest`` (atomic, same-key locked)."""
        with _key_lock(self.root, digest):
            return self._cache.put_by_digest(digest, trace)

    def has_digest(self, digest: str) -> bool:
        """Whether an entry file exists for ``digest`` (no verification)."""
        return (
            self._cache._entry_path(digest).exists()
            or self._cache._legacy_path(digest).exists()
        )

    def __contains__(self, digest: str) -> bool:
        return self.has_digest(digest)

    def digests(self) -> Iterator[str]:
        """Yield every stored entry's digest (unverified directory scan)."""
        from repro.runtime.hashing import CACHE_FORMAT_VERSION

        version_dir = self.root / f"v{CACHE_FORMAT_VERSION}"
        if not version_dir.is_dir():
            return
        for shard in sorted(version_dir.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix in (".npz", ".pkl"):
                    yield entry.stem

    # ------------------------------------------------------------------
    # config-keyed convenience (the checkpoint contract)
    # ------------------------------------------------------------------
    def get(self, config: "CampaignConfig") -> Optional["Trace"]:
        from repro.runtime.hashing import config_digest

        return self.get_digest(config_digest(config))

    def path_for(self, config: "CampaignConfig") -> Path:
        """Primary entry path for ``config`` (exists only once stored)."""
        return self._cache.path_for(config)

    def put(self, config: "CampaignConfig", trace: "Trace") -> Optional[Path]:
        from repro.runtime.hashing import config_digest

        return self.put_digest(config_digest(config), trace)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        return self._cache.telemetry

    @telemetry.setter
    def telemetry(self, value) -> None:
        self._cache.telemetry = value

    def quarantine_dir(self) -> Path:
        return self._cache.quarantine_dir()

    def stats(self) -> Dict[str, int]:
        return self._cache.stats()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ArtifactStore({self.root}, hits={stats['hits']}, "
            f"misses={stats['misses']}, writes={stats['writes']}, "
            f"quarantined={stats['quarantined']})"
        )


__all__ = ["ArtifactStore"]
