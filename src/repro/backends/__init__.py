"""Pluggable execution backends for campaign dispatch.

:class:`~repro.runtime.pool.CampaignPool` owns dispatch *policy*
(waves, retries, the circuit breaker, checkpoint resume); a backend
owns the *mechanism* — where an attempt actually executes.  Three ship
in-tree, all registered by name for ``RunOptions(backend=...)`` and
``repro campaign --backend ...``:

============  ==========================================================
``inline``    Serial, in the dispatcher's process.  The determinism
              reference and the degradation target.
``local-pool``  A ``ProcessPoolExecutor`` on this machine (the
              default): hard-kill/respawn of hung or dead workers,
              per-wave timeouts.
``work-queue``  A filesystem queue drained by embedded children or
              external ``repro worker`` processes on any host; results
              flow through a shared :class:`ArtifactStore`.
============  ==========================================================

The backend never affects simulated content: the same
:class:`~repro.options.RunOptions` produces bit-identical traces
(equal ``trace_digest``) on every backend, chaos injection included —
``tests/backends/test_backend_parity.py`` holds the line.

See ``docs/BACKENDS.md`` for the protocol contract and a guide to
writing (and registering) a custom backend.
"""

from repro.backends.artifacts import ArtifactStore
from repro.backends.base import (
    BACKENDS,
    BackendCapabilities,
    BackendError,
    BackendUnavailable,
    DEFAULT_BACKEND,
    ExecutionBackend,
    OUTCOME_KINDS,
    TaskOutcome,
    TaskSpec,
    backend_names,
    create_backend,
    execute_task,
    register_backend,
)
from repro.backends.inline import InlineBackend
from repro.backends.local_pool import LocalPoolBackend
from repro.backends.workqueue import WorkQueueBackend, drain_queue

__all__ = [
    "ArtifactStore",
    "BACKENDS",
    "BackendCapabilities",
    "BackendError",
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "InlineBackend",
    "LocalPoolBackend",
    "OUTCOME_KINDS",
    "TaskOutcome",
    "TaskSpec",
    "WorkQueueBackend",
    "backend_names",
    "create_backend",
    "drain_queue",
    "execute_task",
    "register_backend",
]
