"""``LocalPoolBackend``: this machine's cores behind the backend protocol.

Today's ``ProcessPoolExecutor`` dispatch, extracted from
:class:`~repro.runtime.pool.CampaignPool` and put behind
:class:`~repro.backends.base.ExecutionBackend`.  Semantics preserved:

* A wave's tasks are submitted as futures and collected in task order
  under one shared wall-clock deadline (``poll(timeout_s=...)``).
* An attempt that raises is an ``"error"`` (the worker survives); a
  worker that dies mid-attempt (OOM-kill, chaos ``os._exit``) breaks
  the executor and every unresolved task reports ``"lost"``; an
  attempt past the deadline reports ``"timeout"``.
* ``kill()`` tears the executor down *hard* — hung workers are
  SIGTERMed — and the next ``submit_wave`` builds a fresh one.

Hard-kill no longer reaches into ``executor._processes`` (a private
attr of the stdlib executor): each worker announces its PID through a
multiprocessing queue from the executor's ``initializer`` hook, and
``kill()`` signals exactly the PIDs that announced — public API only.
"""

import concurrent.futures
import multiprocessing
import os
import signal
import time
from typing import Any, List, Optional, Sequence

from repro.backends.base import (
    BackendCapabilities,
    BackendUnavailable,
    TaskOutcome,
    TaskSpec,
    execute_task,
    register_backend,
)


def _announce_pid(pid_queue) -> None:
    """Executor initializer: each worker reports its PID to the parent.

    Runs once per worker process at spawn; the queue travels to workers
    through the executor's ``initargs`` (multiprocessing's picklers
    handle queues), so the parent learns every worker's identity
    without touching executor internals.
    """
    pid_queue.put(os.getpid())


class LocalPoolBackend:
    """Process-pool execution on the local machine."""

    name = "local-pool"
    executor_label = "process"
    capabilities = BackendCapabilities(
        supports_timeout=True,
        supports_kill=True,
        distributed=False,
        serial=False,
    )

    def __init__(
        self, workers: Optional[int] = None, mp_context: Optional[str] = None
    ):
        """
        Args:
            workers: Worker process count (default: CPU count).
            mp_context: multiprocessing start method (``"fork"`` /
                ``"spawn"``); ``None`` uses the platform default.
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.mp_context = mp_context
        self._executor = None
        self._pid_queue = None
        self._pids: set = set()

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is not None:
            return self._executor
        try:
            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else multiprocessing.get_context()
            )
            self._pid_queue = ctx.SimpleQueue()
            self._pids = set()
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers or os.cpu_count() or 1,
                mp_context=ctx,
                initializer=_announce_pid,
                initargs=(self._pid_queue,),
            )
        except (OSError, ValueError, RuntimeError) as err:
            # e.g. sandboxed environments without /dev/shm
            self._executor = None
            self._pid_queue = None
            raise BackendUnavailable(
                f"cannot start a local process pool: {err}"
            ) from err
        return self._executor

    def _drain_pids(self) -> None:
        queue = self._pid_queue
        if queue is None:
            return
        try:
            while not queue.empty():
                self._pids.add(queue.get())
        except (OSError, ValueError):  # pragma: no cover - closed queue
            pass

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def submit_wave(self, tasks: Sequence[TaskSpec]) -> Any:
        executor = self._ensure_executor()
        try:
            return [executor.submit(execute_task, task) for task in tasks]
        except (OSError, ValueError, RuntimeError) as err:
            raise BackendUnavailable(
                f"local process pool rejected the wave: {err}"
            ) from err

    def poll(
        self, handle: Any, timeout_s: Optional[float] = None
    ) -> List[TaskOutcome]:
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        outcomes: List[TaskOutcome] = []
        for index, future in enumerate(handle):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                trace = future.result(timeout=remaining)
                outcome = TaskOutcome(
                    index=index, digest="", kind="ok", trace=trace
                )
            except concurrent.futures.TimeoutError:
                outcome = TaskOutcome(
                    index=index, digest="", kind="timeout",
                    error="wave deadline exceeded",
                )
            except concurrent.futures.BrokenExecutor as err:
                outcome = TaskOutcome(
                    index=index, digest="", kind="lost",
                    error=type(err).__name__,
                )
            except Exception as err:
                outcome = TaskOutcome(
                    index=index, digest="", kind="error",
                    error=type(err).__name__,
                )
            outcomes.append(outcome)
        return outcomes

    def kill(self) -> None:
        """Tear the executor down hard, terminating hung workers."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        self._drain_pids()
        executor.shutdown(wait=False, cancel_futures=True)
        for pid in self._pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except (OSError, ProcessLookupError):  # pragma: no cover
                pass  # already gone — exactly what we wanted
        self._pids = set()
        self._pid_queue = None

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        self._pid_queue = None
        self._pids = set()


@register_backend("local-pool")
def _make_local_pool(workers=None, telemetry=None, mp_context=None):
    return LocalPoolBackend(workers=workers, mp_context=mp_context)


__all__ = ["LocalPoolBackend"]
