"""``WorkQueueBackend``: a filesystem work queue drained by any host.

The distributed backend: the dispatcher writes one file per attempt
into a queue directory, and *drainer* processes — embedded children it
spawns itself, or completely external ``repro worker <dir>`` processes
on any machine sharing the filesystem — claim, simulate, and ack them.
Results land in a shared :class:`~repro.backends.artifacts.ArtifactStore`,
so the store (not any process) is the unit of progress: a sweep killed
mid-wave resumes from whatever shards any drainer finished, on any
backend.

Queue layout (all writes atomic; claims are a single ``os.rename``, the
POSIX test-and-set, so two drainers can never run the same task)::

    <root>/tasks/<name>.task          # pending: pickled TaskSpec
    <root>/claims/<name>.task.<wid>   # claimed by drainer <wid>
    <root>/done/<name>.task.json      # ok ack (trace is in the store)
    <root>/failed/<name>.task.json    # error ack ({"error": ...})
    <root>/store/...                  # ArtifactStore of completed traces
    <root>/STOP                       # sentinel: drainers exit

Failure semantics map onto the backend outcome kinds: an attempt that
raises in a drainer acks ``failed/`` (``"error"``); a drainer that dies
mid-attempt (chaos ``os._exit``, OOM-kill) leaves its claim file as the
tombstone — the dispatcher notices the dead process and reports
``"lost"``; a wave past its deadline reports ``"timeout"``.  Chaos
draws are keyed on ``(digest, attempt)`` inside the drainer, identical
to every other backend, which is what keeps chaotic work-queue sweeps
digest-equal to inline ones.
"""

import json
import multiprocessing
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.backends.artifacts import ArtifactStore
from repro.backends.base import (
    BackendCapabilities,
    BackendUnavailable,
    TaskOutcome,
    TaskSpec,
    execute_task,
    register_backend,
)

#: Sentinel file name; its presence tells every drainer to exit.
STOP_SENTINEL = "STOP"

#: How often a drainer re-checks an empty queue (and the dispatcher
#: re-checks for acks).
DEFAULT_POLL_INTERVAL_S = 0.05


def _queue_dirs(root: Path) -> Dict[str, Path]:
    return {
        "tasks": root / "tasks",
        "claims": root / "claims",
        "done": root / "done",
        "failed": root / "failed",
    }


def _ensure_layout(root: Path) -> Dict[str, Path]:
    dirs = _queue_dirs(root)
    for path in dirs.values():
        path.mkdir(parents=True, exist_ok=True)
    return dirs


def _write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Atomic JSON write (temp file + ``os.replace``)."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def drain_queue(
    root: Union[str, os.PathLike],
    worker_id: Optional[str] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL_S,
    max_tasks: Optional[int] = None,
    stop_when_empty: bool = False,
) -> Dict[str, Any]:
    """Drain a work-queue directory: the ``repro worker`` body.

    Claims pending tasks one at a time (atomic ``os.rename`` into
    ``claims/``), simulates each, stores the trace in the queue's
    :class:`ArtifactStore`, and acks ``done/`` or ``failed/``.  Runs
    until the ``STOP`` sentinel appears, ``max_tasks`` tasks have been
    processed, or — with ``stop_when_empty`` — the queue runs dry.

    Safe to run many of, on many hosts: a claim either succeeds for
    exactly one drainer or raises ``FileNotFoundError`` for the losers,
    and same-key store writes are serialized by the store's lock.

    Returns ``{"worker", "drained", "failed"}``.
    """
    root = Path(root)
    dirs = _ensure_layout(root)
    store = ArtifactStore(root / "store")
    wid = worker_id or f"worker-{os.getpid()}"
    stop_path = root / STOP_SENTINEL
    drained = 0
    failed = 0
    while not stop_path.exists():
        if max_tasks is not None and drained + failed >= max_tasks:
            break
        claim_path = None
        for entry in sorted(dirs["tasks"].glob("*.task")):
            target = dirs["claims"] / f"{entry.name}.{wid}"
            try:
                os.rename(entry, target)
            except OSError:
                continue  # another drainer won this one
            claim_path = target
            break
        if claim_path is None:
            if stop_when_empty:
                break
            time.sleep(poll_interval)
            continue
        name = claim_path.name[: -len(f".{wid}")]
        try:
            with claim_path.open("rb") as fh:
                task: TaskSpec = pickle.load(fh)
            # Chaos worker-death lands here as os._exit — no ack, claim
            # left behind as the tombstone the dispatcher keys on.
            trace = execute_task(task)
            store.put_digest(task.digest, trace)
            _write_json(
                dirs["done"] / f"{name}.json",
                {"digest": task.digest, "worker": wid},
            )
            drained += 1
        except Exception as err:
            _write_json(
                dirs["failed"] / f"{name}.json",
                {
                    "error": type(err).__name__,
                    "detail": str(err)[:500],
                    "worker": wid,
                },
            )
            failed += 1
        finally:
            try:
                claim_path.unlink()
            except OSError:
                pass
    return {"worker": wid, "drained": drained, "failed": failed}


class WorkQueueBackend:
    """File-queue execution: any process on any host can do the work."""

    name = "work-queue"
    executor_label = "work-queue"
    capabilities = BackendCapabilities(
        supports_timeout=True,
        supports_kill=True,
        distributed=True,
        serial=False,
    )

    def __init__(
        self,
        root: Optional[Union[str, os.PathLike]] = None,
        workers: Optional[int] = None,
        embedded: bool = True,
        poll_interval: float = DEFAULT_POLL_INTERVAL_S,
        claim_timeout_s: Optional[float] = None,
        mp_context: Optional[str] = None,
    ):
        """
        Args:
            root: Queue directory (shared filesystem for cross-host
                drains).  ``None`` creates a private temp directory —
                embedded-only, since nobody else knows the path.
            workers: Embedded drainer count (default: CPU count).
                Ignored when ``embedded`` is False.
            embedded: Spawn local drainer processes alongside the
                dispatcher.  ``False`` relies entirely on external
                ``repro worker`` processes — the pool then cannot infer
                "no drainers left" and leans on the wave timeout.
            poll_interval: Dispatcher/drainer ack-poll period, seconds.
            claim_timeout_s: Reclaim a claim older than this back into
                ``tasks/`` (an external drainer presumed dead); ``None``
                disables reclaim.
            mp_context: multiprocessing start method for embedded
                drainers; ``None`` uses the platform default.
        """
        if root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-queue-")
            root = self._tmpdir.name
        else:
            self._tmpdir = None
        self.root = Path(root)
        self.workers = workers
        self.embedded = embedded
        self.poll_interval = poll_interval
        self.claim_timeout_s = claim_timeout_s
        self.mp_context = mp_context
        self._dirs = _ensure_layout(self.root)
        self.store = ArtifactStore(self.root / "store")
        self._procs: Dict[str, multiprocessing.Process] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # embedded drainers
    # ------------------------------------------------------------------
    def _ensure_drainers(self) -> None:
        if not self.embedded:
            return
        for wid, proc in list(self._procs.items()):
            if not proc.is_alive():
                proc.join(timeout=0)
                del self._procs[wid]
        want = self.workers or os.cpu_count() or 1
        if len(self._procs) >= want:
            return
        try:
            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else multiprocessing.get_context()
            )
            while len(self._procs) < want:
                self._seq += 1
                wid = f"embedded-{os.getpid()}-{self._seq}"
                proc = ctx.Process(
                    target=drain_queue,
                    kwargs={
                        "root": str(self.root),
                        "worker_id": wid,
                        "poll_interval": self.poll_interval,
                    },
                    daemon=True,
                )
                proc.start()
                self._procs[wid] = proc
        except (OSError, ValueError, RuntimeError) as err:
            raise BackendUnavailable(
                f"cannot spawn queue drainers: {err}"
            ) from err

    def _dead_drainer_ids(self) -> set:
        dead = set()
        for wid, proc in list(self._procs.items()):
            if not proc.is_alive():
                proc.join(timeout=0)
                del self._procs[wid]
                dead.add(wid)
        return dead

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def submit_wave(self, tasks: Sequence[TaskSpec]) -> Any:
        handle: Dict[str, Any] = {"tasks": {}, "resolved": {}}
        try:
            for index, task in enumerate(tasks):
                # Store dedupe: a shard someone (an earlier attempt, a
                # different dispatcher, a previous backend) already
                # completed resolves without re-queueing.
                if self.store.has_digest(task.digest):
                    trace = self.store.get_digest(task.digest)
                    if trace is not None:
                        handle["resolved"][index] = TaskOutcome(
                            index=index,
                            digest=task.digest,
                            kind="ok",
                            trace=trace,
                            attrs={"deduped": True},
                        )
                        continue
                self._seq += 1
                name = (
                    f"{os.getpid():06d}-{self._seq:06d}"
                    f"-a{task.attempt:02d}-{task.digest[:16]}.task"
                )
                fd, tmp_name = tempfile.mkstemp(
                    dir=self._dirs["tasks"], prefix=".tmp-", suffix=".part"
                )
                try:
                    with os.fdopen(fd, "wb") as fh:
                        pickle.dump(task, fh)
                    os.replace(tmp_name, self._dirs["tasks"] / name)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
                handle["tasks"][name] = (index, task)
        except OSError as err:
            raise BackendUnavailable(
                f"cannot write to queue directory {self.root}: {err}"
            ) from err
        self._ensure_drainers()
        return handle

    def _reclaim_stale_claims(self) -> None:
        if self.claim_timeout_s is None:
            return
        cutoff = time.time() - self.claim_timeout_s
        for claim in self._dirs["claims"].glob("*.task.*"):
            try:
                if claim.stat().st_mtime >= cutoff:
                    continue
                name = claim.name.rsplit(".task.", 1)[0] + ".task"
                os.rename(claim, self._dirs["tasks"] / name)
            except OSError:
                continue  # drainer finished or another dispatcher raced us

    def _claimant(self, name: str) -> Optional[str]:
        for claim in self._dirs["claims"].glob(f"{name}.*"):
            return claim.name[len(name) + 1 :]
        return None

    def poll(
        self, handle: Any, timeout_s: Optional[float] = None
    ) -> List[TaskOutcome]:
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        outcomes: Dict[int, TaskOutcome] = dict(handle["resolved"])
        tasks: Dict[str, Tuple[int, TaskSpec]] = handle["tasks"]
        while len(outcomes) < len(tasks) + len(handle["resolved"]):
            dead = self._dead_drainer_ids()
            for name, (index, task) in tasks.items():
                if index in outcomes:
                    continue
                done_ack = self._dirs["done"] / f"{name}.json"
                failed_ack = self._dirs["failed"] / f"{name}.json"
                if done_ack.exists():
                    trace = self.store.get_digest(task.digest)
                    if trace is not None:
                        outcomes[index] = TaskOutcome(
                            index=index,
                            digest=task.digest,
                            kind="ok",
                            trace=trace,
                        )
                    else:
                        # Acked but the stored entry failed verification
                        # (torn write): treat like a dead worker — retry.
                        outcomes[index] = TaskOutcome(
                            index=index,
                            digest=task.digest,
                            kind="lost",
                            error="stored result failed verification",
                        )
                elif failed_ack.exists():
                    ack = _read_json(failed_ack) or {}
                    outcomes[index] = TaskOutcome(
                        index=index,
                        digest=task.digest,
                        kind="error",
                        error=ack.get("error", "unknown"),
                        attrs={"worker": ack.get("worker")},
                    )
                else:
                    claimant = self._claimant(name)
                    if claimant is not None and claimant in dead:
                        # The drainer died mid-attempt (chaos os._exit,
                        # OOM-kill): its claim is the tombstone.
                        outcomes[index] = TaskOutcome(
                            index=index,
                            digest=task.digest,
                            kind="lost",
                            error=f"drainer {claimant} died mid-attempt",
                        )
            if len(outcomes) >= len(tasks) + len(handle["resolved"]):
                break
            if self.embedded and not self._procs:
                # Every embedded drainer is gone; nothing will ever ack
                # the rest of this wave.
                for name, (index, task) in tasks.items():
                    if index not in outcomes:
                        outcomes[index] = TaskOutcome(
                            index=index,
                            digest=task.digest,
                            kind="lost",
                            error="all queue drainers died",
                        )
                break
            if deadline is not None and time.monotonic() >= deadline:
                for name, (index, task) in tasks.items():
                    if index not in outcomes:
                        outcomes[index] = TaskOutcome(
                            index=index,
                            digest=task.digest,
                            kind="timeout",
                            error="wave deadline exceeded",
                        )
                break
            self._reclaim_stale_claims()
            time.sleep(self.poll_interval)
        return [outcomes[index] for index in sorted(outcomes)]

    def kill(self) -> None:
        """Terminate embedded drainers and cancel everything queued.

        Unclaimed task files are removed (the pool resubmits what it
        still wants, with bumped attempt numbers); completed results
        stay in the store — killing the backend never loses finished
        work.
        """
        for wid, proc in list(self._procs.items()):
            try:
                proc.terminate()
                proc.join(timeout=2.0)
            except (OSError, ValueError):  # pragma: no cover - best effort
                pass
            del self._procs[wid]
        for pending in self._dirs["tasks"].glob("*.task"):
            try:
                pending.unlink()
            except OSError:
                pass
        for claim in self._dirs["claims"].glob("*.task.*"):
            try:
                claim.unlink()
            except OSError:
                pass

    def close(self) -> None:
        """Stop drainers (embedded and external) and release the queue."""
        stop_path = self.root / STOP_SENTINEL
        try:
            stop_path.touch()
        except OSError:  # pragma: no cover - queue dir already gone
            pass
        for wid, proc in list(self._procs.items()):
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            del self._procs[wid]
        try:
            stop_path.unlink()
        except OSError:
            pass
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


@register_backend("work-queue")
def _make_work_queue(
    workers=None, telemetry=None, mp_context=None, **options
):
    return WorkQueueBackend(
        workers=workers, mp_context=mp_context, **options
    )


__all__ = [
    "DEFAULT_POLL_INTERVAL_S",
    "STOP_SENTINEL",
    "WorkQueueBackend",
    "drain_queue",
]
