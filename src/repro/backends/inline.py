"""``InlineBackend``: serial, in-process, chaos-compatible execution.

The reference backend: every attempt runs in the dispatcher's own
process, one at a time, in wave order.  No concurrency, no IPC, no
teardown — which makes it the backend of record for determinism
(parity suites compare the others against it), the only backend whose
attempts can observe into a live :class:`repro.obs.Telemetry` bundle,
and the degradation target when pooled environments break.

Chaos compatibility: a :class:`~repro.resilience.chaos.ChaosPolicy`
worker-kill draw lands as :class:`~repro.resilience.chaos.WorkerKilled`
(an ``"error"`` outcome — the "worker", this process, survives), so
retry accounting is exercised without taking the caller down.
"""

from typing import Any, List, Optional, Sequence

from repro.backends.base import (
    BackendCapabilities,
    TaskOutcome,
    TaskSpec,
    execute_task,
    register_backend,
)


class InlineBackend:
    """Runs every attempt serially in the calling process."""

    name = "inline"
    executor_label = "inline"
    capabilities = BackendCapabilities(
        supports_timeout=False,
        supports_kill=False,
        distributed=False,
        serial=True,
    )

    def __init__(self, telemetry=None):
        """
        Args:
            telemetry: Optional :class:`repro.obs.Telemetry`; attempts
                observe into it (spans, cache traffic) since they share
                the caller's process.
        """
        self.telemetry = telemetry

    def submit_wave(self, tasks: Sequence[TaskSpec]) -> Any:
        return list(tasks)

    def poll(
        self, handle: Any, timeout_s: Optional[float] = None
    ) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        for index, task in enumerate(handle):
            try:
                trace = execute_task(
                    task, telemetry=self.telemetry, in_process=True
                )
            except Exception as err:
                outcomes.append(
                    TaskOutcome(
                        index=index,
                        digest=task.digest,
                        kind="error",
                        error=type(err).__name__,
                    )
                )
            else:
                outcomes.append(
                    TaskOutcome(
                        index=index, digest=task.digest, kind="ok", trace=trace
                    )
                )
        return outcomes

    def kill(self) -> None:
        """Nothing to tear down: attempts run to completion in-process."""

    def close(self) -> None:
        """Nothing to release."""


@register_backend("inline")
def _make_inline(workers=None, telemetry=None, mp_context=None):
    return InlineBackend(telemetry=telemetry)


__all__ = ["InlineBackend"]
