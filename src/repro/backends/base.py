"""The ``ExecutionBackend`` protocol: where campaign attempts actually run.

:class:`~repro.runtime.pool.CampaignPool` owns *policy* — wave-based
dispatch, retry accounting, the circuit breaker, checkpoint resume —
and delegates *mechanism* (where an attempt executes) to a backend.
The boundary is four methods and a capability record:

* :meth:`ExecutionBackend.submit_wave` — hand the backend one wave of
  :class:`TaskSpec` attempts; returns an opaque wave handle.
* :meth:`ExecutionBackend.poll` — block (up to a timeout) until every
  task in the wave resolves; returns one :class:`TaskOutcome` per task.
* :meth:`ExecutionBackend.kill` — hard-stop the current wave, tearing
  down any workers; the next ``submit_wave`` revives them.
* :meth:`ExecutionBackend.close` — release every resource; idempotent.

Outcome *kinds* carry the recovery semantics the pool keys on:

* ``"ok"`` — the attempt produced a trace.
* ``"error"`` — the attempt raised but the worker survived; retry
  without tearing anything down.
* ``"lost"`` — the worker died mid-attempt (OOM-kill, chaos ``os._exit``,
  dead queue drainer); the pool kills + respawns the backend.
* ``"timeout"`` — the attempt exceeded its wall-clock budget; treated
  like a dead worker (hung processes must be reclaimed).

Backends register by name in :data:`BACKENDS` (see
:func:`register_backend`), so ``RunOptions(backend="work-queue")`` and
``repro campaign --backend work-queue`` resolve through one registry
that downstream code can extend.  See ``docs/BACKENDS.md``.
"""

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    TYPE_CHECKING,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign import CampaignConfig
    from repro.resilience.chaos import ChaosPolicy
    from repro.workload.trace import Trace

#: The default backend name everywhere one is not chosen explicitly —
#: today's process-pool behavior.
DEFAULT_BACKEND = "local-pool"

#: Outcome kinds a backend may report (see module docstring).
OUTCOME_KINDS = ("ok", "error", "lost", "timeout")


class BackendError(RuntimeError):
    """Base class for backend-layer failures."""


class BackendUnavailable(BackendError):
    """The backend cannot accept work right now (e.g. a sandbox without
    ``/dev/shm``, an unreachable queue directory).  The pool degrades to
    inline execution instead of failing the sweep."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can promise the dispatch loop.

    Attributes:
        supports_timeout: ``poll(timeout_s=...)`` is honored; attempts
            past the deadline come back as ``"timeout"`` outcomes.
            Backends without it simply run every attempt to completion.
        supports_kill: ``kill()`` actually terminates in-flight work
            (hung workers are reclaimed).  Backends without it treat
            ``kill()`` as a cooperative reset.
        distributed: Work may execute outside this machine/process tree,
            so the pool dispatches even single-config, single-worker
            waves through it (a remote drainer may do the work).
        serial: Attempts run one at a time in the calling process; the
            pool reports ``workers=1`` and skips concurrency-only paths.
    """

    supports_timeout: bool = False
    supports_kill: bool = False
    distributed: bool = False
    serial: bool = False


@dataclass(frozen=True)
class TaskSpec:
    """One dispatchable simulation attempt (picklable for any backend).

    ``digest`` is the config's content address
    (:func:`repro.runtime.hashing.config_digest`); ``attempt`` is the
    0-based retry index, which chaos policies key their deterministic
    fault draws on — the same attempt makes the same draw on every
    backend, which is what keeps chaos runs digest-identical across
    inline, local-pool, and work-queue execution.
    """

    config: "CampaignConfig"
    digest: str
    attempt: int = 0
    chaos: Optional["ChaosPolicy"] = None


@dataclass
class TaskOutcome:
    """Resolution of one submitted task within its wave.

    ``index`` is the task's position in the submitted wave (the pool
    maps it back to the sweep-level config index); ``kind`` is one of
    :data:`OUTCOME_KINDS`.
    """

    index: int
    digest: str
    kind: str
    trace: Optional["Trace"] = None
    error: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in OUTCOME_KINDS:
            raise ValueError(
                f"outcome kind {self.kind!r} not in {OUTCOME_KINDS}"
            )
        if self.kind == "ok" and self.trace is None:
            raise ValueError("an 'ok' outcome must carry a trace")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Structural protocol every execution backend satisfies.

    Implementations are plain classes — no inheritance required; the
    pool only touches this surface.  ``name`` identifies the backend in
    metrics labels and ``backend.wave`` spans; ``executor_label`` is
    stamped into each trace's ``metadata["runtime"]["executor"]``.
    """

    name: str
    executor_label: str
    capabilities: BackendCapabilities

    def submit_wave(self, tasks: Sequence[TaskSpec]) -> Any:
        """Accept one wave of attempts; returns an opaque wave handle.

        Raises :class:`BackendUnavailable` when the backend cannot take
        work (the pool falls back to inline execution).
        """
        ...  # pragma: no cover - protocol

    def poll(
        self, handle: Any, timeout_s: Optional[float] = None
    ) -> List[TaskOutcome]:
        """Resolve a wave: one :class:`TaskOutcome` per submitted task."""
        ...  # pragma: no cover - protocol

    def kill(self) -> None:
        """Hard-stop in-flight work; the next submit revives workers."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release all resources; must be idempotent."""
        ...  # pragma: no cover - protocol


def execute_task(task: TaskSpec, telemetry=None, in_process: bool = False):
    """Run one attempt: the worker body shared by every backend.

    Chaos worker-death injection happens here — inside the attempt, the
    way a real OOM-kill lands — so dispatchers only ever observe the
    dead worker (subprocess) or :class:`~repro.resilience.chaos.WorkerKilled`
    (``in_process=True``).

    ``telemetry`` is only ever passed on in-process paths: worker
    processes cannot stream telemetry back (and a live bundle does not
    pickle), but in-process attempts observe into the caller's bundle,
    so an instrumented serial sweep profiles as the full
    sweep → campaign → phase span tree.
    """
    from repro.campaign import run_campaign

    if task.chaos is not None:
        task.chaos.kill_worker(task.digest, task.attempt, not in_process)
    if telemetry is not None:
        from repro.options import RunOptions

        return run_campaign(task.config, options=RunOptions(telemetry=telemetry))
    return run_campaign(task.config)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

#: name -> factory(workers=..., telemetry=..., mp_context=..., **options)
BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str):
    """Decorator registering a backend factory under ``name``.

    The factory is called as ``factory(workers=..., telemetry=...,
    mp_context=..., **backend_options)`` and must return an object
    satisfying :class:`ExecutionBackend`.  Registering an existing name
    replaces it (tests and downstream packages may shadow built-ins).
    """

    def wrap(factory: Callable[..., ExecutionBackend]):
        BACKENDS[name] = factory
        return factory

    return wrap


def backend_names() -> List[str]:
    """Registered backend names, sorted (the CLI's ``--backend`` choices)."""
    return sorted(BACKENDS)


def create_backend(
    name: str,
    workers: Optional[int] = None,
    telemetry=None,
    mp_context: Optional[str] = None,
    options: Optional[Dict[str, Any]] = None,
) -> ExecutionBackend:
    """Instantiate a registered backend by name.

    ``options`` is the free-form ``RunOptions.backend_options`` mapping
    (e.g. ``{"root": "/shared/queue"}`` for ``work-queue``); unknown
    keys surface as the factory's own ``TypeError`` so typos fail loudly.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"registered: {', '.join(backend_names())}"
        ) from None
    return factory(
        workers=workers,
        telemetry=telemetry,
        mp_context=mp_context,
        **dict(options or {}),
    )


__all__ = [
    "BACKENDS",
    "BackendCapabilities",
    "BackendError",
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "OUTCOME_KINDS",
    "TaskOutcome",
    "TaskSpec",
    "backend_names",
    "create_backend",
    "execute_task",
    "register_backend",
]
