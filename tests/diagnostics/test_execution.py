import pytest

from repro.diagnostics.collective_ops import (
    CollectiveKind,
    CollectiveOp,
    RankProgram,
    spmd_program_set,
    training_loop_program,
)
from repro.diagnostics.execution import simulate_collectives
from repro.diagnostics.scenarios import (
    RankFault,
    RankFaultKind,
    mismatched_program_set,
)


def test_healthy_run_completes_everything():
    programs = spmd_program_set(n_ranks=4, n_steps=2)
    records = simulate_collectives(programs)
    for record in records:
        assert all(e.completed for e in record.entries)
        assert len(record.entries) == len(programs[0])


def test_completion_times_synchronized():
    programs = spmd_program_set(n_ranks=4, n_steps=1)
    records = simulate_collectives(programs)
    for seq in range(len(programs[0])):
        finishes = {r.entry(seq).completed_at for r in records}
        assert len(finishes) == 1  # a collective ends for all ranks at once


def test_start_times_ordered_within_rank():
    programs = spmd_program_set(n_ranks=3, n_steps=2)
    records = simulate_collectives(programs)
    for record in records:
        starts = [e.started_at for e in record.entries]
        assert starts == sorted(starts)


def test_crash_blocks_peers_at_the_faulty_collective():
    programs = spmd_program_set(n_ranks=4, n_steps=2)
    fault = RankFault(rank=2, kind=RankFaultKind.CRASH, at_op=3)
    records = simulate_collectives(programs, faults=[fault])
    by_rank = {r.rank: r for r in records}
    # Everything before op 3 completed on every rank.
    for record in records:
        for entry in record.entries[:3]:
            assert entry.completed
    # Rank 2 never started op 3; peers started but never completed.
    assert not by_rank[2].entry(3).started
    for rank in (0, 1, 3):
        entry = by_rank[rank].entry(3)
        assert entry.started and not entry.completed
    # Nothing after op 3 was issued by anyone.
    for record in records:
        assert record.last_completed_seq() == 2
        assert all(not e.started for e in record.entries[4:])


def test_stuck_outside_has_same_footprint_as_crash():
    programs = spmd_program_set(n_ranks=3, n_steps=1)
    crash = simulate_collectives(
        programs,
        faults=[RankFault(rank=0, kind=RankFaultKind.CRASH, at_op=2)],
    )
    programs2 = spmd_program_set(n_ranks=3, n_steps=1)
    stuck = simulate_collectives(
        programs2,
        faults=[RankFault(rank=0, kind=RankFaultKind.STUCK_OUTSIDE, at_op=2)],
    )
    for a, b in zip(crash, stuck):
        assert [e.started for e in a.entries] == [e.started for e in b.entries]
        assert [e.completed for e in a.entries] == [
            e.completed for e in b.entries
        ]


def test_network_hang_everyone_started_nobody_finished():
    programs = spmd_program_set(n_ranks=4, n_steps=2)
    fault = RankFault(rank=1, kind=RankFaultKind.NETWORK_HANG, at_op=2)
    records = simulate_collectives(programs, faults=[fault])
    for record in records:
        entry = record.entry(2)
        assert entry.started and not entry.completed


def test_mismatched_programs_deadlock_with_all_present():
    programs = mismatched_program_set(n_ranks=4, buggy_rank=3, swap_at=2)
    records = simulate_collectives(programs)
    hang_seq = min(
        e.seq
        for r in records
        for e in r.entries
        if e.started and not e.completed
    )
    signatures = {r.entry(hang_seq).signature for r in records}
    assert len(signatures) > 1  # divergent ops at the hang point


def test_duplicate_ranks_rejected():
    program = training_loop_program(0)
    with pytest.raises(ValueError, match="duplicate"):
        simulate_collectives([program, program])


def test_fault_on_unknown_rank_rejected():
    programs = spmd_program_set(2)
    with pytest.raises(ValueError, match="unknown rank"):
        simulate_collectives(
            programs,
            faults=[RankFault(rank=9, kind=RankFaultKind.CRASH, at_op=0)],
        )


def test_collective_op_validation():
    with pytest.raises(ValueError):
        CollectiveOp(CollectiveKind.ALL_REDUCE, payload_mb=0.0)
    op = CollectiveOp(CollectiveKind.ALL_REDUCE, payload_mb=64.0)
    same = CollectiveOp(CollectiveKind.ALL_REDUCE, payload_mb=64.0, label="x")
    other = CollectiveOp(CollectiveKind.BARRIER, payload_mb=64.0)
    assert op.matches(same)
    assert not op.matches(other)
