import numpy as np
import pytest

from repro.core.taxonomy import FailureDomain
from repro.diagnostics.collective_ops import spmd_program_set
from repro.diagnostics.diagnosis import (
    MismatchedCollectiveError,
    TimeoutVerdict,
    diagnose_timeout,
    static_spmd_check,
)
from repro.diagnostics.execution import simulate_collectives
from repro.diagnostics.scenarios import (
    RankFault,
    RankFaultKind,
    mismatched_program_set,
    random_scenario,
)


def run_and_diagnose(programs, faults=()):
    return diagnose_timeout(simulate_collectives(programs, faults=faults))


def test_healthy_run_diagnosed_clean():
    result = run_and_diagnose(spmd_program_set(4, n_steps=2))
    assert result.verdict is TimeoutVerdict.NO_FAULT
    assert result.culprit_ranks == ()


def test_crashed_rank_identified():
    fault = RankFault(rank=2, kind=RankFaultKind.CRASH, at_op=4)
    result = run_and_diagnose(spmd_program_set(4, n_steps=2), [fault])
    assert result.verdict is TimeoutVerdict.MISSING_RANKS
    assert result.culprit_ranks == (2,)
    assert result.collective_seq == 4
    # Hardware ruled out: the missing rank never even issued the op.
    assert FailureDomain.HARDWARE_INFRA not in result.suspect_domains


def test_stuck_dataloader_identified_as_missing_rank():
    fault = RankFault(
        rank=0, kind=RankFaultKind.STUCK_OUTSIDE, at_op=1,
        detail="dataloader",
    )
    result = run_and_diagnose(spmd_program_set(3, n_steps=1), [fault])
    assert result.verdict is TimeoutVerdict.MISSING_RANKS
    assert result.culprit_ranks == (0,)


def test_network_hang_flags_in_collective():
    fault = RankFault(rank=1, kind=RankFaultKind.NETWORK_HANG, at_op=3)
    result = run_and_diagnose(spmd_program_set(4, n_steps=2), [fault])
    assert result.verdict is TimeoutVerdict.IN_COLLECTIVE_HANG
    assert result.collective_seq == 3
    # User program ruled out; network/hardware remain suspect.
    assert FailureDomain.USER_PROGRAM not in result.suspect_domains
    assert FailureDomain.HARDWARE_INFRA in result.suspect_domains


def test_mismatched_collectives_identify_buggy_rank():
    programs = mismatched_program_set(n_ranks=5, buggy_rank=4, swap_at=2)
    result = run_and_diagnose(programs)
    assert result.verdict is TimeoutVerdict.MISMATCHED_COLLECTIVES
    assert result.culprit_ranks == (4,)
    assert result.suspect_domains == (FailureDomain.USER_PROGRAM,)


def test_static_checker_catches_what_execution_would_deadlock_on():
    programs = mismatched_program_set(n_ranks=4, buggy_rank=1, swap_at=3)
    with pytest.raises(MismatchedCollectiveError) as excinfo:
        static_spmd_check(programs)
    # The raised seq is exactly where execution hangs.
    records = simulate_collectives(programs)
    hang_seq = min(
        e.seq
        for r in records
        for e in r.entries
        if e.started and not e.completed
    )
    assert excinfo.value.seq == hang_seq


def test_static_checker_passes_correct_programs():
    static_spmd_check(spmd_program_set(8, n_steps=3))  # no raise


def test_static_checker_catches_length_divergence():
    programs = spmd_program_set(3, n_steps=2)
    programs[1].ops.pop()
    with pytest.raises(MismatchedCollectiveError):
        static_spmd_check(programs)


def test_diagnosis_render():
    fault = RankFault(rank=2, kind=RankFaultKind.CRASH, at_op=1)
    result = run_and_diagnose(spmd_program_set(3, n_steps=1), [fault])
    text = result.render()
    assert "missing_ranks" in text
    assert "[2]" in text


def test_diagnoser_accuracy_over_random_scenarios():
    """The diagnoser must recover verdict + culprits on sampled faults."""
    rng = np.random.default_rng(0)
    correct_verdict = 0
    correct_culprits = 0
    trials = 60
    for _ in range(trials):
        scenario = random_scenario(rng)
        result = diagnose_timeout(
            simulate_collectives(scenario.programs, faults=scenario.faults)
        )
        if result.verdict.value == scenario.truth_verdict:
            correct_verdict += 1
        if scenario.truth_verdict == "in_collective_hang":
            # Culprit rank is fundamentally unobservable from flight
            # records alone (everyone is inside); no culprit expected.
            correct_culprits += result.culprit_ranks == ()
        elif result.culprit_ranks == scenario.truth_culprits:
            correct_culprits += 1
    assert correct_verdict == trials
    assert correct_culprits == trials


def test_empty_records_rejected():
    with pytest.raises(ValueError):
        diagnose_timeout([])
