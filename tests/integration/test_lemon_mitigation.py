"""Section IV-A's mitigation claim, end to end.

Run paired campaigns with a deliberately lemon-heavy cluster — one with the
lemon-detection sweeper quarantining nodes, one without — and check the
detector reduces hardware interruptions of larger jobs (the paper: 512+-GPU
job failures dropped from 14% to 4% after quarantining 40 lemons).
"""

import pytest

from repro import CampaignConfig, ClusterSpec, run_campaign


def run_pair(seed):
    spec = ClusterSpec.rsc1_like(
        n_nodes=32,
        campaign_days=40,
        lemon_fraction=0.10,  # exaggerated so the effect is measurable
        lemon_fail_per_day=0.5,
        enable_episodic_regimes=False,
    )
    base = CampaignConfig(
        cluster_spec=spec, duration_days=40, seed=seed, lemon_detection=False
    )
    mitigated = CampaignConfig(
        cluster_spec=spec,
        duration_days=40,
        seed=seed,
        lemon_detection=True,
        lemon_detection_period_days=5.0,
    )
    return run_campaign(base), run_campaign(mitigated)


@pytest.fixture(scope="module")
def traces():
    return run_pair(seed=21)


def hw_rate(trace, min_gpus):
    records = [r for r in trace.job_records if r.n_gpus >= min_gpus]
    if not records:
        return 0.0
    return sum(1 for r in records if r.is_hw_interruption) / len(records)


def test_detection_quarantines_lemons(traces):
    _base, mitigated = traces
    quarantined = {
        e.data["node_id"]
        for e in mitigated.events
        if e.kind == "lemon.quarantined"
    }
    assert quarantined, "sweeper should quarantine some nodes"
    truth = {r.node_id for r in mitigated.node_records if r.is_lemon_truth}
    precision = len(quarantined & truth) / len(quarantined)
    assert precision >= 0.6


def test_mitigation_reduces_large_job_hw_failures(traces):
    base, mitigated = traces
    base_rate = hw_rate(base, min_gpus=64)
    mitigated_rate = hw_rate(mitigated, min_gpus=64)
    assert base_rate > 0, "lemon-heavy baseline must show failures"
    assert mitigated_rate < base_rate


def test_mitigation_reduces_total_interruptions(traces):
    base, mitigated = traces
    assert len(mitigated.hw_failure_records()) < len(base.hw_failure_records())
