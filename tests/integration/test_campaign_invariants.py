"""Whole-campaign invariants over the shared session traces."""

import pytest

from repro.jobtypes import JobState
from repro.workload.jobruns import group_job_runs


def test_record_timestamps_ordered(rsc1_trace):
    for record in rsc1_trace.job_records:
        assert record.enqueue_time <= record.start_time <= record.end_time
        assert 0.0 <= record.enqueue_time
        assert record.end_time <= rsc1_trace.span_seconds + 1e-6


def test_gang_allocation_sizes_consistent(rsc1_trace):
    for record in rsc1_trace.job_records:
        assert len(record.node_ids) == record.n_nodes
        assert len(set(record.node_ids)) == record.n_nodes
        if record.n_gpus >= 8:
            assert record.n_gpus == record.n_nodes * 8


def test_no_node_oversubscription(rsc1_trace):
    """At any instant, GPUs allocated on a node never exceed 8.

    Verified by sweeping each node's attempt intervals.
    """
    per_node = {}
    for record in rsc1_trace.job_records:
        gpus = record.n_gpus if record.n_gpus < 8 else 8
        for node_id in record.node_ids:
            per_node.setdefault(node_id, []).append(
                (record.start_time, gpus)
            )
            per_node[node_id].append((record.end_time, -gpus))
    for node_id, deltas in per_node.items():
        deltas.sort()
        level = 0
        for _t, delta in deltas:
            level += delta
            assert level <= 8, f"node {node_id} oversubscribed"


def test_requeues_preserve_job_id_and_bump_attempt(rsc1_trace):
    runs = group_job_runs(rsc1_trace.job_records)
    for run in runs:
        # Within each scheduler job (a run may chain several), attempt
        # counters are strictly increasing and unique.
        by_job = {}
        for attempt in run.attempts:
            by_job.setdefault(attempt.job_id, []).append(attempt)
        for attempts in by_job.values():
            numbers = [a.attempt for a in sorted(attempts, key=lambda a: a.start_time)]
            assert numbers == sorted(numbers)
            assert len(set(numbers)) == len(numbers)


def test_every_interruption_is_followed_or_terminal(rsc1_trace):
    """PREEMPTED attempts must not be the end of a run unless the campaign
    horizon cut them off; the job either resumes or is still queued."""
    runs = group_job_runs(rsc1_trace.job_records)
    for run in runs:
        for attempt in run.attempts[:-1]:
            assert attempt.state in (
                JobState.PREEMPTED,
                JobState.NODE_FAIL,
                JobState.REQUEUED,
                JobState.FAILED,
                # COMPLETED mid-run = a finished segment of a chained
                # long training run; the next segment follows.
                JobState.COMPLETED,
            )


def test_hw_interruptions_carry_failing_node(rsc1_trace):
    for record in rsc1_trace.hw_failure_records():
        if record.hw_incident_id is not None:
            assert record.failing_node_id in record.node_ids
            assert record.hw_component is not None


def test_preempted_records_name_instigators(rsc1_trace):
    job_ids = {r.job_id for r in rsc1_trace.job_records}
    for record in rsc1_trace.records_by_state(JobState.PREEMPTED):
        assert record.instigator_job_id is not None
        assert record.instigator_job_id in job_ids
        assert record.instigator_job_id != record.job_id


def test_utilization_near_target(rsc1_trace):
    util = rsc1_trace.total_gpu_seconds() / (
        rsc1_trace.n_gpus * rsc1_trace.span_seconds
    )
    assert 0.70 <= util <= 1.0


def test_node_records_complete(rsc1_trace):
    assert len(rsc1_trace.node_records) == rsc1_trace.n_nodes
    lemons = [r for r in rsc1_trace.node_records if r.is_lemon_truth]
    for lemon in lemons:
        assert lemon.lemon_component is not None


def test_events_time_ordered_within_kind(rsc1_trace):
    incident_times = [
        e.time for e in rsc1_trace.events if e.kind == "cluster.incident"
    ]
    assert incident_times == sorted(incident_times)


def test_campaign_reproducibility():
    from repro import CampaignConfig, ClusterSpec, run_campaign

    spec = ClusterSpec.rsc1_like(n_nodes=16, campaign_days=10)
    a = run_campaign(CampaignConfig(cluster_spec=spec, duration_days=10, seed=3))
    b = run_campaign(CampaignConfig(cluster_spec=spec, duration_days=10, seed=3))
    assert a.job_records == b.job_records
    assert len(a.events) == len(b.events)


def test_different_seed_different_trace():
    from repro import CampaignConfig, ClusterSpec, run_campaign

    spec = ClusterSpec.rsc1_like(n_nodes=16, campaign_days=10)
    a = run_campaign(CampaignConfig(cluster_spec=spec, duration_days=10, seed=3))
    b = run_campaign(CampaignConfig(cluster_spec=spec, duration_days=10, seed=4))
    assert a.job_records != b.job_records


def test_trace_roundtrip_through_disk(tmp_path, rsc2_trace):
    from repro.workload.trace import Trace

    path = tmp_path / "rsc2.jsonl"
    rsc2_trace.save(path)
    loaded = Trace.load(path)
    assert loaded.job_records == rsc2_trace.job_records
    assert loaded.node_records == rsc2_trace.node_records


def test_long_training_runs_span_multiple_job_ids(rsc1_trace):
    """The paper's job-run unit: chains of scheduler jobs, one logical run."""
    runs = group_job_runs(rsc1_trace.job_records)
    multi = [r for r in runs if len({a.job_id for a in r.attempts}) > 1]
    assert multi, "campaign should contain chained long training runs"
    for run in multi:
        # Segments share size and QoS, and execute back to back.
        assert len({a.n_gpus for a in run.attempts}) == 1
        assert len({a.qos for a in run.attempts}) == 1
        starts = [a.start_time for a in run.attempts]
        assert starts == sorted(starts)


def test_health_check_false_positive_calibration(rsc1_trace):
    """Section II-C: <1% of successfully completed jobs observe a failed
    health check in their attribution window."""
    from repro.core.attribution import AttributionPolicy, FailureAttributor

    attributor = FailureAttributor(
        rsc1_trace,
        AttributionPolicy(candidate_states=(JobState.COMPLETED,)),
    )
    completed = rsc1_trace.records_by_state(JobState.COMPLETED)
    assert completed
    observing = sum(1 for a in attributor.attribute_all() if a.attributed)
    assert observing / len(completed) < 0.01


def test_false_positive_events_are_flagged(rsc1_trace):
    fps = [
        e
        for e in rsc1_trace.events
        if e.kind == "health.check_failed" and e.data.get("false_positive")
    ]
    # ~0.01/node-day over the campaign: a handful, all warning severity.
    for event in fps:
        assert event.data["severity"] < 3
        assert event.data["incident_id"] == -1
