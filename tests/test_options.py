"""RunOptions + resolve_options: the legacy-kwarg shim contract.

The deprecation story is only honest if the shim is *exactly* one
warning per call, names every offending keyword, and produces the same
RunOptions (hence the same results) the non-deprecated spelling would.
"""

import warnings

import pytest

from repro import (
    CampaignConfig,
    ClusterSpec,
    DEFAULT_OPTIONS,
    RunOptions,
    run_campaign,
)
from repro.options import UNSET, resolve_options
from repro.runtime import trace_digest


@pytest.fixture(scope="module")
def rsc1_small_config():
    spec = ClusterSpec.rsc1_like(n_nodes=8, campaign_days=2)
    return CampaignConfig(cluster_spec=spec, duration_days=2, seed=5)


def _resolve(*args, **kw):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        return resolve_options(*args, **kw)


def test_no_legacy_kwargs_no_warning_returns_base():
    opts = RunOptions(workers=2)
    assert _resolve(opts, "f") is opts
    assert _resolve(None, "f") is DEFAULT_OPTIONS
    # UNSET values mean "not passed" and stay silent.
    assert _resolve(opts, "f", use_columns=UNSET, telemetry=UNSET) is opts


def test_exactly_one_warning_naming_all_kwargs():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        opts = resolve_options(
            None, "run_campaigns",
            renames={"max_workers": "workers"},
            max_workers=3, cache=False,
        )
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)
    message = str(caught[0].message)
    assert message == (
        "run_campaigns: cache=, max_workers= is deprecated; "
        "pass repro.RunOptions(...) via options= instead"
    )
    assert opts.workers == 3
    assert opts.cache is False


def test_legacy_values_override_options_fields():
    base = RunOptions(use_columns=True, workers=8)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        merged = resolve_options(base, "f", use_columns=False)
    assert merged.use_columns is False
    assert merged.workers == 8  # untouched fields survive the merge
    assert base.use_columns is True  # frozen: base never mutated


def test_explicit_none_is_passed_not_unset():
    """``telemetry=None`` is a real (deprecated) argument, distinct from
    not passing it at all."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolve_options(None, "f", telemetry=None)
    assert len(caught) == 1
    assert "telemetry=" in str(caught[0].message)


def test_run_options_validation():
    with pytest.raises(ValueError):
        RunOptions(workers=0)
    assert RunOptions(workers=1).workers == 1


def test_resolved_cache_materialization(tmp_path):
    from repro.runtime import TraceCache

    assert RunOptions(cache=False).resolved_cache() is None
    cache = TraceCache(root=tmp_path)
    assert RunOptions(cache=cache).resolved_cache() is cache
    default = RunOptions(cache_dir=str(tmp_path)).resolved_cache()
    assert isinstance(default, TraceCache)
    assert default.root == tmp_path


def test_backend_field_defaults():
    assert RunOptions().backend == "local-pool"
    assert RunOptions().backend_options is None
    assert DEFAULT_OPTIONS.backend == "local-pool"


def test_backend_field_validation():
    with pytest.raises(ValueError, match="non-empty backend name"):
        RunOptions(backend="")
    with pytest.raises(ValueError, match="non-empty backend name"):
        RunOptions(backend=3)


def test_backend_options_normalized_to_plain_dict():
    from types import MappingProxyType

    opts = RunOptions(backend_options=MappingProxyType({"root": "/q"}))
    assert type(opts.backend_options) is dict
    assert opts.backend_options == {"root": "/q"}


def test_inline_backend_worker_conflict_warns_exactly_once():
    """Satellite contract: backend='inline' plus workers>1 is a real
    conflict (inline is serial) — exactly one DeprecationWarning, then
    the pool forces workers=1."""
    from repro import CampaignPool

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        pool = CampaignPool(options=RunOptions(backend="inline", workers=2))
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert message.startswith(
        "CampaignPool: max_workers=2 conflicts with backend='inline'"
    )
    assert pool.max_workers == 1

    # No conflict, no warning: unset or already-serial worker counts.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        CampaignPool(options=RunOptions(backend="inline"))
        CampaignPool(options=RunOptions(backend="inline", workers=1))
        CampaignPool(options=RunOptions(backend="local-pool", workers=2))


def test_legacy_and_options_spellings_digest_equal(rsc1_small_config):
    """End-to-end satellite check on run_campaign itself: deprecated
    kwargs and the RunOptions spelling run the same code path and return
    bit-identical traces."""
    modern = run_campaign(
        rsc1_small_config, RunOptions(incremental_indices=False)
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = run_campaign(rsc1_small_config, incremental_indices=False)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "run_campaign:" in str(deprecations[0].message)
    assert trace_digest(legacy) == trace_digest(modern)
