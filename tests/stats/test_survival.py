import numpy as np
import pytest

from repro.stats.survival import (
    SurvivalCurve,
    exponential_survival,
    kaplan_meier,
)


def test_no_censoring_matches_empirical_survival():
    durations = [1.0, 2.0, 3.0, 4.0]
    curve = kaplan_meier(durations, [True] * 4)
    assert curve.probability_at(0.5) == 1.0
    assert curve.probability_at(1.0) == pytest.approx(0.75)
    assert curve.probability_at(2.5) == pytest.approx(0.5)
    assert curve.probability_at(4.0) == pytest.approx(0.0)
    assert curve.n_events == 4 and curve.n_censored == 0


def test_censoring_removes_from_risk_set_without_dropping_s():
    # Event at t=1 (4 at risk), censor at t=2, event at t=3 (2 at risk).
    curve = kaplan_meier([1.0, 2.0, 3.0, 4.0], [True, False, True, False])
    assert curve.probability_at(1.0) == pytest.approx(0.75)
    assert curve.probability_at(3.0) == pytest.approx(0.75 * 0.5)


def test_all_censored_flat_curve():
    curve = kaplan_meier([1.0, 2.0], [False, False])
    assert curve.probability_at(10.0) == 1.0
    assert curve.n_events == 0


def test_median_survival():
    curve = kaplan_meier([1.0, 2.0, 3.0, 4.0], [True] * 4)
    assert curve.median_survival() == pytest.approx(2.0)
    flat = kaplan_meier([1.0], [False])
    assert flat.median_survival() == float("inf")


def test_restricted_mean_of_step_function():
    curve = kaplan_meier([1.0, 2.0], [True, True])
    # S=1 on [0,1), 0.5 on [1,2), 0 beyond: area to 3 is 1 + 0.5 = 1.5.
    assert curve.restricted_mean(3.0) == pytest.approx(1.5)


def test_recovers_exponential_distribution():
    rng = np.random.default_rng(0)
    mttf = 50.0
    lifetimes = rng.exponential(mttf, size=4000)
    censor = rng.exponential(80.0, size=4000)
    observed = lifetimes <= censor
    durations = np.minimum(lifetimes, censor)
    curve = kaplan_meier(durations, observed)
    for t in (10.0, 25.0, 50.0):
        expected = float(exponential_survival(np.array([t]), mttf)[0])
        assert curve.probability_at(t) == pytest.approx(expected, abs=0.04)


def test_job_attempt_survival_from_trace(rsc1_trace):
    """Hardware-failure survival of >=64-GPU attempts: mostly censored."""
    records = [r for r in rsc1_trace.job_records if r.n_gpus >= 64]
    if len(records) < 20:
        pytest.skip("not enough large attempts in the session trace")
    curve = kaplan_meier(
        [r.runtime for r in records],
        [r.is_hw_interruption for r in records],
    )
    assert curve.n_censored > curve.n_events  # censoring dominates
    assert 0.0 <= curve.probability_at(3600.0) <= 1.0
    # Survival declines with duration.
    assert curve.probability_at(48 * 3600.0) <= curve.probability_at(3600.0)


def test_validation():
    with pytest.raises(ValueError):
        kaplan_meier([], [])
    with pytest.raises(ValueError):
        kaplan_meier([1.0], [True, False])
    with pytest.raises(ValueError):
        kaplan_meier([-1.0], [True])
    with pytest.raises(ValueError):
        exponential_survival(np.array([1.0]), 0.0)
    curve = kaplan_meier([1.0], [True])
    with pytest.raises(ValueError):
        curve.probability_at(-1.0)
    with pytest.raises(ValueError):
        curve.restricted_mean(0.0)
