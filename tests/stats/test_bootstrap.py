import numpy as np
import pytest

from repro.stats.bootstrap import bootstrap_ci, bootstrap_mean_ci


def test_mean_ci_brackets_sample_mean():
    rng = np.random.default_rng(0)
    data = rng.normal(5.0, 1.0, size=200)
    mean, lo, hi = bootstrap_mean_ci(data, rng=rng)
    assert lo <= mean <= hi
    assert mean == pytest.approx(float(np.mean(data)))


def test_ci_width_shrinks_with_sample_size():
    rng = np.random.default_rng(1)
    small = rng.normal(0, 1, size=20)
    large = rng.normal(0, 1, size=2000)
    _, lo_s, hi_s = bootstrap_mean_ci(small, rng=np.random.default_rng(2))
    _, lo_l, hi_l = bootstrap_mean_ci(large, rng=np.random.default_rng(2))
    assert (hi_l - lo_l) < (hi_s - lo_s)


def test_custom_statistic():
    data = [1.0, 2.0, 3.0, 4.0, 100.0]
    median, lo, hi = bootstrap_ci(
        data, lambda a: float(np.median(a)), rng=np.random.default_rng(0)
    )
    assert median == 3.0
    assert lo <= median <= hi


def test_single_sample_degenerates_to_point():
    mean, lo, hi = bootstrap_mean_ci([7.0])
    assert mean == lo == hi == 7.0


def test_empty_sample_raises():
    with pytest.raises(ValueError):
        bootstrap_mean_ci([])


def test_invalid_confidence_raises():
    with pytest.raises(ValueError):
        bootstrap_mean_ci([1.0, 2.0], confidence=0.0)


def test_deterministic_given_rng():
    data = list(range(50))
    a = bootstrap_mean_ci(data, rng=np.random.default_rng(9))
    b = bootstrap_mean_ci(data, rng=np.random.default_rng(9))
    assert a == b
