import numpy as np
import pytest

from repro.stats.fitting import (
    estimate_rate,
    fit_exponential_mttf,
    gamma_fit,
    mttf_from_rate,
    rate_confidence_interval,
)


def test_point_estimate_is_events_over_exposure():
    est = estimate_rate(10, 100.0)
    assert est.rate == pytest.approx(0.1)
    assert est.mttf == pytest.approx(10.0)


def test_interval_brackets_point_estimate():
    est = estimate_rate(25, 500.0)
    assert est.lo < est.rate < est.hi


def test_zero_events_has_zero_lower_bound():
    lo, hi = rate_confidence_interval(0, 100.0)
    assert lo == 0.0
    assert hi > 0.0


def test_interval_narrows_with_more_events():
    narrow = estimate_rate(400, 4000.0)
    wide = estimate_rate(4, 40.0)
    assert (narrow.hi - narrow.lo) < (wide.hi - wide.lo)


def test_confidence_level_widens_interval():
    c90 = estimate_rate(10, 100.0, confidence=0.90)
    c99 = estimate_rate(10, 100.0, confidence=0.99)
    assert c99.lo < c90.lo and c99.hi > c90.hi


def test_mttf_bounds_invert_rate_bounds():
    est = estimate_rate(10, 100.0)
    assert est.mttf_lo == pytest.approx(1.0 / est.hi)
    assert est.mttf_hi == pytest.approx(1.0 / est.lo)


def test_coverage_of_gamma_interval():
    """~90% of 90% intervals should contain the true rate."""
    rng = np.random.default_rng(0)
    true_rate = 0.05
    exposure = 2000.0
    hits = 0
    trials = 300
    for _ in range(trials):
        events = rng.poisson(true_rate * exposure)
        lo, hi = rate_confidence_interval(int(events), exposure)
        if lo <= true_rate <= hi:
            hits += 1
    assert 0.84 <= hits / trials <= 0.97


def test_invalid_inputs_raise():
    with pytest.raises(ValueError):
        estimate_rate(-1, 10.0)
    with pytest.raises(ValueError):
        estimate_rate(1, 0.0)
    with pytest.raises(ValueError):
        estimate_rate(1, 10.0, confidence=1.5)


def test_mttf_from_rate_paper_formula():
    # 2048 nodes at 6.5e-3 per node-day -> 1.8 hours (the paper's 16k GPUs).
    mttf_days = mttf_from_rate(2048, 6.5e-3)
    assert mttf_days * 24 == pytest.approx(1.80, abs=0.02)


def test_mttf_from_rate_zero_rate_is_infinite():
    assert mttf_from_rate(10, 0.0) == float("inf")


def test_exponential_mle_with_censoring():
    rng = np.random.default_rng(1)
    lifetimes = rng.exponential(100.0, size=200)
    censored = rng.exponential(100.0, size=100)
    est = fit_exponential_mttf(lifetimes, censored)
    # MLE = total exposure / failures; censoring inflates exposure only.
    expected = (lifetimes.sum() + censored.sum()) / 200
    assert est.mttf == pytest.approx(expected)


def test_exponential_mle_negative_rejected():
    with pytest.raises(ValueError):
        fit_exponential_mttf([-1.0, 2.0])


def test_gamma_fit_recovers_shape_scale():
    rng = np.random.default_rng(2)
    samples = rng.gamma(shape=2.0, scale=3.0, size=5000)
    shape, scale = gamma_fit(samples)
    assert shape == pytest.approx(2.0, rel=0.15)
    assert scale == pytest.approx(3.0, rel=0.15)


def test_gamma_fit_requires_positive_samples():
    with pytest.raises(ValueError):
        gamma_fit([1.0, 0.0, 2.0])
    with pytest.raises(ValueError):
        gamma_fit([1.0])
