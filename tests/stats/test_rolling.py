import numpy as np
import pytest

from repro.stats.rolling import rolling_mean, rolling_rate


def test_constant_rate_recovered():
    # One event per unit time over [0, 100): the trailing rate is ~1.
    events = np.arange(0.5, 100.0, 1.0)
    grid, rates = rolling_rate(events, window=10.0, start=10.0, end=100.0, step=5.0)
    assert np.allclose(rates, 1.0)


def test_exposure_normalization():
    events = np.arange(0.5, 100.0, 1.0)
    _g, rates = rolling_rate(
        events, window=10.0, start=10.0, end=100.0, step=10.0, exposure_per_time=4.0
    )
    assert np.allclose(rates, 0.25)


def test_burst_shows_up_in_window():
    events = [50.0] * 20
    grid, rates = rolling_rate(events, window=10.0, start=0.0, end=100.0, step=1.0)
    assert rates[grid == 49.0][0] == 0.0
    assert rates[grid == 55.0][0] == pytest.approx(2.0)
    assert rates[grid == 61.0][0] == 0.0  # window has passed


def test_empty_events_zero_rate():
    grid, rates = rolling_rate([], window=5.0, start=0.0, end=10.0, step=1.0)
    assert np.allclose(rates, 0.0)


def test_invalid_window_raises():
    with pytest.raises(ValueError):
        rolling_rate([1.0], window=0.0, start=0.0, end=1.0, step=0.5)


def test_rolling_mean_tracks_level_shift():
    times = np.arange(0.0, 100.0, 1.0)
    values = np.where(times < 50, 1.0, 3.0)
    grid, means = rolling_mean(times, values, window=10.0, start=10.0, end=99.0, step=1.0)
    assert means[grid == 40.0][0] == pytest.approx(1.0)
    assert means[grid == 70.0][0] == pytest.approx(3.0)


def test_rolling_mean_nan_when_window_empty():
    grid, means = rolling_mean([5.0], [2.0], window=1.0, start=0.0, end=10.0, step=1.0)
    assert np.isnan(means[grid == 0.0][0])
    assert means[grid == 5.0][0] == pytest.approx(2.0)


def test_rolling_mean_length_mismatch_raises():
    with pytest.raises(ValueError):
        rolling_mean([1.0, 2.0], [1.0], window=1.0, start=0.0, end=1.0, step=0.5)
