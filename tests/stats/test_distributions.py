import numpy as np
import pytest

from repro.stats.distributions import (
    LogNormalSpec,
    MixtureSpec,
    ZipfSizeSpec,
    sample_lognormal,
    truncated_sample,
)


def test_lognormal_median_is_exp_mu():
    spec = LogNormalSpec(mu=np.log(4.0), sigma=1.0)
    assert spec.median == pytest.approx(4.0)
    rng = np.random.default_rng(0)
    samples = spec.sample(rng, size=20_000)
    assert float(np.median(samples)) == pytest.approx(4.0, rel=0.05)


def test_lognormal_truncation_respected():
    spec = LogNormalSpec(mu=0.0, sigma=2.0, minimum=0.5, maximum=3.0)
    rng = np.random.default_rng(1)
    samples = spec.sample(rng, size=5000)
    assert samples.min() >= 0.5
    assert samples.max() <= 3.0


def test_lognormal_invalid_params():
    with pytest.raises(ValueError):
        LogNormalSpec(mu=0.0, sigma=0.0)
    with pytest.raises(ValueError):
        LogNormalSpec(mu=0.0, sigma=1.0, minimum=5.0, maximum=1.0)


def test_zipf_probabilities_decrease_and_sum_to_one():
    spec = ZipfSizeSpec(support=(1, 2, 4, 8))
    probs = spec.probabilities()
    assert probs.sum() == pytest.approx(1.0)
    assert all(probs[i] > probs[i + 1] for i in range(len(probs) - 1))


def test_zipf_samples_in_support():
    spec = ZipfSizeSpec(support=(1, 8, 64))
    rng = np.random.default_rng(2)
    samples = spec.sample(rng, size=1000)
    assert set(np.unique(samples)) <= {1, 8, 64}


def test_mixture_probabilities_normalized():
    spec = MixtureSpec.from_dict({1: 2.0, 8: 1.0, 64: 1.0})
    assert spec.probabilities().sum() == pytest.approx(1.0)
    assert spec.probability_of(1) == pytest.approx(0.5)
    assert spec.probability_of(999) == 0.0


def test_mixture_sampling_matches_weights():
    spec = MixtureSpec.from_dict({1: 0.8, 8: 0.2})
    rng = np.random.default_rng(3)
    samples = spec.sample(rng, size=10_000)
    assert float(np.mean(samples == 1)) == pytest.approx(0.8, abs=0.02)


def test_mixture_rejects_bad_weights():
    with pytest.raises(ValueError):
        MixtureSpec.from_dict({})
    with pytest.raises(ValueError):
        MixtureSpec.from_dict({1: -1.0})
    with pytest.raises(ValueError):
        MixtureSpec.from_dict({1: 0.0})


def test_sample_lognormal_median_form():
    rng = np.random.default_rng(4)
    samples = sample_lognormal(rng, median=10.0, sigma=0.5, size=20_000)
    assert float(np.median(samples)) == pytest.approx(10.0, rel=0.05)


def test_truncated_sample_falls_back_to_clipping():
    # Impossible bounds for the draw: must clip rather than hang.
    out = truncated_sample(
        lambda n: np.full(n, 100.0), minimum=0.0, maximum=1.0, size=10
    )
    assert len(out) == 10
    assert np.all(out == 1.0)
