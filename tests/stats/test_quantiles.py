import numpy as np
import pytest

from repro.stats.quantiles import (
    ecdf,
    ecdf_at,
    histogram_by_bucket,
    power_of_two_bucket,
    weighted_fractions,
)


def test_ecdf_basic():
    values, fracs = ecdf([3.0, 1.0, 2.0, 2.0])
    assert list(values) == [1.0, 2.0, 2.0, 3.0]
    assert fracs[-1] == 1.0
    assert fracs[0] == 0.25


def test_ecdf_empty_raises():
    with pytest.raises(ValueError):
        ecdf([])


def test_ecdf_at_points():
    out = ecdf_at([1, 2, 3, 4], [0.5, 2.0, 10.0])
    assert list(out) == [0.0, 0.5, 1.0]


def test_weighted_fractions_sum_to_one():
    fracs = weighted_fractions(["a", "b", "a"], [1.0, 2.0, 3.0])
    assert fracs["a"] == pytest.approx(4 / 6)
    assert fracs["b"] == pytest.approx(2 / 6)
    assert sum(fracs.values()) == pytest.approx(1.0)


def test_weighted_fractions_rejects_negative():
    with pytest.raises(ValueError):
        weighted_fractions(["a"], [-1.0])


def test_weighted_fractions_rejects_zero_total():
    with pytest.raises(ValueError):
        weighted_fractions(["a"], [0.0])


@pytest.mark.parametrize(
    "value,expected",
    [(1, 1), (2, 2), (3, 4), (8, 8), (9, 16), (100, 128), (4096, 4096)],
)
def test_power_of_two_bucket(value, expected):
    assert power_of_two_bucket(value) == expected


def test_power_of_two_bucket_minimum():
    assert power_of_two_bucket(3, minimum=8) == 8
    assert power_of_two_bucket(9, minimum=8) == 16


def test_power_of_two_bucket_rejects_nonpositive():
    with pytest.raises(ValueError):
        power_of_two_bucket(0)


def test_histogram_by_bucket_sums_weights():
    hist = histogram_by_bucket([1, 3, 9, 9], [1.0, 1.0, 2.0, 3.0])
    assert hist == {1: 1.0, 4: 1.0, 16: 5.0}
    assert list(hist) == sorted(hist)


def test_histogram_length_mismatch_raises():
    with pytest.raises(ValueError):
        histogram_by_bucket([1, 2], [1.0])
