"""Chaos-driven pool properties: recovery never changes results.

The acceptance bar for the whole resilience layer: under any seeded
:class:`ChaosPolicy`, ``CampaignPool.run`` returns traces bit-identical
(by ``trace_digest``) to a fault-free run — faults land, the recovery
machinery absorbs them, the science is unaffected.
"""

import warnings

import pytest

from repro.resilience import (
    Backoff,
    ChaosPolicy,
    ResilienceConfig,
    RetryPolicy,
    WorkerKilled,
)
from repro.runtime import (
    CampaignPool,
    TraceCache,
    config_digest,
    run_campaigns,
    trace_digest,
)

#: No sleeping between test retries: determinism comes from seeds, not
#: wall-clock, so the schedule can collapse to zero.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff=Backoff(base_s=0.0, jitter=0.0))


def _resilience(chaos=None, **kw):
    return ResilienceConfig(retry=FAST_RETRY, chaos=chaos, **kw)


@pytest.mark.parametrize("chaos_seed", [1, 7, 13])
def test_inline_chaos_run_is_bit_identical(tiny_configs, tiny_digests, chaos_seed):
    chaos = ChaosPolicy(
        seed=chaos_seed, worker_kill_rate=0.7, max_kills_per_config=2
    )
    pool = CampaignPool(
        max_workers=1, cache=False, resilience=_resilience(chaos)
    )
    traces = pool.run(tiny_configs)
    assert [trace_digest(t) for t in traces] == tiny_digests
    # With a 0.7 kill rate across 3 configs some attempt must have died.
    assert pool.last_stats.retries > 0


def test_kill_every_attempt_within_budget_still_completes(
    tiny_configs, tiny_digests
):
    """kill_rate=1.0 kills attempts 0 and 1 of every config; the budget
    (max_kills_per_config=2 < max_attempts=3) guarantees attempt 2 lives."""
    chaos = ChaosPolicy(seed=0, worker_kill_rate=1.0, max_kills_per_config=2)
    pool = CampaignPool(
        max_workers=1, cache=False, resilience=_resilience(chaos)
    )
    traces = pool.run(tiny_configs)
    assert [trace_digest(t) for t in traces] == tiny_digests
    assert pool.last_stats.retries == 2 * len(tiny_configs)


def test_exhausted_retry_budget_raises_the_genuine_error(tiny_configs):
    """When chaos outlives the retry budget the real exception surfaces —
    resilience absorbs transient faults, it does not hide persistent ones."""
    chaos = ChaosPolicy(seed=0, worker_kill_rate=1.0, max_kills_per_config=5)
    retry = RetryPolicy(max_attempts=2, backoff=Backoff(base_s=0.0, jitter=0.0))
    pool = CampaignPool(
        max_workers=1,
        cache=False,
        resilience=ResilienceConfig(retry=retry, chaos=chaos),
    )
    with pytest.raises(WorkerKilled):
        pool.run(tiny_configs[:1])


def test_cache_corruption_quarantines_and_rebuilds(
    tmp_path, tiny_configs, tiny_digests
):
    """Every entry is corrupted on disk before its read; the integrity
    check quarantines them all, the sweep re-simulates, and the returned
    digests never change."""
    chaos = ChaosPolicy(seed=3, cache_corruption_rate=1.0)
    resilience = _resilience(chaos)

    warm = CampaignPool(
        max_workers=1,
        cache=TraceCache(root=tmp_path, enabled=True),
        resilience=_resilience(),
    )
    assert [trace_digest(t) for t in warm.run(tiny_configs)] == tiny_digests

    cache = TraceCache(root=tmp_path, enabled=True)
    pool = CampaignPool(max_workers=1, cache=cache, resilience=resilience)
    traces = pool.run(tiny_configs)
    assert [trace_digest(t) for t in traces] == tiny_digests
    assert cache.quarantined == len(tiny_configs)
    assert cache.hits == 0
    assert pool.last_stats.simulated == len(tiny_configs)
    # Quarantined entries are kept aside for inspection, never served.
    assert len(list(cache.quarantine_dir().iterdir())) == len(tiny_configs)

    # The rebuilt entries are intact: a fault-free third pass is all hits.
    clean = CampaignPool(
        max_workers=1,
        cache=TraceCache(root=tmp_path, enabled=True),
        resilience=_resilience(),
    )
    assert [trace_digest(t) for t in clean.run(tiny_configs)] == tiny_digests
    assert clean.last_stats.cache_hits == len(tiny_configs)


def test_partial_corruption_only_rebuilds_the_victims(
    tmp_path, tiny_configs, tiny_digests
):
    chaos = ChaosPolicy(seed=11, cache_corruption_rate=0.5)
    victims = sum(
        1
        for c in tiny_configs
        if chaos.corruption_mode(config_digest(c)) is not None
    )
    warm = CampaignPool(
        max_workers=1, cache=TraceCache(root=tmp_path, enabled=True)
    )
    warm.run(tiny_configs)

    cache = TraceCache(root=tmp_path, enabled=True)
    pool = CampaignPool(
        max_workers=1, cache=cache, resilience=_resilience(chaos)
    )
    traces = pool.run(tiny_configs)
    assert [trace_digest(t) for t in traces] == tiny_digests
    assert cache.quarantined == victims
    assert cache.hits == len(tiny_configs) - victims


def test_subprocess_kills_broken_executor_respawn(tiny_configs, tiny_digests):
    """The real thing: chaos ``os._exit``s workers mid-seed, the parent
    sees only a broken executor, kills it, respawns, and retries — and the
    sweep still digests identical to fault-free."""
    chaos = ChaosPolicy(seed=0, worker_kill_rate=1.0, max_kills_per_config=1)
    pool = CampaignPool(
        max_workers=2,
        cache=False,
        resilience=ResilienceConfig(
            retry=FAST_RETRY, chaos=chaos, circuit_threshold=10
        ),
    )
    traces = pool.run(tiny_configs)
    assert [trace_digest(t) for t in traces] == tiny_digests
    stats = pool.last_stats
    assert stats.retries >= 1
    assert stats.respawns >= 1


def test_open_breaker_degrades_to_inline(tiny_configs, tiny_digests):
    pool = CampaignPool(max_workers=4, cache=False, resilience=_resilience())
    while not pool.breaker.open:
        pool.breaker.record_failure()
    traces = pool.run(tiny_configs)
    assert [trace_digest(t) for t in traces] == tiny_digests
    assert pool.last_stats.workers == 1  # nothing ran pooled


def test_legacy_kwargs_one_warning_identical_digests(tiny_configs, tiny_digests):
    """The satellite contract: the pre-RunOptions spelling still works,
    warns exactly once per call, and changes nothing about the results."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        traces = run_campaigns(tiny_configs, max_workers=1, cache=False)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "run_campaigns" in message
    assert "cache=" in message and "max_workers=" in message
    assert "RunOptions" in message
    assert [trace_digest(t) for t in traces] == tiny_digests
