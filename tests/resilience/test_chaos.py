"""ChaosPolicy: deterministic, seeded, stateless fault decisions."""

import pytest

from repro.resilience import CHAOS_EXIT_CODE, ChaosPolicy, FaultySink, WorkerKilled
from repro.resilience.chaos import _unit_draw


def test_unit_draw_is_deterministic_and_keyed():
    a = _unit_draw(7, "kill", "digest", 0)
    assert a == _unit_draw(7, "kill", "digest", 0)
    assert 0.0 <= a < 1.0
    assert a != _unit_draw(7, "kill", "digest", 1)
    assert a != _unit_draw(8, "kill", "digest", 0)


def test_policy_decisions_identical_across_instances():
    """Two equal policies (e.g. parent and pickled worker copy) must make
    the same decisions — that is what makes chaos runs reproducible."""
    a = ChaosPolicy(seed=3, worker_kill_rate=0.5, cache_corruption_rate=0.5)
    b = ChaosPolicy(seed=3, worker_kill_rate=0.5, cache_corruption_rate=0.5)
    for digest in ("aa" * 32, "bb" * 32, "cc" * 32):
        for attempt in range(4):
            assert a.should_kill_worker(digest, attempt) == b.should_kill_worker(
                digest, attempt
            )
        assert a.corruption_mode(digest) == b.corruption_mode(digest)


def test_kill_budget_guarantees_termination():
    """After max_kills_per_config attempts the policy must stand down,
    so a retrying pool always finishes."""
    chaos = ChaosPolicy(seed=0, worker_kill_rate=1.0, max_kills_per_config=2)
    digest = "ab" * 32
    assert chaos.should_kill_worker(digest, 0)
    assert chaos.should_kill_worker(digest, 1)
    assert not chaos.should_kill_worker(digest, 2)
    assert not chaos.should_kill_worker(digest, 99)


def test_inline_kill_raises_worker_killed():
    chaos = ChaosPolicy(seed=0, worker_kill_rate=1.0)
    with pytest.raises(WorkerKilled):
        chaos.kill_worker("ab" * 32, 0, subprocess=False)
    assert CHAOS_EXIT_CODE == 137  # the OOM-killer's signature


def test_rate_validation():
    with pytest.raises(ValueError):
        ChaosPolicy(worker_kill_rate=1.5)
    with pytest.raises(ValueError):
        ChaosPolicy(cache_corruption_rate=-0.1)


def test_corrupt_entry_modes(tmp_path):
    payload = bytes(range(256)) * 16
    chaos = ChaosPolicy(seed=1, cache_corruption_rate=1.0)
    seen = set()
    for i in range(16):
        digest = f"{i:02x}" * 32
        path = tmp_path / f"{digest}.npz"
        path.write_bytes(payload)
        mode = chaos.corruption_mode(digest)
        seen.add(mode)
        chaos.corrupt_entry(path, digest)
        assert path.read_bytes() != payload
    assert seen  # at least one corruption mode exercised


class _Sink:
    def __init__(self):
        self.written = []

    def write(self, event):
        self.written.append(event)

    def close(self):
        pass


def test_faulty_sink_raises_deterministically():
    chaos = ChaosPolicy(seed=5, sink_error_rate=0.5)
    a = FaultySink(_Sink(), chaos)
    b = FaultySink(_Sink(), chaos)
    outcomes_a, outcomes_b = [], []
    for sink, outcomes in ((a, outcomes_a), (b, outcomes_b)):
        for i in range(32):
            try:
                sink.write(object())
                outcomes.append(True)
            except OSError:
                outcomes.append(False)
    assert outcomes_a == outcomes_b
    assert True in outcomes_a and False in outcomes_a


def test_mangle_stream_passes_real_items_untouched():
    chaos = ChaosPolicy(seed=2, malformed_item_rate=0.5, late_item_rate=0.5)
    real = [(float(i), "job", {"i": i}) for i in range(32)]
    out = list(chaos.mangle_stream(iter(real)))
    survivors = [item for item in out if item[2] is not None]
    assert survivors == real
    junk = [item for item in out if item[2] is None]
    assert junk  # at 50% rates some junk must be injected
    # Determinism: the same policy mangles the same stream identically.
    assert out == list(chaos.mangle_stream(iter(real)))
