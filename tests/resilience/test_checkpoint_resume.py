"""Crash-safe sweeps: kill at any point, resume bit-identically.

An "interrupted" sweep is modeled by a checkpoint that recorded only a
prefix of the configs (exactly the on-disk state a SIGKILL mid-sweep
leaves behind, since both store entries and manifest are written
atomically); resuming is just running the full sweep again against the
same directory.
"""

import pytest

from repro import CampaignConfig, ClusterSpec, run_campaign
from repro.resilience import CampaignCheckpoint, sweep_run_id
from repro.runtime import CampaignPool, seed_sweep_configs, trace_digest


@pytest.fixture(scope="module")
def sweep_configs():
    spec = ClusterSpec.rsc1_like(n_nodes=8, campaign_days=2)
    base = CampaignConfig(cluster_spec=spec, duration_days=2)
    return seed_sweep_configs(base, range(4))


@pytest.fixture(scope="module")
def sweep_digests(sweep_configs):
    traces = CampaignPool(max_workers=1, cache=False).run(sweep_configs)
    return [trace_digest(t) for t in traces]


def _interrupt_after(directory, configs, completed: int) -> CampaignCheckpoint:
    """Produce the checkpoint state a sweep killed after ``completed``
    configs leaves on disk."""
    ckpt = CampaignCheckpoint(directory)
    ckpt.begin(configs)
    for config in configs[:completed]:
        ckpt.record(config, run_campaign(config))
    return ckpt


@pytest.mark.parametrize("completed", [1, 2, 3])  # ≈25%, 50%, 75–90%
def test_resume_is_bit_identical(tmp_path, sweep_configs, sweep_digests, completed):
    _interrupt_after(tmp_path, sweep_configs, completed)

    pool = CampaignPool(max_workers=1, cache=False)
    traces = pool.run(
        sweep_configs, checkpoint=CampaignCheckpoint(tmp_path)
    )
    assert [trace_digest(t) for t in traces] == sweep_digests
    assert pool.last_stats.resumed == completed
    assert pool.last_stats.simulated == len(sweep_configs) - completed
    # Resumed traces are labeled, so provenance is auditable...
    sources = [t.metadata["runtime"]["source"] for t in traces]
    assert sources[:completed] == ["checkpoint"] * completed
    # ...but the label lives in runtime metadata, outside the digest.


def test_completed_checkpoint_resumes_everything(
    tmp_path, sweep_configs, sweep_digests
):
    _interrupt_after(tmp_path, sweep_configs, len(sweep_configs))
    pool = CampaignPool(max_workers=1, cache=False)
    traces = pool.run(sweep_configs, checkpoint=CampaignCheckpoint(tmp_path))
    assert [trace_digest(t) for t in traces] == sweep_digests
    assert pool.last_stats.simulated == 0
    assert pool.last_stats.resumed == len(sweep_configs)


def test_checkpoint_refuses_a_different_sweep(tmp_path, sweep_configs):
    _interrupt_after(tmp_path, sweep_configs, 1)
    other = seed_sweep_configs(sweep_configs[0], range(100, 103))
    with pytest.raises(ValueError, match="different sweep"):
        CampaignCheckpoint(tmp_path).begin(other)


def test_run_id_depends_on_order_and_content(sweep_configs):
    from repro.runtime import config_digest

    digests = [config_digest(c) for c in sweep_configs]
    assert sweep_run_id(digests) != sweep_run_id(list(reversed(digests)))
    assert sweep_run_id(digests) == sweep_run_id(list(digests))


def test_torn_partial_result_resimulates(
    tmp_path, sweep_configs, sweep_digests
):
    """A manifest that claims completion whose stored entry is torn must
    re-simulate that config, not serve garbage: the manifest is
    optimistic, the digest-verified store is the authority."""
    ckpt = _interrupt_after(tmp_path, sweep_configs, 2)
    victim = ckpt.store.path_for(sweep_configs[0])
    data = victim.read_bytes()
    victim.write_bytes(data[: len(data) // 2])

    pool = CampaignPool(max_workers=1, cache=False)
    traces = pool.run(sweep_configs, checkpoint=CampaignCheckpoint(tmp_path))
    assert [trace_digest(t) for t in traces] == sweep_digests
    assert pool.last_stats.resumed == 1  # only the intact entry
    assert pool.last_stats.simulated == len(sweep_configs) - 1


def test_deferred_flush_batches_manifest_writes(tmp_path, sweep_configs):
    ckpt = CampaignCheckpoint(tmp_path)
    ckpt.begin(sweep_configs)
    trace = run_campaign(sweep_configs[0])
    ckpt.record(sweep_configs[0], trace, flush=False)
    # Entry written immediately; manifest line deferred.
    assert ckpt.store.path_for(sweep_configs[0]).exists()
    reread = CampaignCheckpoint(tmp_path)
    reread.begin(sweep_configs)
    assert len(reread.completed_digests) == 0
    ckpt.flush()
    reread = CampaignCheckpoint(tmp_path)
    reread.begin(sweep_configs)
    assert len(reread.completed_digests) == 1
    # Even an unflushed manifest only costs re-simulation, never
    # correctness: load() on the stale checkpoint just returns None.
    assert reread.load(sweep_configs[1]) is None


def test_checkpoint_every_batching_via_pool(tmp_path, sweep_configs, sweep_digests):
    from repro.resilience import ResilienceConfig

    pool = CampaignPool(
        max_workers=1,
        cache=False,
        resilience=ResilienceConfig(checkpoint_every=3),
    )
    traces = pool.run(sweep_configs, checkpoint=CampaignCheckpoint(tmp_path))
    assert [trace_digest(t) for t in traces] == sweep_digests
    # The final flush() makes the directory complete despite batching.
    resumed = CampaignCheckpoint(tmp_path)
    resumed.begin(sweep_configs)
    assert len(resumed.completed_digests) == len(sweep_configs)
